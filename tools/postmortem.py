#!/usr/bin/env python3
"""Post-mortem analyzer for flight-recorder incident bundles.

Reads one self-contained incident bundle (see
:func:`repro.obs.flight.write_incident_bundle`) and answers the
questions a dead or wedged cluster can no longer answer itself:

* what kind of incident was it, when, and which rank was named;
* what was every rank doing *last* — phase, epoch, layer, final span,
  final structured log line, and (for a dead rank) its traceback,
  straight from the per-rank journals;
* a merged timeline of the final records across all ranks, around the
  incident;
* a **culprit-vs-victim ranking** reusing the stall detector's
  waiting-phase exemption (:data:`repro.obs.live.ACTIVE_PHASES`): a
  rank that died, was flagged stalled, or whose last journaled phase is
  an *active* one is a culprit; ranks parked in waiting phases
  (barrier / await_grad / idle / done) froze because of someone else
  and are victims.

Usage::

    python tools/postmortem.py BUNDLE_DIR
    python tools/postmortem.py --flight-dir DIR        # newest bundle
    python tools/postmortem.py BUNDLE_DIR --timeline 40
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs.flight import (  # noqa: E402
    JOURNAL_PREFIX,
    latest_incident,
    read_journal,
)
from repro.obs.live import ACTIVE_PHASES, PHASE_NAMES  # noqa: E402

#: phase names in which a frozen rank is itself to blame
ACTIVE_PHASE_NAMES = frozenset(PHASE_NAMES[p] for p in ACTIVE_PHASES)
#: phase names that freeze legitimately when a peer stalls or dies
WAITING_PHASE_NAMES = frozenset(PHASE_NAMES) - ACTIVE_PHASE_NAMES


def load_bundle(path: str) -> dict:
    """Load a bundle directory: manifest, per-rank journals, sections."""
    manifest_path = os.path.join(path, "manifest.json")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    bundle = {"path": path, "manifest": manifest, "journals": {},
              "sections": {}}
    for entry in sorted(os.listdir(path)):
        full = os.path.join(path, entry)
        if entry.startswith(JOURNAL_PREFIX) and entry.endswith(".jsonl"):
            who = entry[len(JOURNAL_PREFIX):-len(".jsonl")]
            bundle["journals"][who] = read_journal(full)
        elif entry.endswith(".json") and entry != "manifest.json":
            try:
                with open(full, encoding="utf-8") as fh:
                    bundle["sections"][entry[:-len(".json")]] = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
    return bundle


def _rank_of(who: str, entries: list[dict]) -> int | None:
    """Rank of a journal: from its records' stamp, else its filename."""
    for e in entries:
        if "rank" in e and e["rank"] is not None:
            return int(e["rank"])
    if who.startswith("rank") and who[len("rank"):].isdigit():
        return int(who[len("rank"):])
    return None


def _summarize_journal(entries: list[dict]) -> dict:
    """Last phase/epoch/layer, final span/log/crash of one journal."""
    summary = {
        "records": len(entries),
        "last_phase": None, "last_epoch": None, "last_layer": None,
        "last_span": None, "last_log": None, "crash": None,
        "first_t": entries[0]["t"] if entries else None,
        "last_t": entries[-1]["t"] if entries else None,
    }
    for e in entries:
        kind = e.get("kind")
        if kind == "phase":
            summary["last_phase"] = e.get("phase")
            if e.get("epoch") is not None:
                summary["last_epoch"] = e["epoch"]
            if e.get("layer") is not None:
                summary["last_layer"] = e["layer"]
        elif kind == "span":
            summary["last_span"] = e.get("name")
        elif kind == "log":
            summary["last_log"] = e.get("message")
            # structured logs carry the context stamp too
            for key, dst in (("phase", "last_phase"), ("epoch", "last_epoch"),
                             ("layer", "last_layer")):
                if e.get(key) is not None:
                    summary[dst] = e[key]
        elif kind == "crash":
            summary["crash"] = {"reason": e.get("reason"),
                                "traceback": e.get("traceback")}
    return summary


def analyze(bundle: dict) -> dict:
    """Per-rank last-known state + culprit-vs-victim ranking."""
    manifest = bundle["manifest"]
    stalls = bundle["sections"].get("stalls") or {}
    stalled_ranks = {int(e["rank"]) for e in stalls.get("events", [])
                     if e.get("rank") is not None}
    named_rank = manifest.get("rank")

    ranks: dict[int, dict] = {}
    other: dict[str, dict] = {}
    for who, entries in bundle["journals"].items():
        summary = _summarize_journal(entries)
        rank = _rank_of(who, entries)
        if rank is None:
            other[who] = summary
            continue
        summary["rank"] = rank
        # --- classification: reuse the waiting-phase exemption ---------
        phase = summary["last_phase"]
        if summary["crash"] is not None:
            role, score = "culprit", 3.0
            why = f"died ({summary['crash']['reason']})"
        elif rank in stalled_ranks:
            role, score = "culprit", 2.5
            why = f"flagged stalled in {phase or '?'}"
        elif phase in ACTIVE_PHASE_NAMES:
            role, score = "culprit", 2.0
            why = f"frozen mid-{phase} (active phase)"
        else:
            role, score = "victim", 0.0
            why = (f"parked in {phase or '?'} (waiting phase"
                   " — froze because of a peer)")
        if rank == named_rank:
            score += 1.0
        summary["role"] = role
        summary["score"] = score
        summary["why"] = why
        ranks[rank] = summary

    ranking = sorted(ranks.values(),
                     key=lambda s: (-s["score"], s["rank"]))
    return {
        "path": bundle["path"],
        "kind": manifest.get("kind"),
        "time": manifest.get("time"),
        "rank": named_rank,
        "reason": manifest.get("reason"),
        "config": manifest.get("config") or {},
        "ranks": ranks,
        "other_journals": other,
        "ranking": ranking,
        "culprits": [s["rank"] for s in ranking if s["role"] == "culprit"],
        "victims": [s["rank"] for s in ranking if s["role"] == "victim"],
        "stalled_ranks": sorted(stalled_ranks),
    }


def merged_timeline(bundle: dict, last: int = 30) -> list[dict]:
    """The final ``last`` records across every journal, time-ordered."""
    merged: list[dict] = []
    for who, entries in bundle["journals"].items():
        for e in entries:
            merged.append({"who": who, **e})
    merged.sort(key=lambda e: e.get("t", 0.0))
    return merged[-last:] if last > 0 else merged


def _describe(entry: dict) -> str:
    kind = entry.get("kind")
    if kind == "span":
        return f"span {entry.get('name')} ({entry.get('duration', 0) * 1e3:.2f}ms)"
    if kind == "phase":
        bits = [str(entry.get("phase"))]
        if entry.get("epoch") is not None:
            bits.append(f"epoch {entry['epoch']}")
        if entry.get("layer") is not None:
            bits.append(f"layer {entry['layer']}")
        return "phase -> " + ", ".join(bits)
    if kind == "log":
        return f"log[{entry.get('level')}] {entry.get('message')}"
    if kind == "event":
        return f"event {entry.get('name')}"
    if kind == "crash":
        return f"CRASH ({entry.get('reason')})"
    if kind == "metrics":
        return "metrics sample"
    return str(kind)


def render(analysis: dict, bundle: dict | None = None,
           timeline: int = 0) -> str:
    """Human-readable post-mortem report."""
    lines = [
        f"incident : {analysis['kind']}  at {analysis['time']}",
        f"bundle   : {analysis['path']}",
    ]
    if analysis["rank"] is not None:
        lines.append(f"rank     : {analysis['rank']}")
    if analysis["reason"]:
        lines.append(f"reason   : {analysis['reason']}")
    if analysis["config"]:
        cfg = ", ".join(f"{k}={v}" for k, v in analysis["config"].items())
        lines.append(f"config   : {cfg}")

    lines.append("")
    lines.append("culprit-vs-victim ranking (waiting phases exempt):")
    for s in analysis["ranking"]:
        epoch = s["last_epoch"] if s["last_epoch"] is not None else "-"
        layer = s["last_layer"] if s["last_layer"] is not None else "-"
        lines.append(
            f"  rank {s['rank']}: {s['role'].upper():<7} — {s['why']}; "
            f"last phase={s['last_phase'] or '?'} epoch={epoch} "
            f"layer={layer}"
        )
        if s["last_span"]:
            lines.append(f"            last span: {s['last_span']}")
        if s["last_log"]:
            lines.append(f"            last log : {s['last_log']}")

    for s in analysis["ranking"]:
        if s["crash"] is not None and s["crash"].get("traceback"):
            lines.append("")
            lines.append(f"rank {s['rank']} traceback "
                         f"({s['crash']['reason']}):")
            for tb_line in str(s["crash"]["traceback"]).rstrip().splitlines():
                lines.append("  " + tb_line)

    if timeline > 0 and bundle is not None:
        lines.append("")
        lines.append(f"timeline (last {timeline} records, all ranks):")
        for entry in merged_timeline(bundle, last=timeline):
            lines.append(f"  {entry.get('t', 0.0):.3f}  "
                         f"{entry['who']:<8} {_describe(entry)}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Analyze a flight-recorder incident bundle."
    )
    parser.add_argument("bundle", nargs="?",
                        help="incident bundle directory")
    parser.add_argument("--flight-dir", metavar="DIR",
                        help="analyze the newest bundle under DIR")
    parser.add_argument("--timeline", type=int, default=20,
                        help="merged-timeline records to print "
                             "(0 disables; default 20)")
    parser.add_argument("--json", action="store_true",
                        help="emit the analysis as JSON instead of text")
    args = parser.parse_args(argv)

    path = args.bundle
    if path is None:
        if not args.flight_dir:
            parser.error("need a bundle path or --flight-dir")
        manifest = latest_incident(args.flight_dir)
        if manifest is None:
            print(f"no incident bundles under {args.flight_dir}",
                  file=sys.stderr)
            return 1
        path = manifest["path"]
    if not os.path.isdir(path):
        print(f"not a bundle directory: {path}", file=sys.stderr)
        return 1

    bundle = load_bundle(path)
    analysis = analyze(bundle)
    if args.json:
        analysis["timeline"] = merged_timeline(bundle, last=args.timeline)
        json.dump(analysis, sys.stdout, indent=1, default=str)
        print()
    else:
        print(render(analysis, bundle=bundle, timeline=args.timeline))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
