#!/usr/bin/env python3
"""Live per-worker cluster monitor over the shared telemetry slab.

Renders one row per worker rank — phase, epoch/layer, heartbeat seqno,
throughput (GFLOP/s from sample deltas), progress age — either from a
live :class:`~repro.obs.live.TelemetrySlab` (attach by descriptor file,
see ``TelemetrySlab.write_descriptor``) or from a JSON snapshot
(``MultiprocessTrainer.telemetry_snapshot()``).

Usage::

    python tools/monitor.py --slab /tmp/slab.json            # one sample
    python tools/monitor.py --slab /tmp/slab.json --watch    # refresh loop
    python tools/monitor.py --snapshot snap.json             # offline view

A stale row (progress age past ``--stall-deadline`` in an active phase)
is marked ``STALLED?`` — the same heuristic the parent's
:class:`~repro.obs.live.StallDetector` applies authoritatively.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs.flight import latest_incident  # noqa: E402
from repro.obs.live import (  # noqa: E402
    ACTIVE_PHASES,
    TelemetrySlab,
    WorkerSample,
    phase_name,
)

_HEADER = (
    f"  {'rank':>4}  {'pid':>7}  {'phase':<12} {'epoch':>5} {'layer':>5} "
    f"{'beats':>7} {'spans':>6} {'gflop/s':>8} {'age':>7}  status"
)


def _sample_from_dict(rank: int, d: dict) -> WorkerSample:
    """Rebuild a :class:`WorkerSample` from a snapshot-file entry."""
    return WorkerSample(
        rank=int(d.get("rank", rank)),
        seqno=int(d.get("seqno", 0)),
        pid=int(d.get("pid", 0)),
        epoch=int(d.get("epoch", 0)),
        layer=int(d.get("layer", 0)),
        phase=int(d.get("phase", 0)),
        spans_closed=int(d.get("spans_closed", 0)),
        flops=float(d.get("flops", 0.0)),
        bytes=float(d.get("bytes", 0.0)),
        last_beat=0.0,
        clock_origin=0.0,
        progress_age=d.get("progress_age"),
    )


def render_table(samples: list[WorkerSample],
                 prev: list[WorkerSample] | None = None,
                 dt: float | None = None,
                 stall_deadline: float = 5.0) -> str:
    """Format one poll's samples as a fixed-width table.

    ``prev``/``dt`` (the previous poll and the seconds between them)
    enable the throughput column: FLOP deltas over the interval.  Worker
    registries reset each epoch, so a negative delta (new epoch) renders
    as a dash rather than a bogus rate.
    """
    lines = [_HEADER]
    for i, s in enumerate(samples):
        rate = ""
        if prev is not None and dt and i < len(prev):
            dflops = s.flops - prev[i].flops
            if dflops >= 0:
                rate = f"{dflops / dt / 1e9:8.3f}"
        if not rate:
            rate = f"{'-':>8}"
        age = f"{s.progress_age:6.1f}s" if s.progress_age is not None else "      -"
        status = "ok"
        if s.seqno == 0:
            status = "no beat yet"
        elif (s.progress_age is not None
              and s.progress_age > stall_deadline
              and s.phase in ACTIVE_PHASES):
            status = "STALLED?"
        lines.append(
            f"  {s.rank:>4}  {s.pid:>7}  {phase_name(s.phase):<12} "
            f"{s.epoch:>5} {s.layer:>5} {s.seqno:>7} {s.spans_closed:>6} "
            f"{rate} {age}  {status}"
        )
    return "\n".join(lines)


def incident_line(flight_dir: str | None) -> str | None:
    """The "last incident" status line (``None`` when there is none):
    wall time, kind, rank and bundle path of the newest incident bundle
    under the flight dir."""
    if not flight_dir:
        return None
    manifest = latest_incident(flight_dir)
    if manifest is None:
        return f"last incident: none  ({flight_dir})"
    rank = manifest.get("rank")
    rank_s = f"rank {rank}" if rank is not None else "rank -"
    return (f"last incident: {manifest.get('time', '?')}  "
            f"{manifest.get('kind', '?')}  {rank_s}  "
            f"{manifest.get('path', '?')}")


def _render_snapshot(path: str, stall_deadline: float) -> int:
    with open(path) as fh:
        snap = json.load(fh)
    if snap.get("schema") != "repro.live/1":
        print(f"warning: unknown snapshot schema {snap.get('schema')!r}",
              file=sys.stderr)
    samples = [
        _sample_from_dict(i, d) for i, d in enumerate(snap.get("workers", []))
    ]
    print(f"telemetry snapshot: {path}  (k={snap.get('k', len(samples))})")
    print(render_table(samples, stall_deadline=stall_deadline))
    return 0


def _watch_slab(slab: TelemetrySlab, interval: float, iterations: int,
                stall_deadline: float, clear: bool,
                flight_dir: str | None = None) -> int:
    prev: list[WorkerSample] | None = None
    prev_t: float | None = None
    i = 0
    while iterations <= 0 or i < iterations:
        now = time.monotonic()
        samples = slab.sample(now=now)
        dt = (now - prev_t) if prev_t is not None else None
        if clear:
            print("\x1b[2J\x1b[H", end="")
        print(f"live telemetry  (k={slab.k}, poll {i + 1})")
        print(render_table(samples, prev=prev, dt=dt,
                           stall_deadline=stall_deadline))
        incident = incident_line(flight_dir)
        if incident:
            print(incident)
        prev, prev_t = samples, now
        i += 1
        if iterations > 0 and i >= iterations:
            break
        time.sleep(interval)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Live per-worker table over the shared telemetry slab."
    )
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--slab", metavar="DESCRIPTOR",
                     help="slab descriptor JSON written by "
                          "TelemetrySlab.write_descriptor")
    src.add_argument("--snapshot", metavar="SNAP",
                     help="offline telemetry snapshot "
                          "(MultiprocessTrainer.telemetry_snapshot)")
    parser.add_argument("--watch", action="store_true",
                        help="refresh until interrupted (default: one sample)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between refreshes (default 1.0)")
    parser.add_argument("--iterations", type=int, default=0,
                        help="stop after N refreshes (0 = until ^C)")
    parser.add_argument("--stall-deadline", type=float, default=5.0,
                        help="seconds of frozen progress before a row is "
                             "marked STALLED? (default 5)")
    parser.add_argument("--flight-dir", metavar="DIR",
                        help="flight-recorder directory to watch: appends "
                             "a 'last incident' status line (time, kind, "
                             "rank, bundle path) to each refresh")
    args = parser.parse_args(argv)

    if args.snapshot:
        rc = _render_snapshot(args.snapshot, args.stall_deadline)
        incident = incident_line(args.flight_dir)
        if incident:
            print(incident)
        return rc

    with open(args.slab) as fh:
        descriptor = json.load(fh)
    if descriptor.get("schema") != "repro.live-slab/1":
        print(f"warning: unknown slab schema {descriptor.get('schema')!r}",
              file=sys.stderr)
    slab = TelemetrySlab.attach(descriptor)
    try:
        iterations = args.iterations if args.watch else 1
        return _watch_slab(slab, args.interval, iterations,
                           args.stall_deadline, clear=args.watch,
                           flight_dir=args.flight_dir)
    except KeyboardInterrupt:
        return 0
    finally:
        # Non-owning attach: close() only detaches this process's view.
        slab.close()


if __name__ == "__main__":
    sys.exit(main())
