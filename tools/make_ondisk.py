#!/usr/bin/env python3
"""Convert a dataset to the out-of-core ``repro.ondisk/1`` layout.

Two sources:

* a built-in dataset name (``--dataset reddit --scale small``) — loaded
  in RAM, then written shard by shard;
* a synthetic spec (``--generate --num-vertices 10000000 --num-edges
  100000000``) — never materialized: edges are generated and scattered
  chunk by chunk, features shard by shard, so graphs far larger than
  RAM can be produced.

Usage::

    python tools/make_ondisk.py --dataset reddit --scale small out/reddit
    python tools/make_ondisk.py --generate --num-vertices 1000000 \
        --num-edges 20000000 --feat-dim 64 out/synth
    python tools/make_ondisk.py --verify out/synth
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.datasets import load_dataset  # noqa: E402
from repro.datasets.synthetic import ShardedSyntheticSpec  # noqa: E402
from repro.storage import (  # noqa: E402
    OnDiskDataset,
    write_ondisk_dataset,
    write_synthetic_ondisk,
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("root", help="output directory for the ondisk dataset")
    ap.add_argument("--dataset", help="built-in dataset name to convert")
    ap.add_argument("--scale", default="small",
                    help="built-in dataset scale (default: small)")
    ap.add_argument("--generate", action="store_true",
                    help="generate a synthetic graph shard by shard")
    ap.add_argument("--num-vertices", type=int, default=100_000)
    ap.add_argument("--num-edges", type=int, default=1_000_000)
    ap.add_argument("--feat-dim", type=int, default=32)
    ap.add_argument("--num-classes", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--edges-per-chunk", type=int, default=1_000_000)
    ap.add_argument("--rows-per-shard", type=int, default=65_536)
    ap.add_argument("--quantize", choices=("float32", "float16", "int8"),
                    default=None,
                    help="store feature shards quantized (int8 writes "
                         "per-shard float32 scale sidecars; gathers "
                         "dequantize into the compute dtype)")
    ap.add_argument("--verify", action="store_true",
                    help="re-hash every file of an existing ondisk dataset "
                         "against its manifest and exit")
    args = ap.parse_args(argv)

    if args.verify:
        ds = OnDiskDataset(args.root)
        ds.verify()
        print(f"{args.root}: all fingerprints match ({ds!r})")
        return 0

    if args.generate:
        spec = ShardedSyntheticSpec(
            name=f"synth-v{args.num_vertices}-e{args.num_edges}",
            num_vertices=args.num_vertices,
            num_edges=args.num_edges,
            feat_dim=args.feat_dim,
            num_classes=args.num_classes,
            seed=args.seed,
            edges_per_chunk=args.edges_per_chunk,
            rows_per_shard=args.rows_per_shard,
        )
        write_synthetic_ondisk(args.root, spec, quantize=args.quantize)
    elif args.dataset:
        ds = load_dataset(args.dataset, scale=args.scale)
        write_ondisk_dataset(ds, args.root,
                             rows_per_shard=args.rows_per_shard,
                             quantize=args.quantize)
    else:
        ap.error("need --dataset NAME or --generate")

    print(f"wrote {OnDiskDataset(args.root)!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
