#!/usr/bin/env python3
"""Serving load generator: writes ``BENCH_serve_latency.json``.

Drives a :class:`repro.serve.GNNServer` through two phases and records
the SLO numbers a serving-oriented PR must not regress:

* **closed loop** — a fixed client pool issues Zipfian-popularity
  requests back-to-back (each client waits for its response before
  sending the next).  This measures end-to-end latency percentiles,
  throughput, and the warm-cache hit rate the skewed workload earns.
* **open loop (overload)** — requests are submitted as fast as the
  submit path allows against a deliberately tiny admission bound, so
  offered load exceeds capacity.  This demonstrates load shedding
  engaging: a nonzero shed rate with the p99 of *admitted* requests
  staying bounded (queueing delay cannot exceed the queue bound).

The output schema (``repro.serve-bench/1``) is::

    {
      "schema": "repro.serve-bench/1",
      "mode": "smoke" | "full",
      "model": "gcn", "dataset": "reddit", "scale": "tiny",
      "zipf_exponent": 1.1,
      "closed_loop": {
        "requests", "clients", "seconds", "throughput_rps",
        "p50_ms", "p90_ms", "p99_ms", "max_ms",
        "cache_hit_rate",            # embed-cache hit rate, warm phase only
        "batches", "mean_batch_size"
      },
      "overload": {
        "offered", "completed", "shed", "shed_rate",
        "queue_depth_bound", "p50_ms", "p99_ms"
      }
    }

Usage::

    python tools/loadgen.py                  # full workload -> repo root
    python tools/loadgen.py --smoke          # tiny/fast variant (CI)
    python tools/loadgen.py --model magnn --dataset imdb
    python tools/loadgen.py --output path.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402

SCHEMA = "repro.serve-bench/1"
ACCEPTED_SCHEMAS = (SCHEMA,)
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_serve_latency.json")


def zipf_seeds(num_vertices: int, count: int, exponent: float,
               rng: np.random.Generator) -> np.ndarray:
    """``count`` seed ids with Zipfian popularity over all vertices."""
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    popularity = ranks ** -exponent
    popularity /= popularity.sum()
    return rng.choice(num_vertices, size=count, p=popularity)


def build_server(args):
    from repro.core import FlexGraphEngine
    from repro.datasets import load_dataset
    from repro import models
    from repro.serve import GNNServer, InferenceSession
    from repro.tensor import Adam, Tensor

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    factory = getattr(models, args.model)
    kwargs = {"max_instances_per_root": 30} if args.model == "magnn" else {}
    model = factory(ds.feat_dim, 16, ds.num_classes, seed=args.seed, **kwargs)
    engine = FlexGraphEngine(model, ds.graph, seed=args.seed)
    optimizer = Adam(model.parameters(), lr=0.01)
    engine.fit(Tensor(ds.features), ds.labels, optimizer, args.train_epochs,
               mask=ds.train_mask)
    session = InferenceSession(model, ds.graph, ds.features, seed=args.seed)
    server = GNNServer(
        session, num_workers=args.workers, max_batch_size=args.batch_size,
        max_delay=args.max_delay_ms / 1e3, max_queue_depth=args.queue_depth,
        flight_dir=args.flight_dir, slo_p99_ms=args.slo_p99_ms,
    )
    return ds, session, server


def run_closed_loop(server, session, seeds: np.ndarray, clients: int) -> dict:
    """Fixed client pool, one outstanding request per client."""
    from repro.serve.server import BATCH_SPAN, REQUEST_SPAN

    # Warm the cache with the head of the workload so the measured phase
    # reports the steady-state (warm) hit rate, then snapshot counters.
    warmup = seeds[: max(len(seeds) // 5, 1)]
    for seed in warmup:
        server.predict(np.array([seed]))
    hits0, misses0 = session.embed_cache.hits, session.embed_cache.misses

    measured = seeds[len(warmup):]
    shards = np.array_split(measured, clients)
    errors: list[Exception] = []

    def client(shard: np.ndarray) -> None:
        for seed in shard:
            try:
                server.predict(np.array([seed]))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)
                return

    threads = [threading.Thread(target=client, args=(shard,))
               for shard in shards if shard.size]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]

    hits = session.embed_cache.hits - hits0
    misses = session.embed_cache.misses - misses0
    reg = obs.get_registry()
    request_hist = reg.histogram("span." + REQUEST_SPAN)
    batch_hist = reg.histogram("span." + BATCH_SPAN)
    return {
        "requests": int(measured.size),
        "clients": int(clients),
        "seconds": elapsed,
        "throughput_rps": measured.size / elapsed if elapsed else 0.0,
        "p50_ms": request_hist.p50 * 1e3,
        "p90_ms": request_hist.p90 * 1e3,
        "p99_ms": request_hist.p99 * 1e3,
        "max_ms": (request_hist.max if request_hist.count else 0.0) * 1e3,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "batches": batch_hist.count,
        "mean_batch_size": (
            (measured.size + 0.0) / batch_hist.count if batch_hist.count else 0.0
        ),
    }


def run_overload(server, seeds: np.ndarray) -> dict:
    """Open loop: submit without waiting, faster than the server drains."""
    from repro.serve import ServerOverloaded
    from repro.serve.server import REQUEST_SPAN

    futures = []
    shed = 0
    for seed in seeds:
        try:
            futures.append(server.submit("predict", np.array([seed])))
        except ServerOverloaded:
            shed += 1
    for future in futures:
        future.result(timeout=60)
    reg = obs.get_registry()
    request_hist = reg.histogram("span." + REQUEST_SPAN)
    return {
        "offered": int(seeds.size),
        "completed": len(futures),
        "shed": shed,
        "shed_rate": shed / seeds.size if seeds.size else 0.0,
        "queue_depth_bound": server.batcher.max_queue_depth,
        "p50_ms": request_hist.p50 * 1e3,
        "p99_ms": request_hist.p99 * 1e3,
    }


def run_workload(args) -> dict:
    from repro.serve import GNNServer

    print(f"loadgen: {args.model} on {args.dataset}/{args.scale}, "
          f"{args.requests} closed-loop + {args.overload_requests} "
          f"open-loop requests, zipf {args.zipf}")
    ds, session, server = build_server(args)
    rng = np.random.default_rng(args.seed + 1)

    obs.reset()
    closed_seeds = zipf_seeds(ds.graph.num_vertices, args.requests, args.zipf, rng)
    with server:
        closed = run_closed_loop(server, session, closed_seeds, args.clients)
    print(f"  closed loop : {closed['throughput_rps']:.0f} req/s, "
          f"p50 {closed['p50_ms']:.2f}ms p99 {closed['p99_ms']:.2f}ms, "
          f"hit rate {closed['cache_hit_rate']:.1%}")

    # Fresh obs registry + a server with a tiny admission bound so the
    # open-loop burst actually exceeds capacity.
    obs.reset()
    overload_server = GNNServer(
        session, num_workers=args.workers, max_batch_size=args.batch_size,
        max_delay=args.max_delay_ms / 1e3,
        max_queue_depth=args.overload_queue_depth,
        flight_dir=args.flight_dir, slo_p99_ms=args.slo_p99_ms,
    )
    overload_seeds = zipf_seeds(
        ds.graph.num_vertices, args.overload_requests, args.zipf, rng
    )
    with overload_server:
        overload = run_overload(overload_server, overload_seeds)
    print(f"  overload    : {overload['shed']}/{overload['offered']} shed "
          f"({overload['shed_rate']:.1%}), admitted p99 "
          f"{overload['p99_ms']:.2f}ms")

    return {
        "schema": SCHEMA,
        "mode": "smoke" if args.scale == "tiny" else "full",
        "model": args.model,
        "dataset": args.dataset,
        "scale": args.scale,
        "zipf_exponent": args.zipf,
        "closed_loop": closed,
        "overload": overload,
    }


def validate_report(report: dict) -> None:
    """Raise ValueError when the report violates the serve-bench schema."""
    schema = report.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ValueError(f"bad schema: {schema!r}")
    closed = report.get("closed_loop")
    if not isinstance(closed, dict):
        raise ValueError("report missing closed_loop phase")
    for key in ("requests", "throughput_rps", "p50_ms", "p90_ms", "p99_ms",
                "cache_hit_rate"):
        if key not in closed:
            raise ValueError(f"closed_loop missing {key!r}")
    if closed["requests"] <= 0:
        raise ValueError("closed_loop measured zero requests")
    if not 0.0 <= closed["cache_hit_rate"] <= 1.0:
        raise ValueError("cache_hit_rate out of [0, 1]")
    if closed["p99_ms"] < closed["p50_ms"]:
        raise ValueError("closed_loop has p99 < p50")
    overload = report.get("overload")
    if not isinstance(overload, dict):
        raise ValueError("report missing overload phase")
    for key in ("offered", "completed", "shed", "shed_rate", "p99_ms"):
        if key not in overload:
            raise ValueError(f"overload missing {key!r}")
    if overload["completed"] + overload["shed"] != overload["offered"]:
        raise ValueError("overload completed + shed != offered")
    if overload["shed"] <= 0:
        raise ValueError("overload phase never shed — bound not exercised")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serving SLO workload -> BENCH_serve_latency.json"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny dataset, few requests (CI)")
    parser.add_argument("--model", default="gcn",
                        choices=("gcn", "gat", "gin", "pinsage", "magnn"))
    parser.add_argument("--dataset", default="reddit",
                        choices=("reddit", "fb91", "twitter", "imdb"))
    parser.add_argument("--scale", default=None,
                        choices=("tiny", "small", "bench"),
                        help="dataset scale (default: small, smoke: tiny)")
    parser.add_argument("--requests", type=int, default=None,
                        help="closed-loop requests (default 600, smoke 200)")
    parser.add_argument("--overload-requests", type=int, default=None,
                        help="open-loop requests (default 400, smoke 150)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf exponent of seed popularity")
    parser.add_argument("--train-epochs", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--max-delay-ms", type=float, default=1.0)
    parser.add_argument("--queue-depth", type=int, default=256,
                        help="closed-loop admission bound")
    parser.add_argument("--overload-queue-depth", type=int, default=8,
                        help="open-loop admission bound (small on purpose)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="enable the flight recorder: journal to DIR "
                             "and snapshot incident bundles on SLO breach")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        help="rolling-window p99 SLO (ms) for breach "
                             "snapshots; needs --flight-dir")
    args = parser.parse_args(argv)

    if args.scale is None:
        args.scale = "tiny" if args.smoke else "small"
    if args.requests is None:
        args.requests = 200 if args.smoke else 600
    if args.overload_requests is None:
        args.overload_requests = 150 if args.smoke else 400

    if args.flight_dir:
        from repro.obs.flight import FlightRecorder, install_flight

        os.makedirs(args.flight_dir, exist_ok=True)
        install_flight(FlightRecorder(journal_path=os.path.join(
            args.flight_dir, "journal-serve.jsonl")))

    try:
        report = run_workload(args)
    finally:
        if args.flight_dir:
            # Journal writes are asynchronous: drain before the daemon
            # writer thread dies with the interpreter.
            from repro.obs.flight import uninstall_flight

            recorder = uninstall_flight()
            if recorder is not None:
                recorder.close()
    validate_report(report)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"serve report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
