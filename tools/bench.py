#!/usr/bin/env python3
"""Fixed-matrix perf baseline: writes ``BENCH_epoch_time.json``.

Runs a small, fixed model/dataset matrix (single-machine and simulated
distributed configs) and records, per configuration, the median and p90
epoch seconds plus the peak concurrently materialized bytes — the three
numbers every perf-oriented PR must not regress.  The output schema
(``repro.bench/1``) is::

    {
      "schema": "repro.bench/1",
      "mode": "smoke" | "full",
      "configs": [
        {"name", "model", "dataset", "scale", "kind", "workers"?,
         "pipeline"?, "strategy", "epochs",
         "median_epoch_seconds", "p90_epoch_seconds",
         "peak_materialized_bytes", "time_basis": "wall" | "simulated"},
        ...
      ]
    }

Usage::

    python tools/bench.py                      # full matrix -> repo root
    python tools/bench.py --smoke              # tiny/fast (CI gate)
    python tools/bench.py --output path.json --chrome-trace trace.json

``--chrome-trace`` merges every configuration's spans into one Chrome
Trace Event Format file (one process-lane pair per config), loadable in
chrome://tracing or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import obs  # noqa: E402

SCHEMA = "repro.bench/1"
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_epoch_time.json")

#: the fixed matrix: strategy spread (HA vs SA exercises the hybrid
#: executor and the materialization counter), plus distributed runs with
#: and without pipeline processing (Figure 15b/c's comparison).
MATRIX = [
    {"name": "gcn-single-ha", "kind": "single", "model": "gcn",
     "dataset": "reddit", "strategy": "ha"},
    {"name": "gcn-single-sa", "kind": "single", "model": "gcn",
     "dataset": "reddit", "strategy": "sa"},
    {"name": "gat-single-ha", "kind": "single", "model": "gat",
     "dataset": "reddit", "strategy": "ha"},
    {"name": "gcn-dist4-pipelined", "kind": "distributed", "model": "gcn",
     "dataset": "reddit", "strategy": "ha", "workers": 4, "pipeline": True},
    {"name": "gcn-dist4-batched", "kind": "distributed", "model": "gcn",
     "dataset": "reddit", "strategy": "ha", "workers": 4, "pipeline": False},
]


def _build(config: dict, scale: str, seed: int):
    from repro import models
    from repro.datasets import load_dataset

    ds = load_dataset(config["dataset"], scale=scale, seed=seed)
    factory = getattr(models, config["model"])
    model = factory(ds.feat_dim, 16, ds.num_classes, seed=seed)
    return ds, model


def _run_single(config: dict, ds, model, epochs: int, seed: int) -> list[float]:
    from repro.core import FlexGraphEngine
    from repro.tensor import Adam, Tensor

    engine = FlexGraphEngine(model, ds.graph, strategy=config["strategy"],
                             seed=seed)
    optimizer = Adam(model.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    seconds = []
    for epoch in range(epochs):
        stats = engine.train_epoch(feats, ds.labels, optimizer,
                                   ds.train_mask, epoch)
        seconds.append(stats.times.total)
    return seconds


def _run_distributed(config: dict, ds, model, epochs: int,
                     seed: int) -> list[float]:
    from repro.distributed import DistributedTrainer
    from repro.graph import hash_partition
    from repro.tensor import Adam, Tensor

    labels = hash_partition(ds.graph.num_vertices, config["workers"])
    trainer = DistributedTrainer(
        model, ds.graph, labels, strategy=config["strategy"],
        pipeline=config["pipeline"], seed=seed,
    )
    optimizer = Adam(model.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    seconds = []
    for epoch in range(epochs):
        stats = trainer.train_epoch(feats, ds.labels, optimizer,
                                    ds.train_mask, epoch)
        seconds.append(stats.simulated_seconds)
    return seconds


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (numpy-free for tiny lists)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def run_matrix(scale: str, epochs: int, seed: int,
               chrome_trace: str | None = None) -> dict:
    """Run every config and return the bench report dict."""
    configs = []
    merged_events: list[dict] = []
    for index, config in enumerate(MATRIX):
        obs.reset()
        ds, model = _build(config, scale, seed)
        runner = _run_single if config["kind"] == "single" else _run_distributed
        seconds = runner(config, ds, model, epochs, seed)
        peak = obs.counter("scatter.materialized_bytes").peak
        row = {
            "name": config["name"],
            "model": config["model"],
            "dataset": config["dataset"],
            "scale": scale,
            "kind": config["kind"],
            "strategy": config["strategy"],
            "epochs": epochs,
            "median_epoch_seconds": statistics.median(seconds),
            "p90_epoch_seconds": _percentile(seconds, 90),
            "peak_materialized_bytes": peak,
            "time_basis": "wall" if config["kind"] == "single" else "simulated",
        }
        if config["kind"] == "distributed":
            row["workers"] = config["workers"]
            row["pipeline"] = config["pipeline"]
        configs.append(row)
        print(f"  {row['name']:<22} median {row['median_epoch_seconds']:.4f}s  "
              f"p90 {row['p90_epoch_seconds']:.4f}s  "
              f"peak {row['peak_materialized_bytes'] / 1e6:.2f} MB "
              f"({row['time_basis']})")
        if chrome_trace:
            # Each config gets its own pid lane pair in the merged trace.
            merged_events.extend(
                obs.to_chrome_trace(pid_offset=index * 10)["traceEvents"]
            )
    report = {"schema": SCHEMA,
              "mode": "smoke" if scale == "tiny" else "full",
              "scale": scale,
              "configs": configs}
    if chrome_trace:
        with open(chrome_trace, "w") as fh:
            json.dump({"traceEvents": merged_events,
                       "displayTimeUnit": "ms"}, fh)
            fh.write("\n")
        print(f"chrome trace written to {chrome_trace}")
    return report


def validate_report(report: dict) -> None:
    """Raise ValueError when the report violates the bench schema."""
    if report.get("schema") != SCHEMA:
        raise ValueError(f"bad schema: {report.get('schema')!r}")
    configs = report.get("configs")
    if not isinstance(configs, list) or len(configs) < 4:
        raise ValueError("bench report must contain >= 4 configurations")
    required = ("name", "model", "dataset", "kind", "epochs",
                "median_epoch_seconds", "p90_epoch_seconds",
                "peak_materialized_bytes", "time_basis")
    for row in configs:
        for key in required:
            if key not in row:
                raise ValueError(f"config {row.get('name')!r} missing {key!r}")
        if row["median_epoch_seconds"] <= 0:
            raise ValueError(f"config {row['name']!r} has non-positive median")
        if row["p90_epoch_seconds"] < row["median_epoch_seconds"]:
            raise ValueError(f"config {row['name']!r} has p90 < median")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fixed-matrix perf baseline -> BENCH_epoch_time.json"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny datasets, few epochs (CI gate)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="epochs per config (default: 5, smoke: 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="also write a merged Chrome trace of every config")
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else "small"
    epochs = args.epochs if args.epochs is not None else (3 if args.smoke else 5)
    print(f"bench matrix ({'smoke' if args.smoke else 'full'}): "
          f"{len(MATRIX)} configs, scale={scale}, {epochs} epochs each")
    report = run_matrix(scale, epochs, args.seed,
                        chrome_trace=args.chrome_trace)
    validate_report(report)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"bench report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
