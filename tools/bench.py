#!/usr/bin/env python3
"""Fixed-matrix perf baseline: writes ``BENCH_epoch_time.json``.

Runs a small, fixed model/dataset matrix (single-machine and simulated
distributed configs) and records, per configuration, the median and p90
epoch seconds, the peak concurrently materialized bytes, and the work
profile totals (FLOPs, bytes moved, peak achieved FLOP/s) — the numbers
every perf-oriented PR must not regress.  The output schema
(``repro.bench/2``) is::

    {
      "schema": "repro.bench/2",
      "mode": "smoke" | "full",
      "calibration_seconds": 0.0021,   # fixed numpy workload, this host
      "configs": [
        {"name", "model", "dataset", "scale", "kind", "workers"?,
         "pipeline"?, "strategy", "epochs",
         "median_epoch_seconds", "p90_epoch_seconds",
         "peak_materialized_bytes", "time_basis": "wall" | "simulated",
         "total_flops", "total_bytes", "peak_flops_per_sec"},
        ...
      ]
    }

Version 2 is a superset of version 1 (``validate_report`` accepts both;
the work-profile keys and ``calibration_seconds`` are new).

Usage::

    python tools/bench.py                      # full matrix -> repo root
    python tools/bench.py --smoke              # tiny/fast variant
    python tools/bench.py --kernels            # + per-reducer microbench rows
    python tools/bench.py --distributed        # scaling sweep (k=1/2/4,
                                               #   simulated vs multiprocess)
                                               #   -> BENCH_dist_scaling.json
    python tools/bench.py --check-against BENCH_epoch_time.json
    python tools/bench.py --output path.json --chrome-trace trace.json

``--check-against`` turns the run into a regression gate: the fresh
report is compared config-by-config against the given baseline and the
exit code is nonzero when any config's median epoch time regressed by
more than ``--tolerance`` (default 25%).  Medians are normalized by the
two reports' ``calibration_seconds`` when both carry one, so a slower
CI host does not read as a regression.  ``--chrome-trace`` merges every
configuration's spans into one Chrome Trace Event Format file (one
process-lane pair per config), loadable in chrome://tracing or
https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import obs  # noqa: E402

SCHEMA = "repro.bench/2"
#: schema versions validate_report accepts; /1 lacks the work-profile keys
ACCEPTED_SCHEMAS = ("repro.bench/1", "repro.bench/2")
DIST_SCHEMA = "repro.dist-bench/1"
ONDISK_SCHEMA = "repro.ondisk-bench/1"
QUANT_SCHEMA = "repro.quant-bench/1"
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_epoch_time.json")
DIST_OUTPUT = os.path.join(REPO_ROOT, "BENCH_dist_scaling.json")
ONDISK_OUTPUT = os.path.join(REPO_ROOT, "BENCH_ondisk_stream.json")
QUANT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_quant.json")
#: codecs the --quantized bench trains with (float32 is the baseline)
QUANT_CODECS = ("float32", "float16", "int8")
#: gate: int8 gathers must move at least this factor fewer wire bytes
QUANT_MIN_BYTES_SHRINK = 3.0
#: gate: int8 final loss / accuracy may drift at most this (relative)
QUANT_MAX_DRIFT = 0.01
#: (num_vertices, num_edges, feat_dim) of the --ondisk streaming bench
ONDISK_SIZES = {"tiny": (20_000, 200_000, 32), "small": (60_000, 1_200_000, 64)}
#: modeled H2D-link bandwidth of the --ondisk bench's transfer stub
ONDISK_TRANSFER_GBPS = 0.5
#: worker counts the --distributed scaling sweep measures
DIST_WORKER_COUNTS = (1, 2, 4)
#: default regression tolerance of the --check-against gate
DEFAULT_TOLERANCE = 0.25

#: the fixed matrix: strategy spread (HA vs SA exercises the hybrid
#: executor and the materialization counter), plus distributed runs with
#: and without pipeline processing (Figure 15b/c's comparison).
MATRIX = [
    {"name": "gcn-single-ha", "kind": "single", "model": "gcn",
     "dataset": "reddit", "strategy": "ha"},
    {"name": "gcn-single-sa", "kind": "single", "model": "gcn",
     "dataset": "reddit", "strategy": "sa"},
    {"name": "gat-single-ha", "kind": "single", "model": "gat",
     "dataset": "reddit", "strategy": "ha"},
    {"name": "gcn-dist4-pipelined", "kind": "distributed", "model": "gcn",
     "dataset": "reddit", "strategy": "ha", "workers": 4, "pipeline": True},
    {"name": "gcn-dist4-batched", "kind": "distributed", "model": "gcn",
     "dataset": "reddit", "strategy": "ha", "workers": 4, "pipeline": False},
]


def _build(config: dict, scale: str, seed: int):
    from repro import models
    from repro.datasets import load_dataset

    ds = load_dataset(config["dataset"], scale=scale, seed=seed)
    factory = getattr(models, config["model"])
    model = factory(ds.feat_dim, 16, ds.num_classes, seed=seed)
    return ds, model


def _run_single(config: dict, ds, model, epochs: int, seed: int) -> list[float]:
    from repro.core import FlexGraphEngine
    from repro.tensor import Adam, Tensor

    engine = FlexGraphEngine(model, ds.graph, strategy=config["strategy"],
                             seed=seed)
    optimizer = Adam(model.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    seconds = []
    for epoch in range(epochs):
        stats = engine.train_epoch(feats, ds.labels, optimizer,
                                   ds.train_mask, epoch)
        seconds.append(stats.times.total)
    return seconds


def _run_distributed(config: dict, ds, model, epochs: int,
                     seed: int) -> list[float]:
    from repro.distributed import DistributedTrainer
    from repro.graph import hash_partition
    from repro.tensor import Adam, Tensor

    labels = hash_partition(ds.graph.num_vertices, config["workers"])
    trainer = DistributedTrainer(
        model, ds.graph, labels, strategy=config["strategy"],
        pipeline=config["pipeline"], seed=seed,
    )
    optimizer = Adam(model.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    seconds = []
    for epoch in range(epochs):
        stats = trainer.train_epoch(feats, ds.labels, optimizer,
                                    ds.train_mask, epoch)
        seconds.append(stats.simulated_seconds)
    return seconds


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (numpy-free for tiny lists)."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def calibration_seconds(reps: int = 5) -> float:
    """Best-of-``reps`` seconds of a fixed numpy workload on this host.

    Used to normalize epoch times between machines: a baseline recorded
    on a fast workstation should not fail the gate on a slower CI
    runner.  The workload mixes dense matmul and an indexed scatter —
    the two kernels the benchmark configs actually spend time in.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.standard_normal((192, 192))
    idx = rng.integers(0, 192, size=4096)
    vals = rng.standard_normal((4096, 16))
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        b = a @ a
        out = np.zeros((192, 16))
        np.add.at(out, idx, vals)
        b.sum()
        best = min(best, time.perf_counter() - start)
    return best


def run_matrix(scale: str, epochs: int, seed: int,
               chrome_trace: str | None = None) -> dict:
    """Run every config and return the bench report dict."""
    configs = []
    merged_events: list[dict] = []
    for index, config in enumerate(MATRIX):
        obs.reset()
        ds, model = _build(config, scale, seed)
        runner = _run_single if config["kind"] == "single" else _run_distributed
        seconds = runner(config, ds, model, epochs, seed)
        peak = obs.counter("scatter.materialized_bytes").peak
        work = obs.work_snapshot()
        rates = obs.peak_work_rates()
        row = {
            "name": config["name"],
            "model": config["model"],
            "dataset": config["dataset"],
            "scale": scale,
            "kind": config["kind"],
            "strategy": config["strategy"],
            "epochs": epochs,
            "median_epoch_seconds": statistics.median(seconds),
            "p90_epoch_seconds": _percentile(seconds, 90),
            "peak_materialized_bytes": peak,
            "time_basis": "wall" if config["kind"] == "single" else "simulated",
            "total_flops": work["flops"],
            "total_bytes": work["bytes_read"] + work["bytes_written"],
            "peak_flops_per_sec": rates["peak_flops_per_sec"],
        }
        if config["kind"] == "distributed":
            row["workers"] = config["workers"]
            row["pipeline"] = config["pipeline"]
        configs.append(row)
        print(f"  {row['name']:<22} median {row['median_epoch_seconds']:.4f}s  "
              f"p90 {row['p90_epoch_seconds']:.4f}s  "
              f"peak {row['peak_materialized_bytes'] / 1e6:.2f} MB  "
              f"{row['total_flops'] / 1e6:.1f} MFLOP  "
              f"{row['total_bytes'] / 1e6:.1f} MB moved  "
              f"peak {row['peak_flops_per_sec'] / 1e6:.1f} MFLOP/s "
              f"({row['time_basis']})")
        if chrome_trace:
            # Each config gets its own pid lane pair in the merged trace.
            merged_events.extend(
                obs.to_chrome_trace(pid_offset=index * 10)["traceEvents"]
            )
    report = {"schema": SCHEMA,
              "mode": "smoke" if scale == "tiny" else "full",
              "scale": scale,
              "calibration_seconds": calibration_seconds(),
              "configs": configs}
    if chrome_trace:
        with open(chrome_trace, "w") as fh:
            json.dump({"traceEvents": merged_events,
                       "displayTimeUnit": "ms"}, fh)
            fh.write("\n")
        print(f"chrome trace written to {chrome_trace}")
    return report


def run_dist_scaling(scale: str, epochs: int, seed: int,
                     flight_dir: str | None = None) -> dict:
    """Distributed scaling sweep: wall-clock epoch seconds vs worker count,
    simulated backend next to the real multi-process backend.

    Writes rows for every ``(k, backend)`` pair in
    ``DIST_WORKER_COUNTS x {simulated, process}``.  Both backends run the
    same model/partition/seed, so their losses agree to float precision
    (``final_loss`` is recorded per row for exactly that cross-check);
    the columns that differ are the *measured* wall seconds — the
    simulated backend also carries its modeled cluster seconds in
    ``median_modeled_seconds``.
    """
    from repro import models
    from repro.datasets import load_dataset
    from repro.distributed import DistributedTrainer, MultiprocessTrainer
    from repro.graph import hash_partition
    from repro.tensor import Adam, Tensor

    ds = load_dataset("reddit", scale=scale, seed=seed)
    feats = Tensor(ds.features)
    rows = []
    for k in DIST_WORKER_COUNTS:
        part = hash_partition(ds.graph.num_vertices, k)
        for backend in ("simulated", "process"):
            obs.reset()
            model = models.gcn(ds.feat_dim, 16, ds.num_classes, seed=seed)
            if backend == "simulated":
                trainer = DistributedTrainer(model, ds.graph, part, seed=seed)
            else:
                trainer = MultiprocessTrainer(model, ds.graph, part, seed=seed,
                                              flight_dir=flight_dir)
            optimizer = Adam(model.parameters(), lr=0.01)
            wall, modeled, total_bytes, loss = [], [], 0.0, float("nan")
            try:
                for epoch in range(epochs):
                    start = time.perf_counter()
                    stats = trainer.train_epoch(feats, ds.labels, optimizer,
                                                ds.train_mask, epoch)
                    wall.append(time.perf_counter() - start)
                    if backend == "simulated":
                        modeled.append(stats.simulated_seconds)
                    total_bytes += stats.total_bytes
                    loss = stats.loss
            finally:
                if backend == "process":
                    trainer.close()
            row = {
                "name": f"gcn-dist{k}-{backend}",
                "model": "gcn",
                "dataset": "reddit",
                "scale": scale,
                "kind": "dist-scaling",
                "backend": backend,
                "workers": k,
                "epochs": epochs,
                "median_epoch_seconds": statistics.median(wall),
                "p90_epoch_seconds": _percentile(wall, 90),
                "time_basis": "wall",
                "total_bytes": total_bytes,
                "final_loss": loss,
            }
            if modeled:
                row["median_modeled_seconds"] = statistics.median(modeled)
            rows.append(row)
            print(f"  {row['name']:<22} median {row['median_epoch_seconds']:.4f}s  "
                  f"p90 {row['p90_epoch_seconds']:.4f}s  "
                  f"{row['total_bytes'] / 1e6:.2f} MB moved  "
                  f"loss {row['final_loss']:.4f}")
    return {"schema": DIST_SCHEMA,
            "mode": "smoke" if scale == "tiny" else "full",
            "scale": scale,
            "calibration_seconds": calibration_seconds(),
            "configs": rows}


def validate_dist_report(report: dict) -> None:
    """Raise ValueError when the dist-scaling report violates its schema."""
    if report.get("schema") != DIST_SCHEMA:
        raise ValueError(f"bad schema: {report.get('schema')!r}")
    rows = {(r.get("workers"), r.get("backend")): r
            for r in report.get("configs", [])}
    for k in DIST_WORKER_COUNTS:
        for backend in ("simulated", "process"):
            row = rows.get((k, backend))
            if row is None:
                raise ValueError(f"missing dist-scaling row k={k} {backend}")
            if row["median_epoch_seconds"] <= 0:
                raise ValueError(f"row {row['name']!r} has non-positive median")
    # Same math on both backends: losses must agree per worker count.
    for k in DIST_WORKER_COUNTS:
        sim = rows[(k, "simulated")]["final_loss"]
        proc = rows[(k, "process")]["final_loss"]
        if abs(sim - proc) > 1e-6 * max(1.0, abs(sim)):
            raise ValueError(
                f"k={k}: simulated loss {sim!r} != process loss {proc!r}"
            )


def run_ondisk_stream(scale: str, epochs: int, seed: int,
                      root: str | None = None) -> dict:
    """Streaming-loader benchmark over an out-of-core synthetic dataset.

    Generates a shard-by-shard ``repro.ondisk/1`` dataset (never
    materializing it in RAM), then trains identical sampled epochs with
    prefetch off (the synchronous baseline) and prefetch 2 (two loader
    workers producing batch N+1 while batch N trains).  Reports per-mode
    epoch medians, the measured overlap ratio, and the speedup — plus a
    loss-parity check, since the pre-drawn per-batch seeds make the two
    streams bitwise identical.

    The loader's device-transfer stub models the H2D link at
    ``ONDISK_TRANSFER_GBPS`` (a real blocking wait per batch, like
    SimulatedComm's modeled network time): with prefetch off the
    training loop eats every transfer, with prefetch on the transfers
    hide behind compute — the overlap a GPU pipeline would show.
    """
    import shutil
    import tempfile

    from repro import models
    from repro.core.sampling import MiniBatchTrainer
    from repro.datasets.synthetic import ShardedSyntheticSpec
    from repro.storage import OnDiskDataset, write_synthetic_ondisk
    from repro.tensor import Adam

    num_vertices, num_edges, feat_dim = ONDISK_SIZES[scale]
    tmp = None
    if root is None:
        tmp = tempfile.mkdtemp(prefix="ondisk-bench-")
        root = os.path.join(tmp, "ds")
    try:
        spec = ShardedSyntheticSpec(
            name=f"stream-{scale}", num_vertices=num_vertices,
            num_edges=num_edges, feat_dim=feat_dim, num_classes=16,
            seed=seed, edges_per_chunk=max(num_edges // 8, 1),
            rows_per_shard=8192,
        )
        t0 = time.perf_counter()
        write_synthetic_ondisk(root, spec)
        generate_seconds = time.perf_counter() - t0
        ds = OnDiskDataset(root)
        print(f"  generated {ds!r} in {generate_seconds:.2f}s")
        rows = []
        for prefetch, workers in ((0, 0), (2, 2)):
            model = models.gcn(ds.feat_dim, 16, ds.num_classes, seed=seed)
            trainer = MiniBatchTrainer(
                model, ds, batch_size=512, fanouts=[10, 10], seed=seed,
                prefetch_depth=prefetch, num_workers=workers,
                modeled_transfer_gbps=ONDISK_TRANSFER_GBPS,
            )
            optimizer = Adam(model.parameters(), lr=0.01)
            wall, overlaps, losses = [], [], []
            for epoch in range(epochs):
                stats = trainer.train_epoch(
                    optimizer=optimizer, mask=ds.train_mask, epoch=epoch,
                )
                wall.append(stats.seconds)
                overlaps.append(stats.overlap_efficiency)
                losses.append(stats.loss)
            row = {
                "name": f"ondisk-stream-prefetch{prefetch}",
                "model": "gcn",
                "dataset": spec.name,
                "scale": scale,
                "kind": "ondisk-stream",
                "prefetch_depth": prefetch,
                "num_workers": workers,
                "epochs": epochs,
                "median_epoch_seconds": statistics.median(wall),
                "p90_epoch_seconds": _percentile(wall, 90),
                "time_basis": "wall",
                "overlap_efficiency": statistics.median(overlaps),
                "final_loss": losses[-1],
            }
            rows.append(row)
            print(f"  {row['name']:<24} median "
                  f"{row['median_epoch_seconds']:.4f}s  "
                  f"overlap {row['overlap_efficiency']:.2f}  "
                  f"loss {row['final_loss']:.4f}")
        speedup = (rows[0]["median_epoch_seconds"]
                   / max(rows[1]["median_epoch_seconds"], 1e-12))
        print(f"  prefetch speedup: {speedup:.2f}x")
        return {
            "schema": ONDISK_SCHEMA,
            "mode": "smoke" if scale == "tiny" else "full",
            "scale": scale,
            "calibration_seconds": calibration_seconds(),
            "dataset": {"num_vertices": num_vertices,
                        "num_edges": num_edges,
                        "feat_dim": feat_dim,
                        "generate_seconds": generate_seconds,
                        "ondisk_bytes": _tree_bytes(root)},
            "modeled_transfer_gbps": ONDISK_TRANSFER_GBPS,
            "prefetch_speedup": speedup,
            "configs": rows,
        }
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def _tree_bytes(root: str) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            total += os.path.getsize(os.path.join(dirpath, name))
    return total


def validate_ondisk_report(report: dict) -> None:
    """Raise ValueError when the ondisk-stream report violates its schema."""
    if report.get("schema") != ONDISK_SCHEMA:
        raise ValueError(f"bad schema: {report.get('schema')!r}")
    rows = {r.get("prefetch_depth"): r for r in report.get("configs", [])}
    for prefetch in (0, 2):
        row = rows.get(prefetch)
        if row is None:
            raise ValueError(f"missing ondisk-stream row prefetch={prefetch}")
        if row["median_epoch_seconds"] <= 0:
            raise ValueError(f"row {row['name']!r} has non-positive median")
        if not 0.0 <= row["overlap_efficiency"] <= 1.0:
            raise ValueError(f"row {row['name']!r} overlap out of range")
    # Pre-drawn per-batch seeds: the streams are identical, so losses
    # must match bitwise, not approximately.
    if rows[0]["final_loss"] != rows[2]["final_loss"]:
        raise ValueError(
            f"prefetch changed the training stream: loss "
            f"{rows[0]['final_loss']!r} != {rows[2]['final_loss']!r}"
        )
    if report.get("prefetch_speedup", 0) <= 0:
        raise ValueError("missing or non-positive prefetch_speedup")


def run_quantized(scale: str, epochs: int, seed: int) -> dict:
    """Quantized-tier benchmark: wire bytes, quality drift, cache hit rate.

    Three measurements, one report (``repro.quant-bench/1``):

    * **Training rows** — identical sampled mini-batch runs with the
      feature tier stored as float32 / float16 / int8
      (:class:`~repro.loader.QuantizedSource`, dequantize on gather).
      Per codec: epoch medians, final loss and train accuracy, and the
      gather traffic both as compute bytes (``loader.bytes_gathered``)
      and storage wire bytes (``loader.wire_bytes``) — int8 must move
      ``>= QUANT_MIN_BYTES_SHRINK``x fewer wire bytes than float32
      while its loss/accuracy stay within ``QUANT_MAX_DRIFT`` relative.
    * **Cache rows** — an :class:`~repro.serve.EmbeddingCache` at a
      fixed byte budget serving a Zipfian request stream, exact-fp32 vs
      int8 storage.  The int8 cache holds ~4x the vertices per byte,
      so its *warm* hit rate (second half of the stream) must come out
      strictly higher.
    """
    import numpy as np

    from repro import models
    from repro.core.sampling import MiniBatchTrainer
    from repro.datasets import load_dataset
    from repro.serve import EmbeddingCache
    from repro.tensor import Adam, Tensor
    from repro.tensor.quant import wire_bytes_per_row

    ds = load_dataset("reddit", scale=scale, seed=seed)
    # Quality drift is measured once the losses settle: run enough
    # steps for convergence (early-training noise — a handful of
    # optimizer steps — dominates the codec's error contribution
    # otherwise) and smooth the final loss over the last five epochs.
    epochs = max(epochs, 20)
    rows = []
    for codec in QUANT_CODECS:
        obs.reset()
        model = models.gcn(ds.feat_dim, 16, ds.num_classes, seed=seed)
        trainer = MiniBatchTrainer(
            model, ds, batch_size=64, fanouts=[10, 10], seed=seed,
            feature_dtype=codec,
        )
        optimizer = Adam(model.parameters(), lr=0.01)
        wall, losses, accs = [], [], []
        for epoch in range(epochs):
            stats = trainer.train_epoch(
                optimizer=optimizer, mask=ds.train_mask, epoch=epoch,
            )
            wall.append(stats.seconds)
            losses.append(stats.loss)
            accs.append(stats.train_accuracy)
        row = {
            "name": f"quant-train-{codec}",
            "model": "gcn",
            "dataset": "reddit",
            "scale": scale,
            "kind": "quant-train",
            "codec": codec,
            "epochs": epochs,
            "median_epoch_seconds": statistics.median(wall),
            "p90_epoch_seconds": _percentile(wall, 90),
            "time_basis": "wall",
            "final_loss": statistics.mean(losses[-5:]),
            "final_train_accuracy": statistics.mean(accs[-5:]),
            "val_accuracy": trainer.evaluate(
                Tensor(ds.features), ds.labels, ds.val_mask
            ),
            "wire_bytes_per_row": wire_bytes_per_row(codec, ds.feat_dim),
            "gather_wire_bytes": obs.counter("loader.wire_bytes").total,
            "gather_compute_bytes": obs.counter("loader.bytes_gathered").total,
            "dequantize_op_bytes":
                obs.counter("profile.op.feature.dequantize.bytes").total,
        }
        rows.append(row)
        print(f"  {row['name']:<22} median {row['median_epoch_seconds']:.4f}s  "
              f"loss {row['final_loss']:.4f}  "
              f"acc {row['final_train_accuracy']:.3f}  "
              f"wire {row['gather_wire_bytes'] / 1e6:.2f} MB "
              f"({row['wire_bytes_per_row']} B/row)")

    by_codec = {row["codec"]: row for row in rows}
    base = by_codec["float32"]
    derived = {
        "int8_wire_bytes_shrink":
            base["gather_wire_bytes"]
            / max(by_codec["int8"]["gather_wire_bytes"], 1.0),
        # Denominator floored at 1: near-converged losses sit well below
        # 1.0, where a pure ratio would amplify batch noise into the
        # gate; below the floor this is absolute drift in loss units.
        "int8_loss_drift": abs(by_codec["int8"]["final_loss"]
                               - base["final_loss"])
            / max(abs(base["final_loss"]), 1.0),
        # Accuracy drift over the deterministic full-batch validation
        # pass (no minibatch sampling noise in the measurement itself).
        "int8_accuracy_drift":
            abs(by_codec["int8"]["val_accuracy"] - base["val_accuracy"])
            / max(base["val_accuracy"], 1e-12),
    }
    print(f"  int8 vs float32: {derived['int8_wire_bytes_shrink']:.2f}x fewer "
          f"wire bytes, loss drift {derived['int8_loss_drift']:.2%}, "
          f"accuracy drift {derived['int8_accuracy_drift']:.2%}")

    # Embedding-cache comparison: same byte budget, Zipfian seeds.
    rng = np.random.default_rng(seed)
    num_vertices, dim = ds.graph.num_vertices, 64
    table = rng.standard_normal((num_vertices, dim)).astype(np.float32)
    budget = max(num_vertices // 10, 16) * dim * 4  # ~10% of vertices in fp32
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    popularity = ranks ** -1.1
    popularity /= popularity.sum()
    requests = rng.choice(num_vertices, size=4000, p=popularity)
    half = requests.size // 2
    for store_dtype in ("float32", "int8"):
        cache = EmbeddingCache(budget, store_dtype=store_dtype)
        warm_base = None
        for start in range(0, requests.size, 32):
            chunk = np.unique(requests[start : start + 32])
            hit_mask, _ = cache.lookup(0, chunk)
            missing = chunk[~hit_mask]
            if missing.size:
                cache.store(0, missing, table[missing], version=1)
            if warm_base is None and start + 32 >= half:
                warm_base = (cache.hits, cache.misses)
        warm_hits = cache.hits - warm_base[0]
        warm_misses = cache.misses - warm_base[1]
        stats = cache.stats()
        row = {
            "name": f"quant-cache-{store_dtype}",
            "model": "embedding-cache",
            "dataset": "zipf-1.1",
            "scale": scale,
            "kind": "quant-cache",
            "codec": store_dtype,
            "epochs": epochs,
            "budget_bytes": budget,
            "entries": stats["entries"],
            "resident_bytes": stats["bytes"],
            "hit_rate": stats["hit_rate"],
            "warm_hit_rate": warm_hits / max(warm_hits + warm_misses, 1),
        }
        rows.append(row)
        print(f"  {row['name']:<22} entries {row['entries']:5d}  "
              f"hit {row['hit_rate']:.1%}  warm hit {row['warm_hit_rate']:.1%}")
    return {
        "schema": QUANT_SCHEMA,
        "mode": "smoke" if scale == "tiny" else "full",
        "scale": scale,
        "calibration_seconds": calibration_seconds(),
        "derived": derived,
        "configs": rows,
    }


def validate_quant_report(report: dict) -> None:
    """Raise ValueError when the quantized-tier report violates its gates.

    Beyond schema shape this enforces the PR's acceptance criteria: the
    int8 path must move ``>= QUANT_MIN_BYTES_SHRINK``x fewer gather wire
    bytes than float32 at ``<= QUANT_MAX_DRIFT`` relative loss/accuracy
    drift, and the int8 embedding cache must beat the exact-fp32 cache's
    warm hit rate at the same byte budget.
    """
    if report.get("schema") != QUANT_SCHEMA:
        raise ValueError(f"bad schema: {report.get('schema')!r}")
    train = {r.get("codec"): r for r in report.get("configs", [])
             if r.get("kind") == "quant-train"}
    for codec in QUANT_CODECS:
        row = train.get(codec)
        if row is None:
            raise ValueError(f"missing quant-train row for codec {codec!r}")
        if row["median_epoch_seconds"] <= 0:
            raise ValueError(f"row {row['name']!r} has non-positive median")
    derived = report.get("derived", {})
    shrink = derived.get("int8_wire_bytes_shrink", 0.0)
    if shrink < QUANT_MIN_BYTES_SHRINK:
        raise ValueError(
            f"int8 gather wire bytes shrank only {shrink:.2f}x vs float32 "
            f"(gate: >= {QUANT_MIN_BYTES_SHRINK}x)"
        )
    for key in ("int8_loss_drift", "int8_accuracy_drift"):
        drift = derived.get(key)
        if drift is None or drift > QUANT_MAX_DRIFT:
            raise ValueError(
                f"{key} is {drift!r} (gate: <= {QUANT_MAX_DRIFT:.0%} relative)"
            )
    cache = {r.get("codec"): r for r in report.get("configs", [])
             if r.get("kind") == "quant-cache"}
    for codec in ("float32", "int8"):
        if codec not in cache:
            raise ValueError(f"missing quant-cache row for codec {codec!r}")
        if cache[codec]["resident_bytes"] > cache[codec]["budget_bytes"]:
            raise ValueError(
                f"quant-cache-{codec} exceeded its byte budget"
            )
    if cache["int8"]["warm_hit_rate"] <= cache["float32"]["warm_hit_rate"]:
        raise ValueError(
            f"int8 cache warm hit rate {cache['int8']['warm_hit_rate']:.1%} "
            f"does not beat fp32's {cache['float32']['warm_hit_rate']:.1%} "
            "at the same budget"
        )


#: synthetic kernel-microbench shapes per scale: (edges, destinations, dim)
KERNEL_SIZES = {"tiny": (2_000, 200, 16), "small": (20_000, 2_000, 32)}
#: reducers measured by --kernels, planned and unplanned
KERNEL_OPS = ("scatter_add", "scatter_mean", "scatter_max", "scatter_min",
              "scatter_softmax", "segment_sum", "segment_mean")


def run_kernel_matrix(scale: str, seed: int, reps: int | None = None) -> list[dict]:
    """Per-reducer microbenchmark rows (kind="kernel"), planned vs unplanned.

    Each row times one forward+backward through a single reduction kernel
    on a synthetic index structure.  The *planned* variant reuses a
    prebuilt :class:`repro.tensor.plans.ReductionPlan` (the steady-state
    hot path once the plan cache is warm); the *unplanned* variant builds
    an ephemeral plan per call (the cold path).  Rows share the
    ``repro.bench/2`` config schema so the --check-against gate covers
    them, and add ``ns_per_element``/``planned`` for kernel-level reading.
    """
    import numpy as np

    from repro.tensor import Tensor
    from repro.tensor import scatter as sc
    from repro.tensor.plans import ReductionPlan

    E, n, dim = KERNEL_SIZES.get(scale, KERNEL_SIZES["small"])
    reps = reps if reps is not None else (5 if scale == "tiny" else 9)
    rng = np.random.default_rng(seed)
    index = rng.integers(0, n, size=E, dtype=np.int64)
    values = rng.standard_normal((E, dim))
    g_out = rng.standard_normal((n, dim))
    g_edge = rng.standard_normal((E, dim))
    index_plan = ReductionPlan.from_index(index, n)
    offsets, order = index_plan.offsets, index_plan.gather
    segment_plan = ReductionPlan.from_segments(offsets, order, E)

    def scatter_case(op, plan):
        fn = getattr(sc, op)
        grad = g_edge if op == "scatter_softmax" else g_out

        def run():
            out = fn(Tensor(values, requires_grad=True), index, n, plan=plan)
            out.backward(grad)
        return run

    def segment_case(reducer, plan):
        def run():
            out = sc.segment_reduce_csr(Tensor(values, requires_grad=True),
                                        offsets, order, reducer, plan=plan)
            out.backward(g_out)
        return run

    rows = []
    for op in KERNEL_OPS:
        for planned in (True, False):
            if op.startswith("segment_"):
                case = segment_case(op.split("_", 1)[1],
                                    segment_plan if planned else None)
            else:
                case = scatter_case(op, index_plan if planned else None)
            case()  # warmup: builds the plan's lazy matrices untimed
            obs.reset()
            seconds = []
            for _ in range(reps):
                start = time.perf_counter()
                case()
                seconds.append(time.perf_counter() - start)
            work = obs.work_snapshot()
            median = statistics.median(seconds)
            variant = "planned" if planned else "unplanned"
            rows.append({
                "name": f"kernel-{op}-{variant}",
                "model": op,
                "dataset": "synthetic",
                "scale": scale,
                "kind": "kernel",
                "strategy": variant,
                "planned": planned,
                "epochs": reps,
                "median_epoch_seconds": median,
                "p90_epoch_seconds": _percentile(seconds, 90),
                "peak_materialized_bytes":
                    obs.counter("scatter.materialized_bytes").peak,
                "time_basis": "wall",
                "total_flops": work["flops"],
                "total_bytes": work["bytes_read"] + work["bytes_written"],
                "peak_flops_per_sec": (
                    (work["flops"] / reps) / median if median > 0 else 0.0
                ),
                "elements": E * dim,
                "ns_per_element": median * 1e9 / (E * dim),
            })
            print(f"  {rows[-1]['name']:<36} median {median * 1e6:8.1f} us  "
                  f"{rows[-1]['ns_per_element']:7.2f} ns/elem")
    return rows


def plan_cache_regressions(report: dict,
                           tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Intra-report plan-cache check over kernel rows.

    A *planned* kernel slower than its *unplanned* sibling beyond
    ``tolerance`` means plan reuse stopped paying for itself — a
    plan-cache regression even when absolute times look fine (e.g. both
    sped up, but planning now adds overhead instead of removing it).
    """
    rows = {row["name"]: row for row in report.get("configs", [])
            if row.get("kind") == "kernel"}
    regressions = []
    for name, row in sorted(rows.items()):
        if not name.endswith("-planned"):
            continue
        sibling = rows.get(name[: -len("planned")] + "unplanned")
        if sibling is None:
            continue
        ratio = row["median_epoch_seconds"] / sibling["median_epoch_seconds"]
        if ratio > 1.0 + tolerance:
            regressions.append(
                f"{name}: planned kernel is {ratio:.2f}x the unplanned "
                f"median (plan-cache regression, tolerance "
                f"{1.0 + tolerance:.2f}x)"
            )
    return regressions


def validate_report(report: dict) -> None:
    """Raise ValueError when the report violates the bench schema."""
    schema = report.get("schema")
    if schema not in ACCEPTED_SCHEMAS:
        raise ValueError(f"bad schema: {schema!r}")
    configs = report.get("configs")
    if not isinstance(configs, list) or len(configs) < 4:
        raise ValueError("bench report must contain >= 4 configurations")
    required = ["name", "model", "dataset", "kind", "epochs",
                "median_epoch_seconds", "p90_epoch_seconds",
                "peak_materialized_bytes", "time_basis"]
    if schema == SCHEMA:
        required += ["total_flops", "total_bytes", "peak_flops_per_sec"]
    for row in configs:
        for key in required:
            if key not in row:
                raise ValueError(f"config {row.get('name')!r} missing {key!r}")
        if row["median_epoch_seconds"] <= 0:
            raise ValueError(f"config {row['name']!r} has non-positive median")
        if row["p90_epoch_seconds"] < row["median_epoch_seconds"]:
            raise ValueError(f"config {row['name']!r} has p90 < median")


def compare_reports(fresh: dict, baseline: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Regression check of ``fresh`` against ``baseline``.

    Returns a list of human-readable regression descriptions (empty ==
    gate passes).  A config regresses when its (calibration-normalized)
    median epoch time exceeds the baseline's by more than ``tolerance``.
    Configs are matched by name; a config present in only one report, or
    measured at a different scale/epoch count, is skipped — such rows
    are not comparable, and the skip is reported on stdout rather than
    failed silently.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    baseline_rows = {row["name"]: row for row in baseline.get("configs", [])}
    # Host-speed normalization: divide each median by its report's
    # calibration time when both reports carry one.
    fresh_cal = fresh.get("calibration_seconds")
    base_cal = baseline.get("calibration_seconds")
    normalize = bool(fresh_cal and base_cal)
    regressions: list[str] = []
    for row in fresh.get("configs", []):
        base = baseline_rows.get(row["name"])
        if base is None:
            print(f"  [compare] {row['name']}: not in baseline, skipped")
            continue
        if (row.get("scale") != base.get("scale")
                or row["epochs"] != base["epochs"]):
            print(f"  [compare] {row['name']}: scale/epochs differ from "
                  f"baseline, skipped")
            continue
        fresh_median = row["median_epoch_seconds"]
        base_median = base["median_epoch_seconds"]
        if normalize and row["time_basis"] == "wall":
            fresh_median /= fresh_cal
            base_median /= base_cal
        ratio = fresh_median / base_median
        if ratio > 1.0 + tolerance:
            regressions.append(
                f"{row['name']}: median epoch time regressed {ratio:.2f}x "
                f"(baseline {base['median_epoch_seconds']:.4f}s, "
                f"fresh {row['median_epoch_seconds']:.4f}s, "
                f"tolerance {1.0 + tolerance:.2f}x"
                f"{', calibration-normalized' if normalize and row['time_basis'] == 'wall' else ''})"
            )
        else:
            print(f"  [compare] {row['name']}: {ratio:.2f}x vs baseline, ok")
    # Plan-cache gate: planned kernel rows must beat (or match, within
    # tolerance) their unplanned siblings in the fresh report.
    regressions.extend(plan_cache_regressions(fresh, tolerance))
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fixed-matrix perf baseline -> BENCH_epoch_time.json"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="tiny datasets, few epochs")
    parser.add_argument("--epochs", type=int, default=None,
                        help="epochs per config (default: 5, smoke: 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="also write a merged Chrome trace of every config")
    parser.add_argument("--kernels", action="store_true",
                        help="also run the per-reducer kernel microbenchmark "
                             "(planned vs unplanned rows, kind='kernel')")
    parser.add_argument("--distributed", action="store_true",
                        help="run the distributed scaling sweep instead of "
                             "the fixed matrix: wall-clock epoch seconds for "
                             f"k in {DIST_WORKER_COUNTS}, simulated vs real "
                             f"multiprocess backend -> {DIST_OUTPUT}")
    parser.add_argument("--ondisk", action="store_true",
                        help="run the out-of-core streaming-loader bench "
                             "instead of the fixed matrix: prefetch-off vs "
                             "prefetch-2 epoch medians and overlap ratio "
                             f"-> {ONDISK_OUTPUT}")
    parser.add_argument("--quantized", action="store_true",
                        help="run the quantized-tier bench instead of the "
                             "fixed matrix: fp32/fp16/int8 training rows "
                             "(wire bytes + quality drift) and the "
                             "same-budget embedding-cache comparison "
                             f"-> {QUANT_OUTPUT}")
    parser.add_argument("--ondisk-root", metavar="DIR", default=None,
                        help="reuse/keep the generated ondisk dataset at DIR "
                             "instead of a throwaway temp directory")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="enable the flight recorder for the distributed "
                             "sweep: per-rank journals and incident bundles "
                             "land under DIR")
    parser.add_argument("--check-against", metavar="BASELINE",
                        help="compare against a committed baseline report "
                             "and exit 1 on median epoch-time regression")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional median regression for "
                             f"--check-against (default {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)

    scale = "tiny" if args.smoke else "small"
    epochs = args.epochs if args.epochs is not None else (3 if args.smoke else 5)

    if args.ondisk:
        output = (args.output if args.output != DEFAULT_OUTPUT
                  else ONDISK_OUTPUT)
        print(f"ondisk streaming bench "
              f"({'smoke' if args.smoke else 'full'}): scale={scale}, "
              f"{epochs} epochs per prefetch mode")
        report = run_ondisk_stream(scale, epochs, args.seed,
                                   root=args.ondisk_root)
        validate_ondisk_report(report)
        with open(output, "w") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"ondisk stream report written to {output}")
        return 0

    if args.quantized:
        output = (args.output if args.output != DEFAULT_OUTPUT
                  else QUANT_OUTPUT)
        print(f"quantized-tier bench "
              f"({'smoke' if args.smoke else 'full'}): scale={scale}, "
              f"codecs {QUANT_CODECS}, {epochs} epochs each")
        report = run_quantized(scale, epochs, args.seed)
        validate_quant_report(report)
        with open(output, "w") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"quantized-tier report written to {output}")
        return 0

    if args.distributed:
        output = (args.output if args.output != DEFAULT_OUTPUT
                  else DIST_OUTPUT)
        print(f"distributed scaling sweep "
              f"({'smoke' if args.smoke else 'full'}): "
              f"k in {DIST_WORKER_COUNTS}, scale={scale}, "
              f"{epochs} epochs each")
        if args.flight_dir:
            os.makedirs(args.flight_dir, exist_ok=True)
        report = run_dist_scaling(scale, epochs, args.seed,
                                  flight_dir=args.flight_dir)
        validate_dist_report(report)
        with open(output, "w") as fh:
            json.dump(report, fh, indent=1)
            fh.write("\n")
        print(f"dist scaling report written to {output}")
        return 0

    print(f"bench matrix ({'smoke' if args.smoke else 'full'}): "
          f"{len(MATRIX)} configs, scale={scale}, {epochs} epochs each")
    report = run_matrix(scale, epochs, args.seed,
                        chrome_trace=args.chrome_trace)
    if args.kernels:
        print(f"kernel microbenchmark: {len(KERNEL_OPS)} reducers, "
              f"planned vs unplanned")
        report["configs"].extend(run_kernel_matrix(scale, args.seed))
    validate_report(report)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(f"bench report written to {args.output}")

    if args.check_against:
        with open(args.check_against) as fh:
            baseline = json.load(fh)
        validate_report(baseline)
        regressions = compare_reports(report, baseline,
                                      tolerance=args.tolerance)
        if regressions:
            print("bench regression gate FAILED:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"bench regression gate passed "
              f"(vs {args.check_against}, tolerance "
              f"{1.0 + args.tolerance:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
