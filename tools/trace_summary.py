#!/usr/bin/env python3
"""Pretty-print a ``repro.obs`` JSON trace (``flexgraph ... --trace``).

Usage::

    python tools/trace_summary.py out.json            # aggregated summary
    python tools/trace_summary.py out.json --spans    # per-span listing
    python tools/trace_summary.py out.json --events   # per-event listing

The summary view aggregates spans by name (count / total / mean / max,
``~`` marking simulated durations), then lists counters (total + peak),
gauges and event counts — the same rendering ``repro.obs.summary()``
produces for a live registry.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs import aggregate_spans, render_summary  # noqa: E402


def _span_listing(spans: list[dict], limit: int) -> str:
    lines = [f"  {'t':>10}  {'duration':>10}  span"]
    for s in spans[:limit]:
        indent = "  " * int(s.get("depth", 0))
        attrs = s.get("attrs") or {}
        rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
        sim = "~" if s.get("simulated") else " "
        lines.append(
            f"  {s['start'] * 1e3:9.3f}ms {s['duration'] * 1e3:9.3f}ms "
            f"{sim}{indent}{s['name']}  {rendered}"
        )
    if len(spans) > limit:
        lines.append(f"  ... {len(spans) - limit} more (raise --limit)")
    return "\n".join(lines)


def _event_listing(events: list[dict], limit: int) -> str:
    lines = []
    for e in events[:limit]:
        attrs = e.get("attrs") or {}
        rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(f"  {e['time'] * 1e3:9.3f}ms  {e['name']}  {rendered}")
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} more (raise --limit)")
    return "\n".join(lines) or "  (no events)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Pretty-print a repro.obs JSON trace file."
    )
    parser.add_argument("trace", help="path to a --trace JSON file")
    parser.add_argument("--spans", action="store_true",
                        help="list individual spans in time order")
    parser.add_argument("--events", action="store_true",
                        help="list individual events in time order")
    parser.add_argument("--limit", type=int, default=200,
                        help="max rows for --spans/--events (default 200)")
    args = parser.parse_args(argv)

    with open(args.trace) as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema not in ("repro.obs/1", "repro.obs/2"):
        print(f"warning: unknown trace schema {schema!r}; "
              "attempting to render anyway", file=sys.stderr)

    print(f"trace: {args.trace}  "
          f"({len(data.get('spans', []))} spans, "
          f"{len(data.get('events', []))} events)")
    if args.spans:
        print(_span_listing(data.get("spans", []), args.limit))
        return 0
    if args.events:
        print(_event_listing(data.get("events", []), args.limit))
        return 0
    print(render_summary(
        aggregate_spans(data.get("spans", [])),
        data.get("counters", {}),
        data.get("gauges", {}),
        data.get("events", []),
        data.get("meta"),
        histograms=data.get("histograms", {}),
        epochs=data.get("epochs", {}),
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
