#!/usr/bin/env python3
"""Pretty-print a ``repro.obs`` JSON trace (``flexgraph ... --trace``).

Usage::

    python tools/trace_summary.py out.json            # aggregated summary
    python tools/trace_summary.py out.json --spans    # per-span listing
    python tools/trace_summary.py out.json --events   # per-event listing

The summary view aggregates spans by name (count / total / mean / max,
``~`` marking simulated durations), then lists counters (total + peak),
gauges and event counts — the same rendering ``repro.obs.summary()``
produces for a live registry.

Merged multiprocess traces (spans carrying an integer ``worker`` attr
from two or more ranks) additionally get **per-rank sections** — each
rank's spans aggregated separately, in lane order — and a cross-rank
**critical path** line naming, per layer, the rank whose compute+comm
bounded the barrier.  ``--per-rank`` forces the sections on even for a
single-rank trace.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs import aggregate_spans, render_summary, straggler_report  # noqa: E402


def _span_listing(spans: list[dict], limit: int) -> str:
    lines = [f"  {'t':>10}  {'duration':>10}  span"]
    for s in spans[:limit]:
        indent = "  " * int(s.get("depth", 0))
        attrs = s.get("attrs") or {}
        rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
        sim = "~" if s.get("simulated") else " "
        lines.append(
            f"  {s['start'] * 1e3:9.3f}ms {s['duration'] * 1e3:9.3f}ms "
            f"{sim}{indent}{s['name']}  {rendered}"
        )
    if len(spans) > limit:
        lines.append(f"  ... {len(spans) - limit} more (raise --limit)")
    return "\n".join(lines)


def _event_listing(events: list[dict], limit: int) -> str:
    lines = []
    for e in events[:limit]:
        attrs = e.get("attrs") or {}
        rendered = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(f"  {e['time'] * 1e3:9.3f}ms  {e['name']}  {rendered}")
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} more (raise --limit)")
    return "\n".join(lines) or "  (no events)"


def _rank_of(span: dict) -> int | None:
    """The integer worker rank a span belongs to, if any."""
    worker = (span.get("attrs") or {}).get("worker")
    if isinstance(worker, bool) or not isinstance(worker, int):
        return None
    return worker


def per_rank_summary(spans: list[dict]) -> str:
    """Per-rank span aggregates + the cross-rank critical-path line.

    Groups spans by their ``worker`` attr (the lane assignment of a
    merged multiprocess trace); unattributed spans — the parent's own —
    are summarized under ``(parent)``.
    """
    by_rank: dict[int, list[dict]] = {}
    parent_spans: list[dict] = []
    for s in spans:
        rank = _rank_of(s)
        if rank is None:
            parent_spans.append(s)
        else:
            by_rank.setdefault(rank, []).append(s)
    if not by_rank:
        return ""
    lines = ["per-rank spans:"]
    sections = [(f"rank {r}", by_rank[r]) for r in sorted(by_rank)]
    if parent_spans:
        sections.append(("(parent)", parent_spans))
    for label, rank_spans in sections:
        total = sum(float(s["duration"]) for s in rank_spans)
        lines.append(f"  {label}  ({len(rank_spans)} spans, "
                     f"{total * 1e3:.3f}ms total)")
        stats = aggregate_spans(rank_spans)
        for name in sorted(stats, key=lambda n: -stats[n]["total"]):
            row = stats[name]
            mean = row["total"] / max(row["count"], 1)
            tag = "~" if row.get("simulated") else " "
            lines.append(
                f"    {name:<32} {row['count']:>6} "
                f"{row['total'] * 1e3:>10.3f}ms {mean * 1e3:>10.3f}ms{tag}"
            )
    report = straggler_report(spans)
    if report.critical_path:
        path = " ".join(
            f"L{layer}->w{worker}"
            for layer, worker in sorted(report.critical_path.items())
        )
        lines.append(f"  cross-rank critical path: {path}")
    if report.slowest_worker is not None and len(report.per_worker) > 1:
        lines.append(
            f"  slowest rank: w{report.slowest_worker} "
            f"(skew ratio {report.skew_ratio:.2f})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Pretty-print a repro.obs JSON trace file."
    )
    parser.add_argument("trace", help="path to a --trace JSON file")
    parser.add_argument("--spans", action="store_true",
                        help="list individual spans in time order")
    parser.add_argument("--events", action="store_true",
                        help="list individual events in time order")
    parser.add_argument("--limit", type=int, default=200,
                        help="max rows for --spans/--events (default 200)")
    parser.add_argument("--per-rank", action="store_true",
                        help="force per-rank sections (auto for merged "
                             "multiprocess traces)")
    args = parser.parse_args(argv)

    with open(args.trace) as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema not in ("repro.obs/1", "repro.obs/2"):
        print(f"warning: unknown trace schema {schema!r}; "
              "attempting to render anyway", file=sys.stderr)

    print(f"trace: {args.trace}  "
          f"({len(data.get('spans', []))} spans, "
          f"{len(data.get('events', []))} events)")
    if args.spans:
        print(_span_listing(data.get("spans", []), args.limit))
        return 0
    if args.events:
        print(_event_listing(data.get("events", []), args.limit))
        return 0
    spans = data.get("spans", [])
    print(render_summary(
        aggregate_spans(spans),
        data.get("counters", {}),
        data.get("gauges", {}),
        data.get("events", []),
        data.get("meta"),
        histograms=data.get("histograms", {}),
        epochs=data.get("epochs", {}),
    ))
    ranks = {_rank_of(s) for s in spans} - {None}
    if args.per_rank or len(ranks) >= 2:
        section = per_rank_summary(spans)
        if section:
            print()
            print(section)
    return 0


if __name__ == "__main__":
    sys.exit(main())
