"""Figure 13 — end-to-end performance on multiple machines (1..16
workers, Reddit): FlexGraph vs (modeled) DistDGL and Euler.

Expected shape (paper): FlexGraph scales near-linearly on all three
models; DistDGL remains orders of magnitude slower on GCN; Euler tracks
FlexGraph on PinSage but stays ~2x behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DistDGLEngine, EulerEngine
from repro.datasets import reddit_like
from repro.distributed import CommConfig, flexgraph_scaling, model_baseline_scaling
from repro.graph import hash_partition
from repro.models import gcn, magnn, pinsage

import bench_config as cfg
from conftest import render_table

WORKER_COUNTS = [1, 2, 4, 8, 16]

#: Figure 13 uses a larger Reddit stand-in so per-worker compute dominates
#: the per-call overhead of the simulated workers, and a network model
#: calibrated so the compute/comm ratio matches the paper's testbed
#: (3.25 GB/s NICs against tens-of-seconds epochs).
FIG13_COMM = CommConfig(latency=2e-6, bandwidth=2e9)
_FIG13_DS = None


def fig13_dataset():
    global _FIG13_DS
    if _FIG13_DS is None:
        _FIG13_DS = reddit_like(num_vertices=8000, avg_degree=50)
    return _FIG13_DS


def factory_for(model_name: str, ds):
    if model_name == "gcn":
        return lambda: gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes)
    if model_name == "pinsage":
        return lambda: pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                               **cfg.PINSAGE_PARAMS)
    return lambda: magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                         max_instances_per_root=cfg.MAGNN_CAP)


def baseline_curve(engine_cls, ds, model_name):
    """Measure the baseline's single-machine epoch, then model scaling
    with its (non-overlapped, full-feature) communication pattern."""
    params = cfg.engine_params(model_name)
    params["time_limit"] = None
    engine = engine_cls(ds, model_name, seed=0, **params)
    rep = engine.run_epoch(0)
    if rep.status != "ok":
        return None
    # Full remote-neighbor feature traffic: one feature row per bottom-
    # level edge, per layer (no partial aggregation, §5).
    bytes_per_epoch = 2 * ds.graph.num_edges * ds.feat_dim * 8
    return model_baseline_scaling(
        rep.seconds, WORKER_COUNTS, bytes_per_epoch,
        messages_per_epoch=ds.graph.num_edges,
        comm_config=FIG13_COMM,
    )


@pytest.mark.parametrize("model_name", ["gcn", "pinsage", "magnn"])
def test_fig13_scaling(benchmark, report, model_name):
    ds = fig13_dataset()
    curves: dict[str, list] = {}

    def run_all():
        curves["flexgraph"] = flexgraph_scaling(
            factory_for(model_name, ds), ds, WORKER_COUNTS,
            lambda k: hash_partition(ds.graph.num_vertices, k),
            comm_config=FIG13_COMM,
        )
        if model_name == "gcn":
            curves["distdgl"] = baseline_curve(DistDGLEngine, ds, model_name)
        elif model_name == "pinsage":
            curves["distdgl"] = baseline_curve(DistDGLEngine, ds, model_name)
            curves["euler"] = baseline_curve(EulerEngine, ds, model_name)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, pts in curves.items():
        if pts is None:
            rows.append([name] + ["OOM"] * len(WORKER_COUNTS))
        else:
            rows.append([name] + [f"{p.seconds:.3f}" for p in pts])
    report(
        f"fig13_scaling_{model_name}",
        render_table(
            f"Figure 13 ({model_name}, reddit): simulated epoch seconds vs workers",
            ["system"] + [f"k={k}" for k in WORKER_COUNTS],
            rows,
        ),
    )

    flex = [p.seconds for p in curves["flexgraph"]]
    # Near-linear scaling: 16 workers should cut epoch time substantially
    # (per-worker runtime overhead bounds the speedup at this scale).
    assert flex[-1] < flex[0] * 0.6, f"no scaling for {model_name}: {flex}"
    # Monotone-ish: allow small non-monotonicity from timing noise.
    assert flex[2] < flex[0], f"4 workers slower than 1 for {model_name}"
    for name, pts in curves.items():
        if name != "flexgraph" and pts is not None:
            # FlexGraph stays ahead at every worker count.
            for fp, bp in zip(curves["flexgraph"], pts):
                assert fp.seconds <= bp.seconds * 1.2
