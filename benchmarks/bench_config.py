"""Benchmark configuration: dataset scale, resource envelopes, model
hyper-parameters.

Everything is scaled down consistently from the paper's testbed (16 x
96-core machines, 512 GB RAM, billion-edge graphs) to a laptop-sized
Python run.  ``MEMORY_BUDGET`` stands in for the 512 GB RAM: engines that
materialize per-edge or per-instance intermediates at these graph sizes
exceed it exactly where the paper reports OOM.  ``TIME_LIMIT`` stands in
for the paper's half-hour cap on one epoch (the ">3600s" cells).
"""

from __future__ import annotations

from repro.datasets import load_dataset

#: dataset scale used by all benchmarks ("small" keeps the suite minutes-long)
SCALE = "bench"

#: per-step transient allocation budget (bytes) for baseline engines
MEMORY_BUDGET = 300_000_000

#: epoch wall-clock limit (seconds); extrapolated epochs above it report ">"
TIME_LIMIT = 10.0

#: hidden dimension for all two-layer models
HIDDEN_DIM = 32

#: PinSage neighbor selection (the paper's setup: 10 walks x 3 hops, top-10)
PINSAGE_PARAMS = {"num_traces": 10, "n_hops": 3, "top_k": 10}

#: MAGNN instance cap per (root, metapath) — bounds HDG size at bench scale
MAGNN_CAP = 10

#: mini-batch engines: batch size and measured batches before extrapolating
MINIBATCH_PARAMS = {"batch_size": 32, "max_batches": 3}

_CACHE: dict[str, object] = {}


def dataset(name: str):
    """Session-cached benchmark dataset."""
    if name not in _CACHE:
        _CACHE[name] = load_dataset(name, scale=SCALE)
    return _CACHE[name]


def engine_params(model_name: str) -> dict:
    """Per-model kwargs shared by every engine."""
    params: dict = {
        "hidden_dim": HIDDEN_DIM,
        "memory_budget": MEMORY_BUDGET,
        "time_limit": TIME_LIMIT,
    }
    if model_name == "pinsage":
        params.update(PINSAGE_PARAMS)
    if model_name == "magnn":
        params["max_instances_per_root"] = MAGNN_CAP
    params.update(MINIBATCH_PARAMS)
    return params
