"""Figure 14 — effectiveness of hybrid aggregation: SA vs SA+FA vs HA on
FB91 and Twitter (Aggregation stage only, k = 8 partitions).

Expected shape (paper): feature fusion (SA+FA) wins big over pure
scatter ops for all models; the extra dense-tensor step (HA) helps only
MAGNN (GCN/PinSage have trivial schema trees, so HA == SA+FA).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import ExecutionStrategy, FlexGraphEngine
from repro.models import gcn, magnn, pinsage
from repro.tensor import Tensor

import bench_config as cfg
from conftest import render_table

STRATEGIES = ["sa", "sa+fa", "ha"]
K = 8  # partitions in the paper's setup; single-process timing here


def aggregation_seconds(model_factory, ds, strategy, repeats=3):
    model = model_factory()
    engine = FlexGraphEngine(model, ds.graph, strategy=strategy, seed=0)
    feats = Tensor(ds.features)
    engine.forward(feats)  # warm: HDG construction
    best = np.inf
    for _ in range(repeats):
        engine.forward(feats)
        best = min(best, engine.last_times.aggregation)
    return best


@pytest.mark.parametrize("ds_name", ["fb91", "twitter"])
def test_fig14(benchmark, report, ds_name):
    ds = cfg.dataset(ds_name)
    factories = {
        "GCN": lambda: gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes),
        "PinSage": lambda: pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                                   **cfg.PINSAGE_PARAMS),
        "MAGNN": lambda: magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                               max_instances_per_root=cfg.MAGNN_CAP),
    }
    results: dict[str, dict[str, float]] = {}

    def run_all():
        for name, factory in factories.items():
            results[name] = {
                s: aggregation_seconds(factory, ds, s) for s in STRATEGIES
            }

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name] + [f"{results[name][s]:.4f}" for s in STRATEGIES]
        + [f"{results[name]['sa'] / results[name]['ha']:.2f}x"]
        for name in factories
    ]
    report(
        f"fig14_hybrid_aggregation_{ds_name}",
        render_table(
            f"Figure 14 ({ds_name}): Aggregation-stage seconds per strategy",
            ["model", "SA", "SA+FA", "HA", "HA speedup over SA"],
            rows,
        ),
    )
    for name in factories:
        sa, safa, ha = (results[name][s] for s in STRATEGIES)
        assert safa < sa, f"feature fusion should beat scatter ops ({name})"
        assert ha <= safa * 1.25, f"HA regressed vs SA+FA ({name})"
    # Dense-op gain exists only where the schema tree is non-trivial.
    assert results["MAGNN"]["ha"] <= results["MAGNN"]["sa+fa"] * 1.05
