"""Shared benchmark infrastructure.

Each benchmark regenerates one of the paper's tables or figures and
registers the rendered table through the ``report`` fixture; tables are
written to ``benchmarks/results/`` and echoed in the terminal summary so
``pytest benchmarks/ --benchmark-only`` leaves a readable record.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_TABLES: dict[str, str] = {}


@pytest.fixture
def report():
    """Save a rendered experiment table: ``report(name, text)``."""

    def save(name: str, text: str) -> None:
        _TABLES[name] = text
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return save


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name in sorted(_TABLES):
        terminalreporter.write_sep("=", name)
        for line in _TABLES[name].splitlines():
            terminalreporter.write_line(line)


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table renderer for paper-style result tables."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
