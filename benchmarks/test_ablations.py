"""Ablation benchmarks for design choices the paper calls out but does
not plot: HDG storage compaction (§4.1), the balancing-plan count (§6),
and batched vs per-message communication for non-commutative aggregators
(§5).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ADBBalancer, FlexGraphEngine, metrics_from_hdg
from repro.distributed import CommConfig, dependency_stats, plan_layer_comm
from repro.graph import hash_partition, pulp_partition
from repro.models import magnn, pinsage
from repro.tensor import Tensor

import bench_config as cfg
from conftest import render_table


def test_ablation_hdg_storage(benchmark, report):
    """§4.1 storage optimizations: elided in-between Dst array + single
    global schema tree vs a naive per-level CSC store."""
    rows = []

    def run_all():
        rng = np.random.default_rng(0)
        for ds_name in ("reddit", "fb91", "twitter"):
            ds = cfg.dataset(ds_name)
            model = magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                          max_instances_per_root=cfg.MAGNN_CAP)
            hdg = model.neighbor_selection(ds.graph, rng)
            saved = 1.0 - hdg.nbytes / hdg.nbytes_unoptimized
            rows.append([
                ds_name,
                f"{hdg.nbytes / 1e6:.2f}",
                f"{hdg.nbytes_unoptimized / 1e6:.2f}",
                f"{saved:.1%}",
            ])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_hdg_storage",
        render_table(
            "Ablation (§4.1): MAGNN HDG storage, compact vs naive CSC (MB)",
            ["dataset", "compact", "naive", "saved"],
            rows,
        ),
    )
    for row in rows:
        assert float(row[1]) < float(row[2])


def test_ablation_balancing_plans(benchmark, report):
    """§6: ADB generates 5 plans and keeps the cheapest cut — sweep the
    plan count and record the chosen plan's induced-graph cut."""
    ds = cfg.dataset("twitter")
    rows = []
    cuts = {}

    def run_all():
        from repro.core.balancer import _build_adjacency, induced_dependency_edges
        from repro.models import gcn

        # GCN's per-root cost is degree-driven; a contiguous block
        # partition concentrates the preferential-attachment hubs and
        # gives ADB real skew to fix.
        model = gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes)
        engine = FlexGraphEngine(model, ds.graph, seed=0)
        hdg = engine.hdg_for_layer(0)
        metrics = metrics_from_hdg(hdg, ds.feat_dim)
        k = 8
        n = ds.graph.num_vertices
        base = np.minimum(np.arange(n) * k // n, k - 1)
        balancer = ADBBalancer(num_plans=10, threshold=1.02, seed=1)
        costs = np.zeros(hdg.num_input_vertices)
        costs[hdg.roots] = balancer.per_root_costs(metrics)
        part_costs = np.zeros(k)
        np.add.at(part_costs, base, costs)
        src, dst = induced_dependency_edges(hdg)
        adjacency = _build_adjacency(src, dst)
        plan_cuts = []
        for _ in range(10):
            plan = balancer._generate_plan(
                hdg, base, k, costs, part_costs, adjacency, src, dst
            )
            plan_cuts.append(plan.cut_edges if plan is not None else np.inf)
        for num_plans in (1, 2, 5, 10):
            cut = int(min(plan_cuts[:num_plans]))
            cuts[num_plans] = cut
            rows.append([str(num_plans), str(cut)])
        rows.append(["(spread of 10 plans)",
                     f"{int(min(plan_cuts))}..{int(max(plan_cuts))}"])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_balancing_plans",
        render_table(
            "Ablation (§6): balancing-plan count vs chosen plan's induced cut",
            ["num_plans", "chosen cut_edges"],
            rows,
        ),
    )
    # More candidate plans never pick a worse cut; the spread shows why
    # generating several is worthwhile.
    assert cuts[10] <= cuts[5] <= cuts[2] <= cuts[1]


def test_ablation_neugraph_chunking(benchmark, report):
    """§8 extension: NeuGraph's chunk-at-a-time strategy trades peak
    memory for scheduling overhead — sweep the chunk grid on the Reddit
    stand-in and compare with DGL (no chunking) and FlexGraph."""
    from repro.baselines import DGLEngine, FlexGraphAdapter, NeuGraphEngine

    ds = cfg.dataset("reddit")
    rows = []
    peaks = {}
    times = {}

    def run_all():
        for chunks in (1, 2, 4, 8):
            engine = NeuGraphEngine(ds, "gcn", hidden_dim=cfg.HIDDEN_DIM,
                                    seed=0, num_chunks=chunks)
            engine.run_epoch(0)
            rep = engine.run_epoch(1)
            peaks[chunks] = engine.memory.peak
            times[chunks] = rep.seconds
            rows.append([f"neugraph ({chunks}x{chunks} grid)",
                         f"{rep.seconds:.3f}", f"{engine.memory.peak / 1e6:.1f}"])
        dgl = DGLEngine(ds, "gcn", hidden_dim=cfg.HIDDEN_DIM, seed=0)
        dgl.run_epoch(0)
        rep = dgl.run_epoch(1)
        rows.append(["dgl (no chunking)", f"{rep.seconds:.3f}",
                     f"{dgl.memory.peak / 1e6:.1f}"])
        flex = FlexGraphAdapter(ds, "gcn", hidden_dim=cfg.HIDDEN_DIM, seed=0)
        flex.run_epoch(0)
        rep = flex.run_epoch(1)
        rows.append(["flexgraph (fused)", f"{rep.seconds:.3f}", "0.0*"])
        rows.append(["(*feature fusion never materializes edge tensors)", "", ""])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_neugraph_chunking",
        render_table(
            "Ablation (§8 extension): NeuGraph chunk grid vs DGL vs "
            "FlexGraph on reddit GCN",
            ["engine", "sec/epoch", "peak transient MB"],
            rows,
        ),
    )
    # Chunking monotonically shrinks peak edge-state memory...
    assert peaks[8] < peaks[4] < peaks[1]
    # ...while adding scheduling overhead relative to one pass.
    assert times[8] >= times[1] * 0.8


def test_ablation_training_mode_convergence(benchmark, report):
    """Extension ablation: the three training modes (full-batch, sampled
    mini-batch, simulated-distributed) run the same NAU program — after a
    fixed epoch budget they must land at comparable accuracy."""
    from repro.core import MiniBatchTrainer
    from repro.distributed import DistributedTrainer
    from repro.graph import hash_partition
    from repro.models import gcn
    from repro.tensor import Adam, Tensor

    ds = cfg.dataset("reddit")
    epochs = 8
    rows = []
    accs = {}

    def run_all():
        feats = Tensor(ds.features)

        model = gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes, seed=0,
                    aggregator="mean")
        engine = FlexGraphEngine(model, ds.graph, seed=0)
        opt = Adam(model.parameters(), 0.01)
        for epoch in range(epochs):
            engine.train_epoch(feats, ds.labels, opt, ds.train_mask, epoch)
        accs["full-batch"] = engine.evaluate(feats, ds.labels, ds.test_mask)

        model = gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes, seed=0,
                    aggregator="mean")
        trainer = MiniBatchTrainer(model, ds.graph, batch_size=256,
                                   fanouts=[10, 10], seed=0)
        opt = Adam(model.parameters(), 0.01)
        for epoch in range(epochs):
            trainer.train_epoch(feats, ds.labels, opt, ds.train_mask, epoch)
        accs["sampled mini-batch"] = trainer.evaluate(feats, ds.labels, ds.test_mask)

        model = gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes, seed=0,
                    aggregator="mean")
        dist = DistributedTrainer(
            model, ds.graph, hash_partition(ds.graph.num_vertices, 8), seed=0
        )
        opt = Adam(model.parameters(), 0.01)
        for epoch in range(epochs):
            dist.train_epoch(feats, ds.labels, opt, ds.train_mask, epoch)
        accs["distributed (k=8)"] = FlexGraphEngine(model, ds.graph).evaluate(
            feats, ds.labels, ds.test_mask
        )
        for mode, acc in accs.items():
            rows.append([mode, f"{acc:.3f}"])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_training_modes",
        render_table(
            f"Ablation (extension): test accuracy after {epochs} epochs, "
            "same GCN under three training modes (reddit)",
            ["mode", "test accuracy"],
            rows,
        ),
    )
    best = max(accs.values())
    for mode, acc in accs.items():
        assert acc > best - 0.15, f"{mode} failed to converge comparably"


def test_ablation_dynamic_graph(benchmark, report):
    """§7.2's closing remark, quantified: on an evolving graph the
    pre-expanded approach must re-materialize from scratch per change
    batch, while NAU's NeighborSelection can repair HDGs incrementally."""
    import time

    from repro.core import MetapathHDGMaintainer
    from repro.core.selection import build_metapath_hdg
    from repro.models.magnn import default_metapaths

    ds = cfg.dataset("fb91")
    metapaths = [mp for mp in default_metapaths(ds.graph.num_types)][:4]
    rows = []
    totals = {}

    def run_all():
        rng = np.random.default_rng(0)
        maintainer = MetapathHDGMaintainer(ds.graph, metapaths)
        incremental = full = 0.0
        deltas = 0
        num_steps = 5
        for _step in range(num_steps):
            graph = maintainer.graph
            a = rng.integers(0, graph.num_vertices, 8)
            b = rng.integers(0, graph.num_vertices, 8)
            keep = a != b
            added = np.stack([a[keep], b[keep]], 1)
            t0 = time.perf_counter()
            maintainer.apply_edge_changes(added=added)
            incremental += time.perf_counter() - t0
            deltas += maintainer.last_delta
            # What Pre+DGL must do instead: re-expand everything.
            t0 = time.perf_counter()
            build_metapath_hdg(maintainer.graph, metapaths)
            full += time.perf_counter() - t0
        totals["incremental"] = incremental
        totals["full"] = full
        rows.append(["incremental repair", f"{incremental / num_steps:.4f}",
                     f"{deltas} instances touched"])
        rows.append(["full re-expansion", f"{full / num_steps:.4f}",
                     f"{maintainer.num_instances} instances total"])
        rows.append(["speedup", f"{full / max(incremental, 1e-12):.1f}x", ""])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_dynamic_graph",
        render_table(
            "Ablation (§7.2): per-change-batch HDG maintenance on an "
            "evolving graph (fb91, 8 edges per batch, seconds)",
            ["approach", "sec/batch", "work"],
            rows,
        ),
    )
    assert totals["incremental"] < totals["full"]


def test_ablation_minibatch_sampling(benchmark, report):
    """Extension ablation: full-batch vs fan-out-sampled mini-batch
    FlexGraph on the dense Reddit stand-in — the failure mode that sinks
    the naive mini-batch baselines (§7.1) does not apply when sampling is
    HDG-native."""
    from repro.core import MiniBatchTrainer
    from repro.models import gcn
    from repro.tensor import Adam, Tensor

    ds = cfg.dataset("reddit")
    rows = []
    results = {}

    def run_all():
        feats = Tensor(ds.features)
        # Full batch.
        model = gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes, seed=0,
                    aggregator="mean")
        engine = FlexGraphEngine(model, ds.graph, seed=0)
        opt = Adam(model.parameters(), 0.01)
        engine.train_epoch(feats, ds.labels, opt, ds.train_mask, 0)  # warm
        stats = engine.train_epoch(feats, ds.labels, opt, ds.train_mask, 1)
        results["full"] = stats.times.total
        rows.append(["full-batch", f"{stats.times.total:.3f}", "-", "-"])
        # Sampled mini-batch at two fan-outs.
        for fanout in (5, 15):
            model = gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes, seed=0,
                        aggregator="mean")
            trainer = MiniBatchTrainer(model, ds.graph, batch_size=256,
                                       fanouts=[fanout, fanout], seed=0)
            opt = Adam(model.parameters(), 0.01)
            trainer.train_epoch(feats, ds.labels, opt, ds.train_mask, 0)
            mb = trainer.train_epoch(feats, ds.labels, opt, ds.train_mask, 1)
            results[fanout] = mb.seconds
            hdg = trainer._ensure_hdg(0)
            blocks = trainer._build_blocks(hdg, np.arange(256))
            block_size = blocks[0][1].size
            rows.append([
                f"sampled fanout={fanout}", f"{mb.seconds:.3f}",
                str(mb.num_batches), f"{block_size}/{ds.graph.num_vertices}",
            ])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_minibatch_sampling",
        render_table(
            "Ablation (extension): full-batch vs HDG-native sampled "
            "mini-batch (reddit, seconds/epoch)",
            ["mode", "sec/epoch", "batches", "block size (256 seeds)"],
            rows,
        ),
    )
    # Smaller fan-out -> cheaper batches; and unlike the §7.1 baselines,
    # sampled blocks stay well below the full graph.
    assert results[5] <= results[15] * 1.3


def test_ablation_message_batching(benchmark, report):
    """§5's non-commutative case: batching per-partition messages beats
    per-message transfers even when partial aggregation is unavailable."""
    ds = cfg.dataset("twitter")
    rows = []
    times = {}

    def run_all():
        model = pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                        **cfg.PINSAGE_PARAMS)
        engine = FlexGraphEngine(model, ds.graph, seed=0)
        hdg = engine.hdg_for_layer(0)
        k = 8
        stats = dependency_stats(hdg, hash_partition(ds.graph.num_vertices, k), k)
        config = CommConfig()
        feat_bytes = ds.feat_dim * 8
        for mode in ("naive", "batched", "pipelined"):
            plan = plan_layer_comm(stats, feat_bytes, config, mode)
            t = float(plan.per_worker_seconds.max())
            times[mode] = t
            rows.append([
                mode, f"{plan.total_messages}", f"{plan.total_bytes / 1e6:.2f}",
                f"{t * 1000:.2f}",
            ])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_message_batching",
        render_table(
            "Ablation (§5): synchronization plans for one PinSage layer "
            "(twitter, k=8)",
            ["mode", "messages", "MB", "max worker ms"],
            rows,
        ),
    )
    assert times["batched"] < times["naive"]
    assert times["pipelined"] <= times["batched"]
