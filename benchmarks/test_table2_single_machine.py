"""Table 2 — single-machine one-epoch runtime of GCN / PinSage / MAGNN
across PyTorch, DGL, DistDGL, Euler and FlexGraph.

Expected shape (paper): FlexGraph fastest everywhere; mini-batch engines
(DistDGL, Euler) collapse on full-neighborhood GCN; only FlexGraph (and
PyTorch, on the small heterogeneous graph) can run MAGNN; Euler is the
best baseline on PinSage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ENGINES
from repro.experiments import measure_epoch_cell

import bench_config as cfg
from conftest import render_table

ENGINE_ORDER = ["pytorch", "dgl", "distdgl", "euler", "flexgraph"]

#: (model, datasets) pairs exactly as in Table 2
TABLE2_ROWS = [
    ("gcn", ["reddit", "fb91", "twitter"]),
    ("pinsage", ["reddit", "fb91", "twitter"]),
    ("magnn", ["imdb", "reddit", "fb91", "twitter"]),
]


def measure_cell(engine_name: str, model: str, ds) -> str:
    # Warm once (HDG/COO builds), then average two measured epochs —
    # except for engines whose first epoch IS the honest cost (mini-batch
    # extrapolation, OOM probes) where one run suffices.
    engine = ENGINES[engine_name](ds, model, seed=0, **cfg.engine_params(model))
    return measure_epoch_cell(engine, epochs=2)


@pytest.mark.parametrize("model,datasets", TABLE2_ROWS, ids=[r[0] for r in TABLE2_ROWS])
def test_table2(benchmark, report, model, datasets):
    rows = []

    def run_all():
        for ds_name in datasets:
            ds = cfg.dataset(ds_name)
            row = [ds_name]
            for engine_name in ENGINE_ORDER:
                row.append(measure_cell(engine_name, model, ds))
            rows.append(row)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        f"table2_{model}",
        render_table(
            f"Table 2 ({model}): runtime in seconds for 1 epoch, single machine",
            ["dataset"] + ENGINE_ORDER,
            rows,
        ),
    )
    # Shape assertions (the paper's qualitative claims).
    for row in rows:
        flex = float(row[-1].lstrip("~"))
        for engine_name, cell in zip(ENGINE_ORDER[:-1], row[1:-1]):
            if cell in ("X", "OOM") or cell.startswith(">"):
                continue
            # 1.5x margin absorbs single-run timing noise under load; the
            # recorded tables show the actual gaps.
            assert flex <= float(cell.lstrip("~")) * 1.5, (
                f"FlexGraph not fastest on {model}/{row[0]} vs {engine_name}"
            )
