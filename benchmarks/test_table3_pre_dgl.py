"""Table 3 — simulating INFA/INHA models in existing systems: DGL vs
Pre+DGL (GAS over a pre-computed expanded graph) vs FlexGraph.

Expected shape (paper): Pre+DGL sits between DGL and FlexGraph on
PinSage; on MAGNN (which DGL cannot express at all) Pre+DGL runs but
FlexGraph's hybrid aggregation still wins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DGLEngine, FlexGraphAdapter, PreDGLEngine

import bench_config as cfg
from conftest import render_table

CASES = [
    ("pinsage", ["reddit", "fb91", "twitter"]),
    ("magnn", ["reddit", "fb91", "twitter"]),
]


def avg_epoch(engine, epochs=2):
    first = engine.run_epoch(0)
    if first.status != "ok":
        return first.cell
    seconds = [engine.run_epoch(e).seconds for e in range(1, 1 + epochs)]
    return f"{float(np.mean(seconds)):.3f}"


@pytest.mark.parametrize("model,datasets", CASES, ids=[c[0] for c in CASES])
def test_table3(benchmark, report, model, datasets):
    rows = []

    def run_all():
        for ds_name in datasets:
            ds = cfg.dataset(ds_name)
            params = cfg.engine_params(model)
            # Table 3's expanded-graph computations ran on the paper's
            # 512 GB testbed; the scaled budget is lifted here so the
            # comparison isolates execution strategy, as in the paper.
            params["memory_budget"] = None
            cells = [ds_name]
            cells.append(avg_epoch(DGLEngine(ds, model, seed=0, **params)))
            cells.append(avg_epoch(PreDGLEngine(ds, model, seed=0, **params)))
            cells.append(avg_epoch(FlexGraphAdapter(ds, model, seed=0, **params)))
            rows.append(cells)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        f"table3_{model}",
        render_table(
            f"Table 3 ({model}): DGL vs Pre+DGL vs FlexGraph (seconds/epoch)",
            ["dataset", "dgl", "pre+dgl", "flexgraph"],
            rows,
        ),
    )
    for row in rows:
        numeric = [c for c in row[1:] if c not in ("X", "OOM") and not c.startswith(">")]
        flex = float(row[3]) if row[3] not in ("X", "OOM") else None
        pre = float(row[2]) if row[2] not in ("X", "OOM") else None
        assert flex is not None and pre is not None
        # FlexGraph at least as fast as Pre+DGL (modest tolerance for noise).
        assert flex <= pre * 1.2, f"FlexGraph slower than Pre+DGL on {model}/{row[0]}"
        if row[1] not in ("X", "OOM"):
            # Pre+DGL beats plain DGL on PinSage (pre-computation pays off).
            assert pre <= float(row[1]) * 1.2
