"""Table 5 — memory footprint of HDGs relative to the input graph.

Expected shape (paper): GCN builds no extra HDGs; PinSage's HDGs are a
small fraction of the graph; MAGNN's are the largest (multi-vertex
instances) but stay within low multiples of the input graph thanks to
the compact storage of §4.1.
"""

from __future__ import annotations

import numpy as np

from repro.models import magnn, pinsage

import bench_config as cfg
from conftest import render_table

DATASETS = ["reddit", "fb91", "twitter"]


def test_table5_hdg_memory(benchmark, report):
    rows = []
    ratios = {}

    def run_all():
        rng = np.random.default_rng(0)
        for ds_name in DATASETS:
            ds = cfg.dataset(ds_name)
            graph_bytes = ds.graph.nbytes
            ps = pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                         **cfg.PINSAGE_PARAMS)
            mg = magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                       max_instances_per_root=cfg.MAGNN_CAP)
            ps_ratio = ps.neighbor_selection(ds.graph, rng).nbytes / graph_bytes
            mg_ratio = mg.neighbor_selection(ds.graph, rng).nbytes / graph_bytes
            ratios[ds_name] = (ps_ratio, mg_ratio)
            rows.append([ds_name, f"{ps_ratio:.2%}", f"{mg_ratio:.2%}"])

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "table5_hdg_memory",
        render_table(
            "Table 5: memory footprint of HDGs w.r.t. input graph "
            "(GCN row omitted: it builds no extra HDGs)",
            ["dataset", "PinSage", "MAGNN"],
            rows,
        ),
    )
    for ds_name, (ps_ratio, mg_ratio) in ratios.items():
        # PinSage HDGs are a modest fraction; MAGNN's are always larger.
        assert mg_ratio > ps_ratio, f"MAGNN HDG should outweigh PinSage on {ds_name}"
        # Compact storage keeps MAGNN within low multiples of the graph.
        assert mg_ratio < 4.0, f"MAGNN HDG blow-up on {ds_name}: {mg_ratio:.2f}x"
