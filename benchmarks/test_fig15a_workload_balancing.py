"""Figure 15a — workload balancing on Twitter (k = 8): PuLP vs Hash vs
ADB, measured as the Aggregation-stage time of distributed training.

Expected shape (paper): ADB beats both static partitioners; PuLP is the
worst of the three because its edge-cut-oriented partitions are the most
workload-skewed on power-law graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ADBBalancer, FlexGraphEngine, metrics_from_hdg
from repro.distributed import DistributedTrainer
from repro.graph import (
    balance_factor,
    hash_partition,
    pulp_partition,
    spectral_partition,
)
from repro.models import gcn, magnn, pinsage
from repro.tensor import Adam, Tensor

import bench_config as cfg
from conftest import render_table

K = 8


def aggregation_time(model_factory, ds, labels, repeats=3):
    model = model_factory()
    trainer = DistributedTrainer(model, ds.graph, labels, seed=0)
    feats = Tensor(ds.features)
    trainer.train_epoch(feats, ds.labels, Adam(model.parameters(), 0.01), ds.train_mask)
    return min(trainer.aggregation_epoch_time(feats) for _ in range(repeats))


def adb_labels(model_factory, ds, base_labels):
    """Run ADB on top of the base partition using the model's HDGs."""
    model = model_factory()
    engine = FlexGraphEngine(model, ds.graph, seed=0)
    hdg = engine.hdg_for_layer(0)
    metrics = metrics_from_hdg(hdg, ds.feat_dim)
    balancer = ADBBalancer(num_plans=5, threshold=1.02, seed=0)
    labels = base_labels.copy()
    # Iterate migrations until balanced or no plan improves (online loop).
    for _ in range(10):
        labels, plan = balancer.rebalance(hdg, labels, K, metrics)
        if plan is None:
            break
    return labels, hdg, metrics, balancer


def test_fig15a_workload_balancing(benchmark, report):
    ds = cfg.dataset("twitter")
    factories = {
        "GCN": lambda: gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes),
        "PinSage": lambda: pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                                   **cfg.PINSAGE_PARAMS),
        "MAGNN": lambda: magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                               max_instances_per_root=cfg.MAGNN_CAP),
    }
    results: dict[str, dict[str, float]] = {}
    balances: dict[str, dict[str, float]] = {}

    def run_all():
        pulp = pulp_partition(ds.graph, K, num_iters=5)
        hashed = hash_partition(ds.graph.num_vertices, K)
        spectral = spectral_partition(ds.graph, K, seed=0)
        for name, factory in factories.items():
            adb, hdg, metrics, balancer = adb_labels(factory, ds, pulp)
            results[name] = {
                "PuLP": aggregation_time(factory, ds, pulp),
                "Hash": aggregation_time(factory, ds, hashed),
                "Spectral": aggregation_time(factory, ds, spectral),
                "ADB": aggregation_time(factory, ds, adb),
            }
            costs = balancer.per_root_costs(metrics)
            full = np.zeros(ds.graph.num_vertices)
            full[hdg.roots] = costs
            balances[name] = {
                "PuLP": balance_factor(full, pulp, K),
                "Hash": balance_factor(full, hashed, K),
                "Spectral": balance_factor(full, spectral, K),
                "ADB": balance_factor(full, adb, K),
            }

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name,
         f"{results[name]['PuLP']:.4f}", f"{results[name]['Hash']:.4f}",
         f"{results[name]['Spectral']:.4f}", f"{results[name]['ADB']:.4f}",
         "/".join(f"{balances[name][p]:.2f}"
                  for p in ("PuLP", "Hash", "Spectral", "ADB"))]
        for name in factories
    ]
    report(
        "fig15a_workload_balancing",
        render_table(
            "Figure 15a (twitter, k=8): Aggregation seconds per partitioner "
            "(last column: workload balance PuLP/Hash/Spectral/ADB; "
            "Spectral is an extension beyond the paper's pair)",
            ["model", "PuLP", "Hash", "Spectral", "ADB", "balance"],
            rows,
        ),
    )
    for name in factories:
        r = results[name]
        # ADB rebalances its base partition (PuLP here, as in §6): it must
        # not lose to that base, in workload balance or in time.  (At this
        # scale per-vertex cost is almost exactly degree-proportional, so
        # Hash is already near-optimally balanced — the paper's 23% edge
        # over Hash needs cost structure only billion-edge runs exhibit.)
        assert r["ADB"] <= r["PuLP"] * 1.15, f"ADB slower than PuLP for {name}"
        b = balances[name]
        assert b["ADB"] <= b["PuLP"] + 1e-9
