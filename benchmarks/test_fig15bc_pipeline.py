"""Figures 15b/15c — pipeline processing on FB91 and Twitter (k = 8):
Aggregation-stage time of distributed training with and without
partial-aggregation + communication overlap.

Expected shape (paper): pipelining always helps; the gain is largest for
MAGNN (big neighborhoods -> big messages) and smallest for PinSage
(top-10 neighborhoods -> little traffic to hide).
"""

from __future__ import annotations

import pytest

from repro.distributed import CommConfig, DistributedTrainer
from repro.graph import hash_partition
from repro.models import gcn, magnn, pinsage
from repro.tensor import Adam, Tensor

import bench_config as cfg
from conftest import render_table

K = 8


def aggregation_time(model_factory, ds, pipeline, repeats=3):
    model = model_factory()
    trainer = DistributedTrainer(
        model, ds.graph, hash_partition(ds.graph.num_vertices, K),
        pipeline=pipeline, seed=0,
    )
    feats = Tensor(ds.features)
    trainer.train_epoch(feats, ds.labels, Adam(model.parameters(), 0.01), ds.train_mask)
    return min(trainer.aggregation_epoch_time(feats) for _ in range(repeats))


@pytest.mark.parametrize("ds_name", ["fb91", "twitter"])
def test_fig15bc_pipeline(benchmark, report, ds_name):
    ds = cfg.dataset(ds_name)
    factories = {
        "GCN": lambda: gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes),
        "PinSage": lambda: pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                                   **cfg.PINSAGE_PARAMS),
        "MAGNN": lambda: magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                               max_instances_per_root=cfg.MAGNN_CAP),
    }
    results: dict[str, tuple[float, float]] = {}

    def run_all():
        for name, factory in factories.items():
            with_pp = aggregation_time(factory, ds, pipeline=True)
            without_pp = aggregation_time(factory, ds, pipeline=False)
            results[name] = (with_pp, without_pp)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, f"{w:.4f}", f"{wo:.4f}", f"{(wo - w) / wo:.1%}"]
        for name, (w, wo) in results.items()
    ]
    report(
        f"fig15bc_pipeline_{ds_name}",
        render_table(
            f"Figure 15b/c ({ds_name}, k=8): Aggregation seconds with/without "
            "pipeline processing",
            ["model", "w/ PP", "w/o PP", "improvement"],
            rows,
        ),
    )
    for name, (w, wo) in results.items():
        assert w <= wo * 1.05, f"pipelining slowed {name} down on {ds_name}"
    # PinSage benefits least: its top-k neighborhoods move little data.
    gains = {name: (wo - w) / wo for name, (w, wo) in results.items()}
    assert gains["PinSage"] <= max(gains["GCN"], gains["MAGNN"]) + 0.05
