"""Table 4 — per-stage breakdown (NeighborSelection / Aggregation /
Update) of the three models on the Twitter stand-in, single machine.

Expected shape (paper): GCN spends nothing in NeighborSelection (the
input graph is the HDG) and ~98% in Aggregation; PinSage and MAGNN spend
>40% selecting neighbors; Update is always a small fraction.
"""

from __future__ import annotations

import numpy as np

from repro.core import FlexGraphEngine
from repro.models import gcn, magnn, pinsage
from repro.tensor import Adam, Tensor

import bench_config as cfg
from conftest import render_table


def stage_breakdown(model_factory, ds, epochs=3):
    model = model_factory()
    engine = FlexGraphEngine(model, ds.graph, seed=0)
    optimizer = Adam(model.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    ns = agg = upd = 0.0
    for epoch in range(epochs):
        engine.invalidate_hdgs()  # count NeighborSelection every epoch
        stats = engine.train_epoch(feats, ds.labels, optimizer, ds.train_mask, epoch)
        ns += stats.times.neighbor_selection
        agg += stats.times.aggregation
        upd += stats.times.update
    return np.array([ns, agg, upd]) / epochs


def test_table4_breakdown(benchmark, report):
    ds = cfg.dataset("twitter")
    results = {}

    def run_all():
        results["GCN"] = stage_breakdown(
            lambda: gcn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes), ds
        )
        results["PinSage"] = stage_breakdown(
            lambda: pinsage(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                            **cfg.PINSAGE_PARAMS), ds
        )
        results["MAGNN"] = stage_breakdown(
            lambda: magnn(ds.feat_dim, cfg.HIDDEN_DIM, ds.num_classes,
                          max_instances_per_root=cfg.MAGNN_CAP), ds
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (ns, agg, upd) in results.items():
        total = ns + agg + upd
        rows.append([
            name,
            f"{ns:.3f} ({ns / total:.0%})",
            f"{agg:.3f} ({agg / total:.0%})",
            f"{upd:.3f} ({upd / total:.0%})",
        ])
    report(
        "table4_breakdown",
        render_table(
            "Table 4: breakdown of 3 stages on Twitter (seconds, share of forward)",
            ["model", "Nbr.Selection", "Aggregation", "Update"],
            rows,
        ),
    )

    # Shape assertions.
    gcn_ns, gcn_agg, gcn_upd = results["GCN"]
    assert gcn_ns / (gcn_ns + gcn_agg + gcn_upd) < 0.05   # ~0% selection
    for name in ("PinSage", "MAGNN"):
        ns, agg, upd = results[name]
        assert ns / (ns + agg + upd) > 0.25, f"{name} selection share too small"
    for name, (ns, agg, upd) in results.items():
        assert upd < agg, f"{name}: Update should be cheaper than Aggregation"
