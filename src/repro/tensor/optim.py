"""Optimizers for the numpy autograd engine (SGD with momentum, Adam,
and a sparse-gradient optimizer for large embedding tables)."""

from __future__ import annotations

import numpy as np

from ..obs.profile import record_op
from .nn import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "SparseEmbeddingOptimizer"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot optimizer buffers (for exact checkpoint/restore)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if state:
            raise KeyError(f"unexpected optimizer state keys: {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, v in enumerate(self._velocity):
            v[...] = state[f"velocity{i}"]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"t": np.array(self._t)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m{i}"] = m.copy()
            state[f"v{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._t = int(state["t"])
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            m[...] = state[f"m{i}"]
            v[...] = state[f"v{i}"]


class SparseEmbeddingOptimizer(Optimizer):
    """SGD/Adam over embedding tables, updating only the gathered rows.

    A dense optimizer step over a learned ``(num_vertices, dim)``
    embedding table is O(|V|) per minibatch even though only the
    batch's gathered rows have non-zero gradient.  This optimizer
    consumes the ``(ids, grad_rows)`` records a ``sparse_grad``
    :class:`~repro.tensor.nn.Embedding` leaves on its weight, coalesces
    duplicate ids, and applies the update to those rows only — step
    cost O(batch * dim).

    Adam keeps full-size first/second-moment buffers (memory is cheap,
    bandwidth is not) plus a *per-row* step count so bias correction is
    computed with each row's own ``t``.  When every row is touched on
    every step this matches the dense :class:`Adam` bitwise; rows
    touched intermittently get the same schedule DGL's sparse Adam
    uses.  SGD is plain (no momentum): decaying velocity only on
    touched rows would silently change momentum semantics.

    A dense ``p.grad`` left by a non-sparse gather is folded in as if
    every row had been touched, so mixed usage stays correct.
    """

    def __init__(self, params, lr: float = 1e-2, method: str = "adam",
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        tables: list[Parameter] = []
        for item in params:
            weight = getattr(item, "weight", item)
            if not isinstance(weight, Parameter):
                raise TypeError(
                    "SparseEmbeddingOptimizer takes Embedding modules or 2-D "
                    f"Parameters, got {type(item).__name__}"
                )
            if weight.data.ndim != 2:
                raise ValueError(
                    f"embedding table must be 2-D, got shape {weight.data.shape}"
                )
            tables.append(weight)
        super().__init__(tables, lr)
        if method not in ("sgd", "adam"):
            raise ValueError(f"method must be 'sgd' or 'adam', got {method!r}")
        self.method = method
        self.beta1, self.beta2 = betas
        self.eps = eps
        if method == "adam":
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]
            self._t = [np.zeros(p.data.shape[0], dtype=np.int64) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None
            p.sparse_grads = []

    @staticmethod
    def _coalesce(pending, dim: int, dtype) -> tuple[np.ndarray, np.ndarray]:
        """Sum duplicate ids; addition order matches a dense ``np.add.at``."""
        ids = np.concatenate([np.asarray(i, dtype=np.int64).ravel() for i, _ in pending])
        grads = np.concatenate(
            [np.asarray(g, dtype=dtype).reshape(-1, dim) for _, g in pending]
        )
        rows, inverse = np.unique(ids, return_inverse=True)
        out = np.zeros((rows.size, dim), dtype=dtype)
        np.add.at(out, inverse, grads)
        return rows, out

    def step(self) -> None:
        for i, p in enumerate(self.params):
            pending = list(getattr(p, "sparse_grads", None) or ())
            if p.grad is not None:
                pending.append((np.arange(p.data.shape[0], dtype=np.int64), p.grad))
            if not pending:
                continue
            rows, grad = self._coalesce(pending, p.data.shape[1], p.data.dtype)
            if self.method == "sgd":
                p.data[rows] -= self.lr * grad
            else:
                m, v, t = self._m[i], self._v[i], self._t[i]
                t[rows] += 1
                bc1 = 1.0 - np.power(self.beta1, t[rows])[:, None]
                bc2 = 1.0 - np.power(self.beta2, t[rows])[:, None]
                m[rows] = self.beta1 * m[rows] + (1.0 - self.beta1) * grad
                v[rows] = self.beta2 * v[rows] + (1.0 - self.beta2) * grad**2
                p.data[rows] -= self.lr * (m[rows] / bc1) / (np.sqrt(v[rows] / bc2) + self.eps)
            touched = grad.nbytes
            record_op(
                "optim.sparse_step",
                flops=float(grad.size) * (2.0 if self.method == "sgd" else 12.0),
                bytes_read=touched * (1 if self.method == "sgd" else 3),
                bytes_written=touched * (1 if self.method == "sgd" else 3),
            )
            p.sparse_grads = []

    def state_dict(self) -> dict[str, np.ndarray]:
        if self.method == "sgd":
            return {}
        state: dict[str, np.ndarray] = {}
        for i, (m, v, t) in enumerate(zip(self._m, self._v, self._t)):
            state[f"m{i}"] = m.copy()
            state[f"v{i}"] = v.copy()
            state[f"t{i}"] = t.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if self.method == "sgd":
            super().load_state_dict(state)
            return
        for i, (m, v, t) in enumerate(zip(self._m, self._v, self._t)):
            m[...] = state[f"m{i}"]
            v[...] = state[f"v{i}"]
            t[...] = state[f"t{i}"]
