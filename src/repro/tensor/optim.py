"""Optimizers for the numpy autograd engine (SGD with momentum, Adam)."""

from __future__ import annotations

import numpy as np

from .nn import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot optimizer buffers (for exact checkpoint/restore)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if state:
            raise KeyError(f"unexpected optimizer state keys: {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, v in enumerate(self._velocity):
            v[...] = state[f"velocity{i}"]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"t": np.array(self._t)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m{i}"] = m.copy()
            state[f"v{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._t = int(state["t"])
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            m[...] = state[f"m{i}"]
            v[...] = state[f"v{i}"]
