"""Free-function tensor ops used throughout the FlexGraph reproduction.

These mirror the op vocabulary in the paper's code sketches (Figures 7 and
10): ``concat`` for PinSage's Update, ``softmax`` for attention-style
aggregation, and reshape-based dense reductions for the schema-tree level
of hierarchical aggregation.
"""

from __future__ import annotations

import numpy as np

from ..obs.profile import record_op
from .tensor import Tensor, _as_tensor

__all__ = [
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "relu",
    "dropout",
    "zeros",
    "ones",
    "randn",
    "tensor",
]


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` from array-like data."""
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=requires_grad)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def relu(x: Tensor) -> Tensor:
    return _as_tensor(x).relu()


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (PinSage Update: CONCAT(h, nbr))."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    record_op("concat", bytes_read=out_data.nbytes,
              bytes_written=out_data.nbytes)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        parts = np.split(g, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor._make(out_data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)
    # max + shift + exp + sum + divide: ~5 FLOPs per element
    record_op("softmax", flops=5.0 * out_data.size,
              bytes_read=x.data.nbytes, bytes_written=out_data.nbytes)

    def backward(g):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (g - dot),)

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)
    record_op("log_softmax", flops=5.0 * out_data.size,
              bytes_read=x.data.nbytes, bytes_written=out_data.nbytes)

    def backward(g):
        return (g - soft * g.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward)


def scatter_rows(rows: Tensor, indices: np.ndarray, num_rows: int) -> Tensor:
    """Place ``rows[i]`` at position ``indices[i]`` of a zero matrix.

    The write-side counterpart of row gathering; used by mini-batch
    training to lift per-block outputs back into full-graph coordinates.
    ``indices`` must be unique.
    """
    rows = _as_tensor(rows)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1 or indices.shape[0] != rows.shape[0]:
        raise ValueError("indices must be 1-D and align with rows")
    if np.unique(indices).size != indices.size:
        raise ValueError("scatter_rows requires unique indices")
    out_data = np.zeros((num_rows,) + rows.shape[1:], dtype=rows.data.dtype)
    out_data[indices] = rows.data

    def backward(g):
        return (g[indices],)

    return Tensor._make(out_data, (rows,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or ``p == 0``."""
    if not training or p <= 0.0:
        return _as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = _as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    # compare + rescale: ~2 FLOPs per element
    record_op("dropout", flops=2.0 * x.data.size,
              bytes_read=x.data.nbytes + mask.nbytes,
              bytes_written=x.data.nbytes)

    def backward(g):
        return (g * mask,)

    return Tensor._make(x.data * mask, (x,), backward)
