"""Neural-network module layer: Parameter, Module, Linear, etc.

Provides the thin ``torch.nn``-style layer the NAU ``Update`` stage uses
(Equation (2) only involves dense NN ops).
"""

from __future__ import annotations

import math

import numpy as np

from ..obs.profile import record_op
from .ops import dropout as _dropout
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Embedding", "LSTMCell", "ReLU", "Dropout", "Sequential"]


class Parameter(Tensor):
    """A tensor registered as a trainable module attribute."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True)


class Module:
    """Base class with parameter discovery and train/eval mode.

    Subclasses implement ``forward``; attribute assignment automatically
    registers :class:`Parameter` and sub-``Module`` instances.
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        items = [(prefix + name, p) for name, p in self._parameters.items()]
        for child_name, child in self._modules.items():
            items.extend(child.named_parameters(prefix + child_name + "."))
        return items

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot parameter values (used by fault-tolerance checkpoints)."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}")
            p.data[...] = state[name]

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``y = x W + b`` with Glorot-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        bound = math.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
            # broadcast add: one FLOP per output element (the matmul
            # accounts for itself inside Tensor.__matmul__)
            record_op("linear.bias", flops=float(out.data.size),
                      bytes_read=out.data.nbytes + self.bias.data.nbytes,
                      bytes_written=out.data.nbytes)
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return _dropout(x, self.p, self._rng, training=self.training)


class Embedding(Module):
    """Learnable per-id vectors — input features for featureless graphs.

    ``forward(ids)`` gathers rows differentiably, so vertex embeddings
    train end-to-end with the GNN; ``weight`` is ``(num_embeddings, dim)``.
    """

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None, sparse_grad: bool = False):
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive")
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.sparse_grad = bool(sparse_grad)
        self.weight = Parameter(rng.standard_normal((num_embeddings, dim)) / math.sqrt(dim))

    def forward(self, ids=None) -> Tensor:
        """Rows for ``ids`` (default: the whole table, for full-batch GNNs).

        With ``sparse_grad=True`` the backward pass records ``(ids,
        grad_rows)`` on ``weight.sparse_grads`` instead of scattering
        into a dense ``(num_embeddings, dim)`` gradient, so a minibatch
        step stays O(batch) — ``SparseEmbeddingOptimizer`` consumes the
        records.
        """
        if ids is None:
            return self.weight
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError("embedding id out of range")
        if not self.sparse_grad:
            return self.weight[ids]
        weight = self.weight
        out_data = weight.data[ids]

        def backward(g):
            pending = getattr(weight, "sparse_grads", None)
            if pending is None:
                pending = []
                weight.sparse_grads = pending
            pending.append((ids, np.asarray(g)))
            return (None,)

        return Tensor._make(out_data, (weight,), backward)


class LSTMCell(Module):
    """A single LSTM cell (used by sequence aggregators).

    Gate layout follows the classic formulation: input, forget, cell and
    output gates computed from ``[x W_x + h W_h + b]`` split four ways.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        bound = math.sqrt(1.0 / hidden_dim)
        self.w_x = Parameter(rng.uniform(-bound, bound, size=(input_dim, 4 * hidden_dim)))
        self.w_h = Parameter(rng.uniform(-bound, bound, size=(hidden_dim, 4 * hidden_dim)))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One step: returns the new (h, c)."""
        gates = x @ self.w_x + h @ self.w_h + self.bias
        d = self.hidden_dim
        i = gates[:, 0:d].sigmoid()
        f = gates[:, d : 2 * d].sigmoid()
        g = gates[:, 2 * d : 3 * d].tanh()
        o = gates[:, 3 * d : 4 * d].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
