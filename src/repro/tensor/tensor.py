"""A minimal reverse-mode autograd engine over numpy arrays.

This module is the reproduction's stand-in for PyTorch: FlexGraph (EuroSys
'21) uses PyTorch as its NN execution runtime, which is not available in
this offline environment.  ``Tensor`` wraps a ``numpy.ndarray`` and records
a tape of backward closures, exactly enough to express the op vocabulary
the paper's code sketches rely on (dense matmul, elementwise ops, gather,
scatter reductions, reshape-then-reduce).

The design follows the classic define-by-run tape:

* every differentiable op produces a new ``Tensor`` whose ``_backward``
  closure accumulates gradients into its parents;
* ``Tensor.backward()`` topologically sorts the tape and runs the closures
  in reverse order.

Gradients are always held as plain ``numpy.ndarray`` (never nested
Tensors); there is no higher-order differentiation, matching what GNN
training needs.
"""

from __future__ import annotations

import numpy as np

from ..obs.profile import record_op

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling gradient tape recording (like torch.no_grad)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``/``float32`` ndarray
        (integer payloads are kept as-is but cannot require grad).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64) if not isinstance(
            data, np.ndarray
        ) else data
        if self.data.dtype.kind in "iub" and requires_grad:
            raise TypeError("integer tensors cannot require grad")
        self.requires_grad = bool(requires_grad and _GRAD_ENABLED)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        """Create a tape node from an op's forward output.

        ``backward`` is called with the output gradient and must return a
        tuple of gradients aligned with ``parents`` (``None`` for parents
        that do not require grad).
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to ``1.0`` for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the tape (iterative DFS: tapes can be deep).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if parent._backward is None and not parent._parents:
                    parent._accumulate(pgrad)
                elif id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data
        a_shape, b_shape = self.shape, other.shape

        def backward(g):
            return _unbroadcast(g, a_shape), _unbroadcast(g, b_shape)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def add(self, other) -> "Tensor":
        """Elementwise addition (paper pseudocode: ``feas.add(nbr_feas)``)."""
        return self + other

    def __sub__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data - other.data
        a_shape, b_shape = self.shape, other.shape

        def backward(g):
            return _unbroadcast(g, a_shape), _unbroadcast(-g, b_shape)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data
        a, b = self, other

        def backward(g):
            ga = _unbroadcast(g * b.data, a.shape) if a.requires_grad else None
            gb = _unbroadcast(g * a.data, b.shape) if b.requires_grad else None
            return ga, gb

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data / other.data
        a, b = self, other

        def backward(g):
            ga = _unbroadcast(g / b.data, a.shape) if a.requires_grad else None
            gb = (
                _unbroadcast(-g * a.data / (b.data**2), b.shape)
                if b.requires_grad
                else None
            )
            return ga, gb

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(g):
            return (-g,)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent
        base = self

        def backward(g):
            return (g * exponent * base.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data @ other.data
        a, b = self, other
        # (n,k)@(k,m): 2nkm FLOPs (multiply+add); the same count again
        # per backward operand (dL/dA = g@B^T, dL/dB = A^T@g).
        flops = 2.0 * out_data.size * self.data.shape[-1]
        record_op(
            "matmul", flops=flops,
            bytes_read=self.data.nbytes + other.data.nbytes,
            bytes_written=out_data.nbytes,
        )

        def backward(g):
            ga = gb = None
            if a.requires_grad:
                ga = g @ b.data.T
                record_op("matmul.backward", flops=flops,
                          bytes_read=g.nbytes + b.data.nbytes,
                          bytes_written=ga.nbytes)
            if b.requires_grad:
                gb = a.data.T @ g
                record_op("matmul.backward", flops=flops,
                          bytes_read=g.nbytes + a.data.nbytes,
                          bytes_written=gb.nbytes)
            return ga, gb

        return Tensor._make(out_data, (self, other), backward)

    def matmul(self, other) -> "Tensor":
        return self @ other

    @property
    def T(self) -> "Tensor":
        def backward(g):
            return (g.T,)

        return Tensor._make(self.data.T, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshape without memory copy — the dense-op trick in Section 4.2."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(g):
            return (g.reshape(old_shape),)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, idx) -> "Tensor":
        """Gather rows/slices; indices may be ndarray (fancy indexing)."""
        if isinstance(idx, Tensor):
            idx = idx.data.astype(np.int64)
        out_data = self.data[idx]
        src = self

        def backward(g):
            full = np.zeros_like(src.data)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        src_shape = self.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, src_shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded, src_shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        src_shape = self.shape
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([src_shape[a] for a in axes]))

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g / count, src_shape).copy(),)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return (np.broadcast_to(g_expanded / count, src_shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        src = self

        def backward(g):
            if axis is None:
                mask = (src.data == out_data).astype(src.data.dtype)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (src.data == expanded).astype(src.data.dtype)
            # Split gradient equally among ties to keep it well-defined.
            denom = mask.sum(axis=axis, keepdims=True)
            denom[denom == 0] = 1.0
            g_expanded = g if (axis is None or keepdims) else np.expand_dims(g, axis)
            return (mask / denom * g_expanded,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)
        mask = self.data > 0

        def backward(g):
            return (g * mask,)

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            return (g * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        src = self

        def backward(g):
            return (g / src.data,)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            return (g * (1.0 - out_data**2),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            return (g * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward)


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=np.float64))
