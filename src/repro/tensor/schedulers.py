"""Learning-rate schedulers and early stopping for training loops."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR", "EarlyStopping"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = -1

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        if lr <= 0:
            raise ValueError(f"scheduler produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 1e-6):
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupLR(LRScheduler):
    """Linear warm-up over ``warmup_epochs``, then an inner schedule (or
    constant base lr)."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after: LRScheduler | None = None):
        if warmup_epochs <= 0:
            raise ValueError("warmup_epochs must be positive")
        super().__init__(optimizer)
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        if self.after is not None:
            return self.after.get_lr(epoch - self.warmup_epochs)
        return self.base_lr


class EarlyStopping:
    """Stop when a monitored value stops improving.

    Call :meth:`update` with the metric each epoch; it returns ``True``
    when training should stop.  ``mode="min"`` for losses, ``"max"`` for
    accuracies; ``min_delta`` is the smallest change that counts as an
    improvement.
    """

    def __init__(self, patience: int = 10, mode: str = "min",
                 min_delta: float = 0.0):
        if patience <= 0:
            raise ValueError("patience must be positive")
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best: float | None = None
        self.best_epoch = -1
        self.stale = 0
        self._epoch = -1

    def update(self, value: float) -> bool:
        """Record the epoch metric; returns True when patience ran out."""
        self._epoch += 1
        improved = (
            self.best is None
            or (self.mode == "min" and value < self.best - self.min_delta)
            or (self.mode == "max" and value > self.best + self.min_delta)
        )
        if improved:
            self.best = value
            self.best_epoch = self._epoch
            self.stale = 0
            return False
        self.stale += 1
        return self.stale >= self.patience
