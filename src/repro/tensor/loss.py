"""Loss functions for GNN training (vertex classification is the paper's
downstream task; link prediction uses binary cross-entropy)."""

from __future__ import annotations

import numpy as np

from .ops import log_softmax
from .tensor import Tensor, _as_tensor

__all__ = ["cross_entropy", "nll_loss", "mse_loss", "binary_cross_entropy_with_logits", "accuracy"]


def cross_entropy(logits: Tensor, targets: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy of ``logits`` (N, C) against integer ``targets`` (N,).

    ``mask`` optionally restricts the loss to a boolean subset of rows
    (transductive training splits in vertex classification).
    """
    logits = _as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(f"targets shape {targets.shape} incompatible with logits {logits.shape}")
    log_probs = log_softmax(logits, axis=-1)
    return nll_loss(log_probs, targets, mask)


def nll_loss(log_probs: Tensor, targets: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Negative log-likelihood over (already log-softmaxed) probabilities."""
    log_probs = _as_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    n, c = log_probs.shape
    if np.any(targets < 0) or np.any(targets >= c):
        raise ValueError("target class out of range")
    rows = np.arange(n)
    if mask is None:
        weight = np.ones(n)
    else:
        weight = np.asarray(mask, dtype=np.float64)
        if weight.shape != (n,):
            raise ValueError(f"mask shape {weight.shape} does not match {n} rows")
    denom = max(weight.sum(), 1.0)
    picked = log_probs.data[rows, targets]
    out_data = np.asarray(-(picked * weight).sum() / denom)

    def backward(g):
        grad = np.zeros_like(log_probs.data)
        grad[rows, targets] = -weight / denom
        return (grad * g,)

    return Tensor._make(out_data, (log_probs,), backward)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error."""
    pred = _as_tensor(pred)
    target = _as_tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically stable BCE on raw logits (link-prediction objective)."""
    logits = _as_tensor(logits)
    t = np.asarray(targets if not isinstance(targets, Tensor) else targets.data, dtype=np.float64)
    x = logits.data
    out_data = np.asarray(np.mean(np.maximum(x, 0) - x * t + np.log1p(np.exp(-np.abs(x)))))

    def backward(g):
        # Numerically stable sigmoid (avoids exp overflow for large |x|).
        sig = np.empty_like(x)
        pos = x >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        sig[~pos] = ex / (1.0 + ex)
        return (g * (sig - t) / x.size,)

    return Tensor._make(out_data, (logits,), backward)


def accuracy(logits: Tensor, targets: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Classification accuracy of argmax predictions."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=-1)
    targets = np.asarray(targets)
    correct = pred == targets
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            return 0.0
        correct = correct[mask]
    return float(correct.mean())
