"""Cached reduction plans — structure setup hoisted off the kernel hot path.

Every scatter/segment reduction in :mod:`repro.tensor.scatter` needs the
same handful of derived structures: a stable-sort permutation of the
destination index, per-segment counts and offsets, a CSR reduction
matrix for the sum/mean SpMM forward, and that matrix's CSC transpose
for the backward.  HDG topology is fixed across epochs (and across
serve requests hitting a cached block), so recomputing these per call
is pure overhead — NeuGraph-style topology-aware scheduling amortizes
it once.

:class:`ReductionPlan` packages the precomputation for one reduction
structure; :class:`PlanCache` is a byte-budgeted LRU keyed by content
fingerprint (``HDG.fingerprint()`` / ``Graph.fingerprint()``), so a
graph edit produces a new fingerprint and stale plans simply age out —
the same versioning discipline as :class:`repro.serve.cache.HDGBlockCache`.

Cache traffic lands in the ``plan.cache.*`` obs counters, so traces and
epoch logs show when the plan layer is (or is not) amortizing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np
import scipy.sparse as _sp

from ..obs import counter as _obs_counter
from ..obs.profile import record_op

__all__ = [
    "ReductionPlan",
    "PlanCache",
    "accumulation_dtype",
    "get_plan_cache",
    "set_plan_cache",
    "index_plan_key",
    "segment_plan_key",
    "PLAN_HIT_COUNTER",
    "PLAN_MISS_COUNTER",
    "PLAN_BUILD_COUNTER",
    "PLAN_EVICTION_COUNTER",
]

PLAN_HIT_COUNTER = "plan.cache.hit"
PLAN_MISS_COUNTER = "plan.cache.miss"
PLAN_BUILD_COUNTER = "plan.cache.build"
PLAN_EVICTION_COUNTER = "plan.cache.evictions"


def accumulation_dtype(dtype) -> np.dtype:
    """Accumulator dtype for a reduction over ``dtype`` values.

    float16 values accumulate in float32: half precision loses ulps
    after a few hundred additions (and overflows at 65504), and scipy's
    SpMM has no fp16 kernel.  Every other float dtype accumulates
    natively.  The quantized feature tier stores fp16/int8 but all
    reductions run through this mapping, so compute stays well-behaved.
    """
    dtype = np.dtype(dtype)
    return np.dtype(np.float32) if dtype == np.float16 else dtype


def index_plan_key(base, length: int, dim_size: int) -> tuple:
    """Cache key for a plan over a scatter ``index`` array.

    ``base`` identifies the topology (e.g. ``(hdg.fingerprint(), level)``);
    the structural tail guards against reusing a plan for a call with a
    different shape under the same base.
    """
    return ("idx", base, int(length), int(dim_size))


def segment_plan_key(base, num_segments: int, total: int, num_rows: int,
                     identity: bool) -> tuple:
    """Cache key for a plan over an ``(offsets, sources)`` CSR structure."""
    return ("seg", base, int(num_segments), int(total), int(num_rows),
            bool(identity))


class ReductionPlan:
    """Precomputed structure for one segmented reduction.

    Two layouts share the class:

    * ``kind == "index"`` — built from a per-row destination index (the
      SA path).  ``gather`` is the stable-sort permutation bringing rows
      into segment order; the CSR matrix has one column per input row.
    * ``kind == "segments"`` — built from a CSR ``(offsets, sources)``
      pair (the FA path).  Rows are already in segment order; ``gather``
      is ``sources`` (or ``None`` for the elided-Dst identity layout).

    Heavy artifacts (the SpMM matrix, its CSC transpose re-expressed as
    CSR, safe divisor vectors) are built lazily per dtype and memoized,
    with byte growth reported back to the owning :class:`PlanCache`.
    """

    __slots__ = (
        "kind", "n", "num_rows", "total", "offsets", "counts",
        "nonempty", "starts", "gather",
        "_index", "_matrices", "_matrices_t", "_safe_counts",
        "_inv_counts", "_source_plan", "_owner",
    )

    def __init__(self, kind: str, n: int, num_rows: int, total: int,
                 offsets: np.ndarray, counts: np.ndarray,
                 gather: np.ndarray | None,
                 index: np.ndarray | None) -> None:
        self.kind = kind
        self.n = int(n)
        self.num_rows = int(num_rows)
        self.total = int(total)
        self.offsets = offsets
        self.counts = counts
        self.nonempty = counts > 0
        self.starts = offsets[:-1][self.nonempty]
        self.gather = gather
        self._index = index
        self._matrices: dict[str, _sp.csr_matrix] = {}
        self._matrices_t: dict[str, _sp.csr_matrix] = {}
        self._safe_counts: dict[str, np.ndarray] = {}
        self._inv_counts: dict[str, np.ndarray] = {}
        self._source_plan: ReductionPlan | None = None
        self._owner: PlanCache | None = None
        record_op("plan.build",
                  bytes_read=(0 if index is None else index.nbytes),
                  bytes_written=self.nbytes)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_index(cls, index: np.ndarray, dim_size: int) -> "ReductionPlan":
        """Plan for ``scatter_*(value, index, dim_size)`` calls."""
        index = np.asarray(index)
        index = index.astype(np.int64, copy=False)
        if index.ndim != 1:
            raise ValueError(f"scatter index must be 1-D, got shape {index.shape}")
        n = int(dim_size)
        if index.size:
            lo = int(index.min())
            hi = int(index.max())
            if lo < 0 or hi >= n:
                raise ValueError(
                    f"scatter index values must lie in [0, {n}), "
                    f"got range [{lo}, {hi}]"
                )
        counts = np.bincount(index, minlength=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        order = np.argsort(index, kind="stable")
        return cls("index", n, index.size, index.size, offsets, counts,
                   order, index)

    @classmethod
    def from_segments(cls, offsets: np.ndarray,
                      sources: np.ndarray | None,
                      num_rows: int) -> "ReductionPlan":
        """Plan for ``segment_reduce_csr(value, offsets, sources)`` calls."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0:
            raise ValueError(
                f"offsets must start at 0, got offsets[0]={int(offsets[0])}"
            )
        counts = np.diff(offsets)
        if np.any(counts < 0):
            raise ValueError("offsets must be non-decreasing")
        total = int(offsets[-1])
        num_rows = int(num_rows)
        if sources is None:
            gather = None
            if total != num_rows:
                raise ValueError(
                    f"offsets cover {total} rows but value has {num_rows}"
                )
        else:
            gather = np.asarray(sources, dtype=np.int64)
            if gather.shape[0] != total:
                raise ValueError("sources length must equal offsets[-1]")
            if gather.size and (int(gather.min()) < 0
                                or int(gather.max()) >= num_rows):
                raise ValueError(
                    f"sources must lie in [0, {num_rows})"
                )
        return cls("segments", offsets.size - 1, num_rows, total,
                   offsets, counts, gather, None)

    # -- lazy artifacts -------------------------------------------------
    @property
    def index(self) -> np.ndarray:
        """Per-row destination index (``dst_of_edge`` for segment plans)."""
        if self._index is None:
            self._index = np.repeat(
                np.arange(self.n, dtype=np.int64), self.counts
            )
            self._grew(self._index.nbytes)
        return self._index

    def matrix(self, dtype) -> _sp.csr_matrix:
        """``(n, num_rows)`` CSR reduction matrix: ``matrix @ value`` sums
        each segment.  Memoized per dtype; float16 requests resolve to
        the float32 matrix (fp16 accumulates in fp32, see
        :func:`accumulation_dtype`)."""
        key = accumulation_dtype(dtype).str
        m = self._matrices.get(key)
        if m is None:
            if self.gather is not None:
                indices = self.gather
            else:
                indices = np.arange(self.total, dtype=np.int64)
            m = _sp.csr_matrix(
                (np.ones(self.total, dtype=accumulation_dtype(dtype)),
                 indices, self.offsets),
                shape=(self.n, self.num_rows),
            )
            self._matrices[key] = m
            self._grew(m.data.nbytes + m.indices.nbytes + m.indptr.nbytes)
        return m

    def matrix_t(self, dtype) -> _sp.csr_matrix:
        """CSC transpose of :meth:`matrix`, re-expressed as CSR so the
        backward SpMM never converts on the hot path.  Memoized per dtype."""
        key = accumulation_dtype(dtype).str
        m = self._matrices_t.get(key)
        if m is None:
            m = self.matrix(dtype).T.tocsr()
            self._matrices_t[key] = m
            self._grew(m.data.nbytes + m.indices.nbytes + m.indptr.nbytes)
        return m

    def safe_counts(self, dtype) -> np.ndarray:
        """``max(counts, 1)`` in ``dtype`` — the mean divisor.  Computed in
        the value dtype so float32 models stay float32 end-to-end (fp16
        routes to fp32 — counts above 2048 are not exact in half)."""
        key = accumulation_dtype(dtype).str
        c = self._safe_counts.get(key)
        if c is None:
            c = np.maximum(self.counts, 1).astype(accumulation_dtype(dtype))
            self._safe_counts[key] = c
            self._grew(c.nbytes)
        return c

    def inv_counts(self, dtype) -> np.ndarray:
        """``1 / max(counts, 1)`` in ``dtype`` — the mean backward scale."""
        key = accumulation_dtype(dtype).str
        c = self._inv_counts.get(key)
        if c is None:
            c = 1.0 / self.safe_counts(dtype)
            self._inv_counts[key] = c
            self._grew(c.nbytes)
        return c

    def source_plan(self) -> "ReductionPlan | None":
        """For gathered segment plans: an index plan over ``sources`` that
        scatters per-edge gradients back to source rows.  ``None`` when the
        layout is the identity (edge grads map 1:1 to value rows)."""
        if self.gather is None:
            return None
        if self._source_plan is None:
            self._source_plan = ReductionPlan.from_index(
                self.gather, self.num_rows
            )
            self._grew(self._source_plan.nbytes)
        return self._source_plan

    # -- accounting -----------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Current footprint, including lazily built artifacts."""
        total = self.offsets.nbytes + self.counts.nbytes
        total += self.nonempty.nbytes + self.starts.nbytes
        if self.gather is not None:
            total += self.gather.nbytes
        if self._index is not None and self._index is not self.gather:
            total += self._index.nbytes
        for m in (*self._matrices.values(), *self._matrices_t.values()):
            total += m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        for c in (*self._safe_counts.values(), *self._inv_counts.values()):
            total += c.nbytes
        if self._source_plan is not None:
            total += self._source_plan.nbytes
        return int(total)

    def _grew(self, nbytes: int) -> None:
        if self._owner is not None:
            self._owner._grew(int(nbytes))


class PlanCache:
    """LRU, byte-budgeted store of :class:`ReductionPlan` objects.

    Keys embed a content fingerprint of the topology (see
    :func:`index_plan_key`), so a graph edit changes the key and stale
    plans are never looked up again — they age out of the LRU exactly
    like stale blocks in :class:`repro.serve.cache.HDGBlockCache`.
    ``max_bytes=0`` disables caching (every lookup misses, puts drop).
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, ReductionPlan] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> ReductionPlan | None:
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            _obs_counter(PLAN_MISS_COUNTER).add(1)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _obs_counter(PLAN_HIT_COUNTER).add(1)
        return plan

    def put(self, key: tuple, plan: ReductionPlan) -> ReductionPlan:
        if self.max_bytes <= 0:
            return plan
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old.nbytes
            old._owner = None
        self._entries[key] = plan
        plan._owner = self
        self.current_bytes += plan.nbytes
        self._evict()
        return plan

    def get_or_build(self, key: tuple,
                     builder: Callable[[], ReductionPlan]) -> ReductionPlan:
        """Return the cached plan for ``key``, building (and counting a
        ``plan.cache.build``) on miss."""
        plan = self.get(key)
        if plan is None:
            plan = builder()
            self.builds += 1
            _obs_counter(PLAN_BUILD_COUNTER).add(1)
            self.put(key, plan)
        return plan

    def _grew(self, nbytes: int) -> None:
        self.current_bytes += nbytes
        self._evict()

    def _evict(self) -> None:
        while self.current_bytes > self.max_bytes and self._entries:
            _, stale = self._entries.popitem(last=False)
            self.current_bytes -= stale.nbytes
            stale._owner = None
            self.evictions += 1
            _obs_counter(PLAN_EVICTION_COUNTER).add(1)

    def clear(self) -> None:
        for plan in self._entries.values():
            plan._owner = None
        self._entries.clear()
        self.current_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "builds": self.builds,
            "evictions": self.evictions,
        }


_PLAN_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-global plan cache used by the kernel layer."""
    return _PLAN_CACHE


def set_plan_cache(cache: PlanCache) -> PlanCache:
    """Swap the global plan cache (tests, custom budgets); returns the
    previous cache so callers can restore it."""
    global _PLAN_CACHE
    previous = _PLAN_CACHE
    _PLAN_CACHE = cache
    return previous
