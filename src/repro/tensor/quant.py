"""Per-row feature/embedding codecs: symmetric int8, fp16, identity fp32.

Aggregation is bytes-bound (Figure 14: HA <= SA+FA <= SA is a bytes
ordering), so the cheapest raw-speed lever left after kernel plans is
moving fewer bytes per gathered row.  This module provides the storage
codecs the quantized memory tier is built on:

``int8``
    Per-row *symmetric* linear quantization.  Each row ``x`` stores
    ``codes = round(x / scale)`` as int8 plus one float32 ``scale =
    max|x| / 127`` sidecar per row (the zero-point is identically 0 by
    symmetry, so no zero-point sidecar is materialized; the
    :class:`QuantizedRows` container keeps the field for format
    completeness).  Wire cost is ``dim + 4`` bytes per row instead of
    ``4 * dim``.

    Error bound: rounding is at most half a code unit, so for every
    element ``|x - dequantize(x)| <= scale / 2 = max|x| / 254`` — a
    per-row *absolute* bound of ~0.4% of the row's dynamic range.

``float16``
    IEEE half precision, no sidecar.  Relative error bound is
    ``2**-11`` (one ulp of the 10-bit mantissa) for values in the fp16
    normal range; wire cost is ``2 * dim`` bytes per row.

``float32``
    Identity codec so callers can treat the unquantized path uniformly.

All encode/decode paths are vectorized; decode accounts its work via
``record_op`` so roofline reports see quantized wire bytes on the read
side and compute-dtype bytes on the write side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.profile import record_op

__all__ = [
    "FEATURE_DTYPES",
    "QuantizedRows",
    "quantize_rows",
    "dequantize_rows",
    "decode_int8",
    "int8_error_bound",
    "resolve_codec",
    "storage_itemsize",
    "wire_bytes_per_row",
]

#: Storage dtypes the quantized tier understands, in decreasing width.
FEATURE_DTYPES = ("float32", "float16", "int8")

_STORAGE_DTYPE = {
    "float32": np.dtype(np.float32),
    "float16": np.dtype(np.float16),
    "int8": np.dtype(np.int8),
}


def resolve_codec(name: str) -> str:
    """Validate a codec name, loudly rejecting anything unknown."""
    codec = str(name)
    if codec not in _STORAGE_DTYPE:
        raise ValueError(
            f"unknown feature codec {codec!r}; expected one of {FEATURE_DTYPES}"
        )
    return codec


def storage_itemsize(codec: str) -> int:
    """Bytes per stored element for ``codec``."""
    return _STORAGE_DTYPE[resolve_codec(codec)].itemsize


def wire_bytes_per_row(codec: str, dim: int) -> int:
    """Bytes actually moved per gathered row, sidecars included."""
    codec = resolve_codec(codec)
    base = int(dim) * _STORAGE_DTYPE[codec].itemsize
    if codec == "int8":
        base += 4  # one float32 scale per row rides along with the codes
    return base


@dataclass
class QuantizedRows:
    """A row-quantized 2-D array plus its per-row sidecars.

    ``codes`` is ``(n, dim)`` in the storage dtype; ``scales`` is a
    float32 ``(n,)`` sidecar for int8 (``None`` otherwise).
    ``zero_points`` is always ``None`` for the symmetric codec but kept
    so on-disk formats have a stable field to extend.
    """

    codec: str
    codes: np.ndarray
    scales: np.ndarray | None = None
    zero_points: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self):
        self.codec = resolve_codec(self.codec)
        if self.codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {self.codes.shape}")
        expected = _STORAGE_DTYPE[self.codec]
        if self.codes.dtype != expected:
            raise ValueError(
                f"codec {self.codec!r} stores {expected}, got codes dtype {self.codes.dtype}"
            )
        if self.codec == "int8":
            if self.scales is None:
                raise ValueError("int8 codec requires a per-row scale sidecar")
            if self.scales.shape != (self.codes.shape[0],):
                raise ValueError(
                    f"scales shape {self.scales.shape} does not match "
                    f"{self.codes.shape[0]} rows"
                )
        elif self.scales is not None:
            raise ValueError(f"codec {self.codec!r} takes no scale sidecar")

    @property
    def num_rows(self) -> int:
        return int(self.codes.shape[0])

    @property
    def dim(self) -> int:
        return int(self.codes.shape[1])

    @property
    def nbytes(self) -> int:
        """Resident bytes, sidecars included."""
        total = int(self.codes.nbytes)
        if self.scales is not None:
            total += int(self.scales.nbytes)
        return total

    @property
    def wire_bytes_per_row(self) -> int:
        return wire_bytes_per_row(self.codec, self.dim)

    def dequantize(self, rows=None, out_dtype=np.float32) -> np.ndarray:
        """Decode ``rows`` (or the whole table) into ``out_dtype``."""
        return dequantize_rows(self, rows=rows, out_dtype=out_dtype)


def quantize_rows(rows: np.ndarray, codec: str) -> QuantizedRows:
    """Encode a float ``(n, dim)`` array with ``codec``.

    int8 uses per-row symmetric scales (``max|row| / 127``); all-zero
    rows get scale 1.0 so they round-trip exactly.
    """
    codec = resolve_codec(codec)
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"quantize_rows expects a 2-D array, got shape {rows.shape}")
    if rows.dtype.kind != "f":
        rows = rows.astype(np.float32)
    if codec == "float32":
        return QuantizedRows(codec, np.ascontiguousarray(rows, dtype=np.float32))
    if codec == "float16":
        return QuantizedRows(codec, np.ascontiguousarray(rows, dtype=np.float16))
    absmax = np.abs(rows).max(axis=1) if rows.size else np.zeros(rows.shape[0])
    scales = (absmax / 127.0).astype(np.float32)
    scales[scales == 0.0] = 1.0
    codes = np.rint(rows / scales[:, None]).astype(np.int8)
    record_op(
        "feature.quantize",
        flops=2.0 * rows.size,
        bytes_read=rows.nbytes,
        bytes_written=codes.nbytes + scales.nbytes,
    )
    return QuantizedRows(codec, codes, scales)


def decode_int8(codes: np.ndarray, scales: np.ndarray, out_dtype=np.float32,
                out: np.ndarray | None = None) -> np.ndarray:
    """Dequantize raw int8 codes with per-row scales (no container needed).

    This is the hot path the on-disk gather uses directly on pread
    buffers; ``out`` lets callers decode into a preallocated slice.
    """
    codes = np.asarray(codes)
    scales = np.asarray(scales, dtype=np.float32)
    if out is None:
        out = np.empty(codes.shape, dtype=out_dtype)
    np.multiply(codes, scales[..., None], out=out, casting="unsafe")
    return out


def dequantize_rows(q: QuantizedRows, rows=None, out_dtype=np.float32) -> np.ndarray:
    """Decode a row subset of ``q`` (or everything) into ``out_dtype``.

    Accounts the decode as ``feature.dequantize``: reads are wire-sized
    (quantized), writes are compute-sized.
    """
    out_dtype = np.dtype(out_dtype)
    if rows is None:
        codes = q.codes
        scales = q.scales
    else:
        rows = np.asarray(rows, dtype=np.int64)
        codes = q.codes[rows]
        scales = q.scales[rows] if q.scales is not None else None
    wire = int(codes.nbytes) + (int(scales.nbytes) if scales is not None else 0)
    if q.codec == "int8":
        out = decode_int8(codes, scales, out_dtype=out_dtype)
        flops = 2.0 * codes.size
    else:
        out = codes.astype(out_dtype, copy=True)
        flops = float(codes.size)
    record_op(
        "feature.dequantize",
        flops=flops,
        bytes_read=wire,
        bytes_written=out.nbytes,
    )
    return out


def int8_error_bound(rows: np.ndarray) -> np.ndarray:
    """Per-row worst-case absolute error of the int8 codec.

    Rounding to the nearest code is off by at most half a code unit, so
    the bound is ``scale / 2 = max|row| / 254`` per row.
    """
    rows = np.asarray(rows)
    absmax = np.abs(rows).max(axis=1) if rows.size else np.zeros(rows.shape[0])
    return absmax / 254.0
