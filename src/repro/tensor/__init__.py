"""``repro.tensor`` — numpy autograd NN framework (PyTorch substitute).

FlexGraph runs on PyTorch; this package provides the subset of that
surface the reproduction needs: a tape-based :class:`Tensor`, dense and
sparse (scatter/segment) ops, ``nn``-style modules, optimizers and losses.
"""

from .loss import (
    accuracy,
    binary_cross_entropy_with_logits,
    cross_entropy,
    mse_loss,
    nll_loss,
)
from .nn import Dropout, Embedding, Linear, LSTMCell, Module, Parameter, ReLU, Sequential
from .ops import (
    concat,
    dropout,
    log_softmax,
    ones,
    randn,
    relu,
    scatter_rows,
    softmax,
    stack,
    tensor,
    zeros,
)
from .optim import SGD, Adam, Optimizer, SparseEmbeddingOptimizer
from .quant import (
    FEATURE_DTYPES,
    QuantizedRows,
    dequantize_rows,
    int8_error_bound,
    quantize_rows,
    resolve_codec,
    wire_bytes_per_row,
)
from .plans import (
    PlanCache,
    ReductionPlan,
    accumulation_dtype,
    get_plan_cache,
    index_plan_key,
    segment_plan_key,
    set_plan_cache,
)
from .schedulers import (
    CosineAnnealingLR,
    EarlyStopping,
    LRScheduler,
    StepLR,
    WarmupLR,
)
from .scatter import (
    materialized_bytes,
    peak_materialized_bytes,
    release_materialized_bytes,
    reset_materialized_bytes,
    scatter_add,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_softmax,
    segment_reduce_csr,
)
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "tensor", "zeros", "ones", "randn", "relu", "concat", "stack",
    "softmax", "log_softmax", "dropout", "scatter_rows",
    "scatter_add", "scatter_mean", "scatter_max", "scatter_min",
    "scatter_softmax", "segment_reduce_csr",
    "ReductionPlan", "PlanCache", "accumulation_dtype",
    "get_plan_cache", "set_plan_cache",
    "index_plan_key", "segment_plan_key",
    "materialized_bytes", "peak_materialized_bytes",
    "reset_materialized_bytes", "release_materialized_bytes",
    "Module", "Parameter", "Linear", "Embedding", "LSTMCell", "ReLU", "Dropout", "Sequential",
    "Optimizer", "SGD", "Adam", "SparseEmbeddingOptimizer",
    "FEATURE_DTYPES", "QuantizedRows", "quantize_rows", "dequantize_rows",
    "int8_error_bound", "resolve_codec", "wire_bytes_per_row",
    "LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR", "EarlyStopping",
    "cross_entropy", "nll_loss", "mse_loss",
    "binary_cross_entropy_with_logits", "accuracy",
]
