"""Scatter and segment reductions — the sparse-NN op layer.

FlexGraph's hybrid execution (Section 4.2) distinguishes three ways to
aggregate neighbor features:

* **SA (sparse tensor ops)** — :func:`scatter_add` and friends, in the
  style of pytorch-scatter.  The caller gathers source features into a
  per-edge ``value`` tensor first, *materializing* one message per edge
  (Figure 8); this is the memory-explosion path the paper calls out.
* **FA (feature fusion)** — :func:`segment_reduce_csr`, which reduces
  directly over a CSC/CSR segment structure without per-edge
  materialization, modeling libgrape-lite's vertex-reduce.
* **Dense ops** — plain reshape + reduce, used at the schema-tree level.

All reductions here are autograd-aware.  The ``scatter.materialized_bytes``
observability counter tracks both the running *total* and the *peak*
concurrently-live bytes of per-edge intermediates so memory-footprint
experiments can observe the SA-vs-FA difference quantitatively (see
:mod:`repro.obs`; training loops release the counter after backward so
``peak`` reflects the per-epoch high-water mark).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as _sp

from ..obs import counter as _obs_counter
from ..obs.profile import record_op
from .tensor import Tensor, _as_tensor

__all__ = [
    "scatter_add",
    "scatter_mean",
    "scatter_max",
    "scatter_min",
    "scatter_softmax",
    "segment_reduce_csr",
    "materialized_bytes",
    "peak_materialized_bytes",
    "reset_materialized_bytes",
    "release_materialized_bytes",
    "MATERIALIZED_BYTES_COUNTER",
]

#: Name of the obs counter fed by per-edge scatter intermediates.
MATERIALIZED_BYTES_COUNTER = "scatter.materialized_bytes"


def materialized_bytes() -> int:
    """Total bytes of per-edge message tensors materialized so far."""
    return int(_obs_counter(MATERIALIZED_BYTES_COUNTER).total)


def peak_materialized_bytes() -> int:
    """High-water mark of concurrently live per-edge bytes (Table 5's
    peak-memory accounting).  Equals :func:`materialized_bytes` unless a
    training loop releases intermediates after backward."""
    return int(_obs_counter(MATERIALIZED_BYTES_COUNTER).peak)


def reset_materialized_bytes() -> None:
    _obs_counter(MATERIALIZED_BYTES_COUNTER).reset()


def release_materialized_bytes(nbytes: int) -> None:
    """Mark ``nbytes`` of per-edge intermediates as freed (lowers the
    live value the peak tracks; the running total is unaffected)."""
    _obs_counter(MATERIALIZED_BYTES_COUNTER).release(nbytes)


def _record_materialization(nbytes: int) -> None:
    _obs_counter(MATERIALIZED_BYTES_COUNTER).add(int(nbytes))


def _check_index(index, length: int) -> np.ndarray:
    # Unwrap Tensor *before* np.asarray: asarray would build a 0-d object
    # array from a Tensor, so unwrapping afterwards never fired.
    if isinstance(index, Tensor):
        index = index.data
    index = np.asarray(index)
    index = index.astype(np.int64, copy=False)
    if index.ndim != 1:
        raise ValueError(f"scatter index must be 1-D, got shape {index.shape}")
    if index.shape[0] != length:
        raise ValueError(
            f"index length {index.shape[0]} does not match value rows {length}"
        )
    return index


def _dim_size(index: np.ndarray, dim_size: int | None) -> int:
    if dim_size is not None:
        return int(dim_size)
    return int(index.max()) + 1 if index.size else 0


def scatter_add(value: Tensor, index: np.ndarray, dim_size: int | None = None) -> Tensor:
    """Sum rows of ``value`` into ``out[index[i]] += value[i]`` (Figure 8).

    The per-edge ``value`` tensor is counted as a materialized
    intermediate — this is the memory-hungry sparse path.
    """
    value = _as_tensor(value)
    index = _check_index(index, value.shape[0])
    n = _dim_size(index, dim_size)
    _record_materialization(value.data.nbytes)
    out_data = np.zeros((n,) + value.shape[1:], dtype=value.data.dtype)
    np.add.at(out_data, index, value.data)
    # one add per scattered element
    record_op("scatter_add", flops=float(value.data.size),
              bytes_read=value.data.nbytes + index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        return (g[index],)

    return Tensor._make(out_data, (value,), backward)


def scatter_mean(value: Tensor, index: np.ndarray, dim_size: int | None = None) -> Tensor:
    """Average rows of ``value`` per destination index."""
    value = _as_tensor(value)
    index = _check_index(index, value.shape[0])
    n = _dim_size(index, dim_size)
    _record_materialization(value.data.nbytes)
    counts = np.bincount(index, minlength=n).astype(value.data.dtype)
    safe_counts = np.maximum(counts, 1.0)
    out_data = np.zeros((n,) + value.shape[1:], dtype=value.data.dtype)
    np.add.at(out_data, index, value.data)
    out_data /= safe_counts.reshape((-1,) + (1,) * (value.ndim - 1))
    # add + normalize: ~2 FLOPs per scattered element
    record_op("scatter_mean", flops=2.0 * value.data.size,
              bytes_read=value.data.nbytes + index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        scale = 1.0 / safe_counts[index]
        return (g[index] * scale.reshape((-1,) + (1,) * (value.ndim - 1)),)

    return Tensor._make(out_data, (value,), backward)


def _scatter_extremum(value: Tensor, index: np.ndarray, dim_size: int | None, kind: str) -> Tensor:
    value = _as_tensor(value)
    index = _check_index(index, value.shape[0])
    n = _dim_size(index, dim_size)
    _record_materialization(value.data.nbytes)
    fill = -np.inf if kind == "max" else np.inf
    out_data = np.full((n,) + value.shape[1:], fill, dtype=value.data.dtype)
    ufunc = np.maximum if kind == "max" else np.minimum
    ufunc.at(out_data, index, value.data)
    # Destinations with no sources get 0 (the conventional empty reduction).
    present = np.bincount(index, minlength=n) > 0
    out_data[~present] = 0.0
    # one comparison per scattered element
    record_op("scatter_" + kind, flops=float(value.data.size),
              bytes_read=value.data.nbytes + index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        # Route gradient only to the rows that achieved the extremum,
        # splitting ties equally.
        winner = (value.data == out_data[index]).astype(value.data.dtype)
        tie_counts = np.zeros((n,) + value.shape[1:], dtype=value.data.dtype)
        np.add.at(tie_counts, index, winner)
        tie_counts = np.maximum(tie_counts, 1.0)
        return (winner * g[index] / tie_counts[index],)

    return Tensor._make(out_data, (value,), backward)


def scatter_max(value: Tensor, index: np.ndarray, dim_size: int | None = None) -> Tensor:
    """Per-destination elementwise max."""
    return _scatter_extremum(value, index, dim_size, "max")


def scatter_min(value: Tensor, index: np.ndarray, dim_size: int | None = None) -> Tensor:
    """Per-destination elementwise min."""
    return _scatter_extremum(value, index, dim_size, "min")


def scatter_softmax(value: Tensor, index: np.ndarray, dim_size: int | None = None) -> Tensor:
    """Softmax over groups that share a destination index.

    Used by MAGNN's intra-metapath attention step (Figure 7 uses
    ``scatter_softmax`` as the level-2 UDF).
    """
    value = _as_tensor(value)
    index = _check_index(index, value.shape[0])
    n = _dim_size(index, dim_size)
    _record_materialization(value.data.nbytes)
    # Stabilize per group: subtract group max.
    group_max = np.full((n,) + value.shape[1:], -np.inf, dtype=value.data.dtype)
    np.maximum.at(group_max, index, value.data)
    shifted = value.data - group_max[index]
    e = np.exp(shifted)
    denom = np.zeros((n,) + value.shape[1:], dtype=value.data.dtype)
    np.add.at(denom, index, e)
    out_data = e / denom[index]
    # group max + shift + exp + sum + divide: ~5 FLOPs per element
    record_op("scatter_softmax", flops=5.0 * value.data.size,
              bytes_read=value.data.nbytes + index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        dot = np.zeros((n,) + value.shape[1:], dtype=value.data.dtype)
        np.add.at(dot, index, g * out_data)
        return (out_data * (g - dot[index]),)

    return Tensor._make(out_data, (value,), backward)


_SEGMENT_REDUCERS = frozenset({"sum", "mean", "max", "min"})


def segment_reduce_csr(
    value: Tensor,
    offsets: np.ndarray,
    sources: np.ndarray | None = None,
    reducer: str = "sum",
) -> Tensor:
    """Feature-fusion reduction over CSC segments (no per-edge tensors).

    Segment ``i`` covers rows ``sources[offsets[i]:offsets[i+1]]`` of
    ``value`` (or the identity range when ``sources`` is ``None``, i.e. the
    elided-Dst layout of Section 4.1).  The reduction streams source rows
    into per-destination accumulators, which is the Python analogue of
    libgrape-lite's SIMD vertex reduce: it never builds the
    ``(num_edges, dim)`` message tensor that :func:`scatter_add` needs.

    Parameters
    ----------
    value:
        ``(num_sources, dim)`` feature tensor.
    offsets:
        ``(num_segments + 1,)`` monotone offset array.
    sources:
        Optional per-edge source-row indices.  ``None`` means segment ``i``
        reduces the contiguous slice ``value[offsets[i]:offsets[i+1]]``.
    reducer:
        One of ``sum``, ``mean``, ``max``, ``min``.
    """
    if reducer not in _SEGMENT_REDUCERS:
        raise ValueError(f"unknown reducer {reducer!r}; expected one of {sorted(_SEGMENT_REDUCERS)}")
    value = _as_tensor(value)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a non-empty 1-D array")
    if offsets[0] != 0:
        # A nonzero first offset would silently build an invalid scipy
        # CSR indptr (rows before offsets[0] are dropped from segment 0).
        raise ValueError(f"offsets must start at 0, got offsets[0]={int(offsets[0])}")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    n = offsets.size - 1
    lengths = np.diff(offsets)
    total = int(offsets[-1])

    if sources is None:
        if total != value.shape[0]:
            raise ValueError(
                f"offsets cover {total} rows but value has {value.shape[0]}"
            )
        src_index = None
    else:
        src_index = np.asarray(sources, dtype=np.int64)
        if src_index.shape[0] != total:
            raise ValueError("sources length must equal offsets[-1]")

    out_shape = (n,) + value.shape[1:]
    if total == 0:
        out_data = np.zeros(out_shape, dtype=value.data.dtype)

        def backward_empty(g):
            return (np.zeros_like(value.data),)

        return Tensor._make(out_data, (value,), backward_empty)

    if reducer in ("sum", "mean"):
        # Fused reduction as one sparse-matrix / dense-matrix product: the
        # (offsets, sources) pair *is* the CSR of the reduction matrix, so
        # no per-edge tensor enters the tape — this is the analogue of the
        # SIMD vertex reduce the paper implements in libgrape-lite.
        num_rows = value.shape[0]
        indices = np.arange(total, dtype=np.int64) if src_index is None else src_index
        matrix = _sp.csr_matrix(
            (np.ones(total, dtype=value.data.dtype), indices, offsets),
            shape=(n, num_rows),
        )
        flat = value.data.reshape(num_rows, -1)
        out_flat = matrix @ flat
        if reducer == "mean":
            safe = np.maximum(lengths, 1).astype(value.data.dtype)
            out_flat = out_flat / safe[:, None]
        out_data = out_flat.reshape(out_shape)
        # SpMM convention: 2 FLOPs (multiply+add) per reduced element;
        # reads stream one source row per edge plus the CSR structure.
        dim = flat.shape[1]
        record_op(
            "segment_reduce." + reducer,
            flops=2.0 * total * dim + (out_flat.size if reducer == "mean" else 0),
            bytes_read=(total * dim * value.data.itemsize
                        + offsets.nbytes + indices.nbytes),
            bytes_written=out_data.nbytes,
        )

        def backward(g):
            g_flat = g.reshape(n, -1)
            if reducer == "mean":
                safe = np.maximum(lengths, 1).astype(value.data.dtype)
                g_flat = g_flat / safe[:, None]
            full = (matrix.T @ g_flat).reshape(value.shape)
            return (full,)

        return Tensor._make(out_data, (value,), backward)

    # max / min: elementwise extremum scatter over the segment index.
    rows = value.data if src_index is None else value.data[src_index]
    dst_of_edge = np.repeat(np.arange(n, dtype=np.int64), lengths)
    fill = -np.inf if reducer == "max" else np.inf
    out_data = np.full(out_shape, fill, dtype=value.data.dtype)
    ufunc = np.maximum if reducer == "max" else np.minimum
    ufunc.at(out_data, dst_of_edge, rows)
    out_data[lengths == 0] = 0.0
    # one comparison per reduced element
    record_op(
        "segment_reduce." + reducer,
        flops=float(rows.size),
        bytes_read=rows.nbytes + offsets.nbytes
        + (0 if src_index is None else src_index.nbytes),
        bytes_written=out_data.nbytes,
    )

    def backward(g):
        winner = (rows == out_data[dst_of_edge]).astype(value.data.dtype)
        ties = np.zeros(out_shape, dtype=value.data.dtype)
        np.add.at(ties, dst_of_edge, winner)
        ties = np.maximum(ties, 1.0)
        edge_grad = winner * g[dst_of_edge] / ties[dst_of_edge]
        if src_index is None:
            return (edge_grad,)
        full = np.zeros_like(value.data)
        np.add.at(full, src_index, edge_grad)
        return (full,)

    return Tensor._make(out_data, (value,), backward)
