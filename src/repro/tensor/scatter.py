"""Scatter and segment reductions — the sparse-NN op layer.

FlexGraph's hybrid execution (Section 4.2) distinguishes three ways to
aggregate neighbor features:

* **SA (sparse tensor ops)** — :func:`scatter_add` and friends, in the
  style of pytorch-scatter.  The caller gathers source features into a
  per-edge ``value`` tensor first, *materializing* one message per edge
  (Figure 8); this is the memory-explosion path the paper calls out.
* **FA (feature fusion)** — :func:`segment_reduce_csr`, which reduces
  directly over a CSC/CSR segment structure without per-edge
  materialization, modeling libgrape-lite's vertex-reduce.
* **Dense ops** — plain reshape + reduce, used at the schema-tree level.

All reductions run on a :class:`~repro.tensor.plans.ReductionPlan`: the
stable-sort permutation, segment offsets, SpMM matrix and its transpose
are precomputed once per topology and reused every call (pass ``plan=``
directly, or ``plan_key=`` to fetch from the global
:class:`~repro.tensor.plans.PlanCache`).  Without either, an ephemeral
plan is built per call — still vectorized (sum/mean are one SpMM,
max/min/softmax are sorted ``reduceat`` sweeps; no ``np.add.at`` /
``np.maximum.at`` on any path), just not amortized.

All reductions here are autograd-aware.  The ``scatter.materialized_bytes``
observability counter tracks both the running *total* and the *peak*
concurrently-live bytes of per-edge intermediates so memory-footprint
experiments can observe the SA-vs-FA difference quantitatively (see
:mod:`repro.obs`; training loops release the counter after backward so
``peak`` reflects the per-epoch high-water mark).
"""

from __future__ import annotations

import numpy as np

from ..obs import counter as _obs_counter
from ..obs.profile import record_op
from .plans import (
    ReductionPlan,
    accumulation_dtype,
    get_plan_cache,
    index_plan_key,
    segment_plan_key,
)
from .tensor import Tensor, _as_tensor

__all__ = [
    "scatter_add",
    "scatter_mean",
    "scatter_max",
    "scatter_min",
    "scatter_softmax",
    "segment_reduce_csr",
    "materialized_bytes",
    "peak_materialized_bytes",
    "reset_materialized_bytes",
    "release_materialized_bytes",
    "MATERIALIZED_BYTES_COUNTER",
]

#: Name of the obs counter fed by per-edge scatter intermediates.
MATERIALIZED_BYTES_COUNTER = "scatter.materialized_bytes"


def materialized_bytes() -> int:
    """Total bytes of per-edge message tensors materialized so far."""
    return int(_obs_counter(MATERIALIZED_BYTES_COUNTER).total)


def peak_materialized_bytes() -> int:
    """High-water mark of concurrently live per-edge bytes (Table 5's
    peak-memory accounting).  Equals :func:`materialized_bytes` unless a
    training loop releases intermediates after backward."""
    return int(_obs_counter(MATERIALIZED_BYTES_COUNTER).peak)


def reset_materialized_bytes() -> None:
    _obs_counter(MATERIALIZED_BYTES_COUNTER).reset()


def release_materialized_bytes(nbytes: int) -> None:
    """Mark ``nbytes`` of per-edge intermediates as freed (lowers the
    live value the peak tracks; the running total is unaffected)."""
    _obs_counter(MATERIALIZED_BYTES_COUNTER).release(nbytes)


def _record_materialization(nbytes: int) -> None:
    _obs_counter(MATERIALIZED_BYTES_COUNTER).add(int(nbytes))


def _check_index(index, length: int) -> np.ndarray:
    # Unwrap Tensor *before* np.asarray: asarray would build a 0-d object
    # array from a Tensor, so unwrapping afterwards never fired.
    if isinstance(index, Tensor):
        index = index.data
    index = np.asarray(index)
    index = index.astype(np.int64, copy=False)
    if index.ndim != 1:
        raise ValueError(f"scatter index must be 1-D, got shape {index.shape}")
    if index.shape[0] != length:
        raise ValueError(
            f"index length {index.shape[0]} does not match value rows {length}"
        )
    return index


def _dim_size(index: np.ndarray, dim_size: int | None) -> int:
    if dim_size is not None:
        return int(dim_size)
    return int(index.max()) + 1 if index.size else 0


def _resolve_index_plan(value: Tensor, index, dim_size: int | None,
                        plan: ReductionPlan | None, plan_key,
                        op: str) -> ReductionPlan:
    """Pick the plan for a scatter call: explicit ``plan``, cached via
    ``plan_key``, or an ephemeral one built from ``index``."""
    if plan is not None:
        if plan.kind != "index":
            raise ValueError(
                f"{op} requires an index-kind plan, got {plan.kind!r}"
            )
        if plan.num_rows != value.shape[0]:
            raise ValueError(
                f"plan covers {plan.num_rows} rows but value has "
                f"{value.shape[0]}"
            )
        if dim_size is not None and int(dim_size) != plan.n:
            raise ValueError(
                f"dim_size {int(dim_size)} does not match plan dim {plan.n}"
            )
        return plan
    if index is None:
        raise ValueError(f"{op} needs an index when no plan is given")
    index = _check_index(index, value.shape[0])
    n = _dim_size(index, dim_size)
    if plan_key is not None:
        return get_plan_cache().get_or_build(
            index_plan_key(plan_key, index.size, n),
            lambda: ReductionPlan.from_index(index, n),
        )
    return ReductionPlan.from_index(index, n)


def scatter_add(value: Tensor, index: np.ndarray | None = None,
                dim_size: int | None = None, *,
                plan: ReductionPlan | None = None,
                plan_key=None) -> Tensor:
    """Sum rows of ``value`` into ``out[index[i]] += value[i]`` (Figure 8).

    The per-edge ``value`` tensor is counted as a materialized
    intermediate — this is the memory-hungry sparse path.  The reduction
    itself is one SpMM against the plan's CSR matrix.
    """
    value = _as_tensor(value)
    plan = _resolve_index_plan(value, index, dim_size, plan, plan_key,
                               "scatter_add")
    n = plan.n
    dtype = value.data.dtype
    acc = accumulation_dtype(dtype)
    _record_materialization(value.data.nbytes)
    if plan.total == 0:
        out_data = np.zeros((n,) + value.shape[1:], dtype=dtype)
    else:
        flat = value.data.reshape(plan.num_rows, -1).astype(acc, copy=False)
        out_data = (plan.matrix(acc) @ flat).astype(dtype, copy=False).reshape(
            (n,) + value.shape[1:]
        )
    # one add per scattered element
    record_op("scatter_add", flops=float(value.data.size),
              bytes_read=value.data.nbytes + plan.index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        return (g[plan.index],)

    return Tensor._make(out_data, (value,), backward)


def scatter_mean(value: Tensor, index: np.ndarray | None = None,
                 dim_size: int | None = None, *,
                 plan: ReductionPlan | None = None,
                 plan_key=None) -> Tensor:
    """Average rows of ``value`` per destination index."""
    value = _as_tensor(value)
    plan = _resolve_index_plan(value, index, dim_size, plan, plan_key,
                               "scatter_mean")
    n = plan.n
    dtype = value.data.dtype
    acc = accumulation_dtype(dtype)
    _record_materialization(value.data.nbytes)
    if plan.total == 0:
        out_data = np.zeros((n,) + value.shape[1:], dtype=dtype)
    else:
        flat = value.data.reshape(plan.num_rows, -1).astype(acc, copy=False)
        out_flat = plan.matrix(acc) @ flat
        # Divisor stays in the accumulator dtype: the value dtype for
        # float32/float64 models, float32 for fp16 inputs.
        out_flat /= plan.safe_counts(acc)[:, None]
        out_data = out_flat.astype(dtype, copy=False).reshape((n,) + value.shape[1:])
    # add + normalize: ~2 FLOPs per scattered element
    record_op("scatter_mean", flops=2.0 * value.data.size,
              bytes_read=value.data.nbytes + plan.index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        scale = plan.inv_counts(acc)[plan.index]
        grad = g[plan.index].astype(acc, copy=False) * scale.reshape(
            (-1,) + (1,) * (value.ndim - 1)
        )
        return (grad.astype(dtype, copy=False),)

    return Tensor._make(out_data, (value,), backward)


def _scatter_extremum(value: Tensor, index, dim_size: int | None, kind: str,
                      plan: ReductionPlan | None,
                      plan_key) -> Tensor:
    value = _as_tensor(value)
    plan = _resolve_index_plan(value, index, dim_size, plan, plan_key,
                               "scatter_" + kind)
    n = plan.n
    dtype = value.data.dtype
    _record_materialization(value.data.nbytes)
    ufunc = np.maximum if kind == "max" else np.minimum
    # Destinations with no sources get 0 (the conventional empty reduction);
    # nonempty segments are one sorted reduceat sweep.
    out_data = np.zeros((n,) + value.shape[1:], dtype=dtype)
    if plan.total:
        out_data[plan.nonempty] = ufunc.reduceat(
            value.data[plan.gather], plan.starts, axis=0
        )
    # one comparison per scattered element
    record_op("scatter_" + kind, flops=float(value.data.size),
              bytes_read=value.data.nbytes + plan.index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        # Route gradient only to the rows that achieved the extremum,
        # splitting ties equally.
        idx = plan.index
        winner = (value.data == out_data[idx]).astype(dtype)
        ties = np.ones((n,) + value.shape[1:], dtype=dtype)
        if plan.total:
            ties[plan.nonempty] = np.maximum(
                np.add.reduceat(winner[plan.gather], plan.starts, axis=0),
                1.0,
            )
        return (winner * g[idx] / ties[idx],)

    return Tensor._make(out_data, (value,), backward)


def scatter_max(value: Tensor, index: np.ndarray | None = None,
                dim_size: int | None = None, *,
                plan: ReductionPlan | None = None,
                plan_key=None) -> Tensor:
    """Per-destination elementwise max."""
    return _scatter_extremum(value, index, dim_size, "max", plan, plan_key)


def scatter_min(value: Tensor, index: np.ndarray | None = None,
                dim_size: int | None = None, *,
                plan: ReductionPlan | None = None,
                plan_key=None) -> Tensor:
    """Per-destination elementwise min."""
    return _scatter_extremum(value, index, dim_size, "min", plan, plan_key)


def scatter_softmax(value: Tensor, index: np.ndarray | None = None,
                    dim_size: int | None = None, *,
                    plan: ReductionPlan | None = None,
                    plan_key=None) -> Tensor:
    """Softmax over groups that share a destination index.

    Used by MAGNN's intra-metapath attention step (Figure 7 uses
    ``scatter_softmax`` as the level-2 UDF).
    """
    value = _as_tensor(value)
    plan = _resolve_index_plan(value, index, dim_size, plan, plan_key,
                               "scatter_softmax")
    dtype = value.data.dtype
    acc = accumulation_dtype(dtype)
    _record_materialization(value.data.nbytes)
    if plan.total == 0:
        out_data = np.zeros_like(value.data)
        reps = None
    else:
        order = plan.gather
        reps = plan.counts[plan.nonempty]
        # exp/sum run in the accumulator dtype (fp32 for fp16 inputs);
        # only the normalized result is narrowed back.
        sv = value.data[order].astype(acc, copy=False)
        # Stabilize per group: subtract group max (sorted-domain sweep).
        shifted = sv - np.repeat(
            np.maximum.reduceat(sv, plan.starts, axis=0), reps, axis=0
        )
        e = np.exp(shifted)
        denom = np.add.reduceat(e, plan.starts, axis=0)
        out_sorted = e / np.repeat(denom, reps, axis=0)
        out_data = np.empty_like(value.data)
        out_data[order] = out_sorted
    # group max + shift + exp + sum + divide: ~5 FLOPs per element
    record_op("scatter_softmax", flops=5.0 * value.data.size,
              bytes_read=value.data.nbytes + plan.index.nbytes,
              bytes_written=out_data.nbytes)

    def backward(g):
        if plan.total == 0:
            return (np.zeros_like(value.data),)
        gs = (g.astype(acc, copy=False) * out_data.astype(acc, copy=False))[plan.gather]
        dot = np.repeat(
            np.add.reduceat(gs, plan.starts, axis=0), reps, axis=0
        )
        dot_rows = np.empty(value.shape, dtype=acc)
        dot_rows[plan.gather] = dot
        grad = out_data.astype(acc, copy=False) * (g.astype(acc, copy=False) - dot_rows)
        return (grad.astype(dtype, copy=False),)

    return Tensor._make(out_data, (value,), backward)


_SEGMENT_REDUCERS = frozenset({"sum", "mean", "max", "min"})


def _resolve_segment_plan(value: Tensor, offsets, sources,
                          plan: ReductionPlan | None,
                          plan_key) -> ReductionPlan:
    if plan is not None:
        if plan.kind != "segments":
            raise ValueError(
                f"segment_reduce_csr requires a segments-kind plan, "
                f"got {plan.kind!r}"
            )
        if plan.num_rows != value.shape[0]:
            raise ValueError(
                f"plan covers {plan.num_rows} rows but value has "
                f"{value.shape[0]}"
            )
        return plan
    if offsets is None:
        raise ValueError(
            "segment_reduce_csr needs offsets when no plan is given"
        )
    if plan_key is None:
        return ReductionPlan.from_segments(offsets, sources, value.shape[0])
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a non-empty 1-D array")
    key = segment_plan_key(plan_key, offsets.size - 1, int(offsets[-1]),
                           value.shape[0], sources is None)
    return get_plan_cache().get_or_build(
        key,
        lambda: ReductionPlan.from_segments(offsets, sources, value.shape[0]),
    )


def segment_reduce_csr(
    value: Tensor,
    offsets: np.ndarray | None = None,
    sources: np.ndarray | None = None,
    reducer: str = "sum",
    *,
    plan: ReductionPlan | None = None,
    plan_key=None,
) -> Tensor:
    """Feature-fusion reduction over CSC segments (no per-edge tensors).

    Segment ``i`` covers rows ``sources[offsets[i]:offsets[i+1]]`` of
    ``value`` (or the identity range when ``sources`` is ``None``, i.e. the
    elided-Dst layout of Section 4.1).  The reduction streams source rows
    into per-destination accumulators, which is the Python analogue of
    libgrape-lite's SIMD vertex reduce: it never builds the
    ``(num_edges, dim)`` message tensor that :func:`scatter_add` needs.

    Parameters
    ----------
    value:
        ``(num_sources, dim)`` feature tensor.
    offsets:
        ``(num_segments + 1,)`` monotone offset array.  May be omitted
        when ``plan`` is given.
    sources:
        Optional per-edge source-row indices.  ``None`` means segment ``i``
        reduces the contiguous slice ``value[offsets[i]:offsets[i+1]]``.
    reducer:
        One of ``sum``, ``mean``, ``max``, ``min``.
    plan / plan_key:
        Explicit :class:`~repro.tensor.plans.ReductionPlan`, or a cache
        key base (e.g. ``(hdg.fingerprint(), level)``) to fetch/build one
        in the global plan cache.
    """
    if reducer not in _SEGMENT_REDUCERS:
        raise ValueError(f"unknown reducer {reducer!r}; expected one of {sorted(_SEGMENT_REDUCERS)}")
    value = _as_tensor(value)
    plan = _resolve_segment_plan(value, offsets, sources, plan, plan_key)
    n = plan.n
    total = plan.total
    dtype = value.data.dtype
    out_shape = (n,) + value.shape[1:]
    if total == 0:
        out_data = np.zeros(out_shape, dtype=dtype)

        def backward_empty(g):
            return (np.zeros_like(value.data),)

        return Tensor._make(out_data, (value,), backward_empty)

    acc = accumulation_dtype(dtype)
    if reducer in ("sum", "mean"):
        # Fused reduction as one sparse-matrix / dense-matrix product: the
        # (offsets, sources) pair *is* the CSR of the reduction matrix, so
        # no per-edge tensor enters the tape — this is the analogue of the
        # SIMD vertex reduce the paper implements in libgrape-lite.
        matrix = plan.matrix(acc)
        flat = value.data.reshape(plan.num_rows, -1).astype(acc, copy=False)
        out_flat = matrix @ flat
        if reducer == "mean":
            out_flat = out_flat / plan.safe_counts(acc)[:, None]
        out_data = out_flat.astype(dtype, copy=False).reshape(out_shape)
        # SpMM convention: 2 FLOPs (multiply+add) per reduced element;
        # reads stream one source row per edge plus the CSR structure.
        dim = flat.shape[1]
        record_op(
            "segment_reduce." + reducer,
            flops=2.0 * total * dim + (out_flat.size if reducer == "mean" else 0),
            bytes_read=(total * dim * value.data.itemsize
                        + plan.offsets.nbytes + total * 8),
            bytes_written=out_data.nbytes,
        )
        # Transpose prebuilt at forward time (CSC of the forward matrix,
        # stored as CSR) so backward never converts per call.
        matrix_t = plan.matrix_t(acc)

        def backward(g):
            g_flat = g.reshape(n, -1).astype(acc, copy=False)
            if reducer == "mean":
                g_flat = g_flat / plan.safe_counts(acc)[:, None]
            return ((matrix_t @ g_flat).astype(dtype, copy=False).reshape(value.shape),)

        return Tensor._make(out_data, (value,), backward)

    # max / min: sorted segmented extremum over the plan's segment starts.
    rows = value.data if plan.gather is None else value.data[plan.gather]
    ufunc = np.maximum if reducer == "max" else np.minimum
    out_data = np.zeros(out_shape, dtype=dtype)
    out_data[plan.nonempty] = ufunc.reduceat(rows, plan.starts, axis=0)
    # one comparison per reduced element
    record_op(
        "segment_reduce." + reducer,
        flops=float(rows.size),
        bytes_read=rows.nbytes + plan.offsets.nbytes
        + (0 if plan.gather is None else plan.gather.nbytes),
        bytes_written=out_data.nbytes,
    )

    def backward(g):
        dst = plan.index
        winner = (rows == out_data[dst]).astype(dtype)
        ties = np.ones(out_shape, dtype=dtype)
        ties[plan.nonempty] = np.maximum(
            np.add.reduceat(winner, plan.starts, axis=0), 1.0
        )
        edge_grad = winner * g[dst] / ties[dst]
        if plan.gather is None:
            return (edge_grad,)
        source_plan = plan.source_plan()
        full = (source_plan.matrix(dtype) @ edge_grad.reshape(total, -1))
        return (full.reshape(value.shape),)

    return Tensor._make(out_data, (value,), backward)
