"""Log-bucketed histograms with percentile readout.

Point totals (a counter's sum, a span's mean) hide exactly the facts
that drive GNN-system optimization: the *distribution* of per-stage and
per-worker time — tail latency, skew, stragglers.  :class:`Histogram`
records observations into exponentially sized buckets so that a full
training run costs O(buckets) memory while p50/p90/p99 stay readable to
within one bucket's relative error.

Buckets are geometric: observation ``v`` falls into the first bucket
whose upper bound ``base * growth**i`` is ``>= v``.  The default growth
of ``10 ** 0.1`` gives ten buckets per decade (±12% relative error on a
reported percentile), and the default base of ``1e-9`` resolves
nanosecond latencies.  Non-positive observations land in a dedicated
underflow bucket (reported as ``<= base``).

The registry derives one latency histogram per span *name*
automatically (``span.<name>``), so percentile readouts over, say,
``dist.compute`` need no extra instrumentation at the call site.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Histogram"]

#: ten buckets per decade — percentiles are exact to within ~12%.
DEFAULT_GROWTH = 10.0 ** 0.1
DEFAULT_BASE = 1e-9


class Histogram:
    """Exponentially bucketed distribution of non-negative observations."""

    __slots__ = ("name", "base", "growth", "_log_growth", "count", "sum",
                 "min", "max", "buckets", "underflow")

    def __init__(self, name: str, base: float = DEFAULT_BASE,
                 growth: float = DEFAULT_GROWTH):
        if base <= 0:
            raise ValueError("base must be positive")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self.name = name
        self.base = float(base)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket index -> observation count; index i covers
        #: (base * growth**(i-1), base * growth**i]
        self.buckets: dict[int, int] = {}
        self.underflow = 0   # observations <= base (incl. zero/negative)

    # ------------------------------------------------------------------
    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        value = float(value)
        count = int(count)
        if count <= 0:
            return
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.base:
            self.underflow += count
            return
        idx = int(math.ceil(math.log(value / self.base) / self._log_growth))
        self.buckets[idx] = self.buckets.get(idx, 0) + count

    def observe_many(self, values) -> None:
        """Vectorized :meth:`observe` over an array of values."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.count += int(values.size)
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))
        small = values <= self.base
        self.underflow += int(small.sum())
        big = values[~small]
        if big.size:
            idx = np.ceil(np.log(big / self.base) / self._log_growth)
            uniq, counts = np.unique(idx.astype(np.int64), return_counts=True)
            for i, c in zip(uniq.tolist(), counts.tolist()):
                self.buckets[i] = self.buckets.get(i, 0) + int(c)

    def merge_dict(self, data: dict) -> None:
        """Fold another histogram's :meth:`to_dict` export into this one.

        Exported buckets are non-cumulative ``[upper_bound, count]``
        pairs; a bound at or below ``base`` is the underflow bucket, any
        other bound maps back to its geometric index exactly (the bound
        *is* ``base * growth**i``), so merging two same-shaped
        histograms is lossless.  count/sum/min/max combine directly.
        """
        count = int(data.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.sum += float(data.get("sum", 0.0))
        other_min = data.get("min")
        if other_min is not None and float(other_min) < self.min:
            self.min = float(other_min)
        other_max = data.get("max")
        if other_max is not None and float(other_max) > self.max:
            self.max = float(other_max)
        for bound, n in data.get("buckets", ()):
            n = int(n)
            if bound <= self.base:
                self.underflow += n
            else:
                idx = int(round(
                    math.log(bound / self.base) / self._log_growth
                ))
                self.buckets[idx] = self.buckets.get(idx, 0) + n

    # ------------------------------------------------------------------
    def bucket_bounds(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_bound, count)`` pairs, underflow first."""
        out: list[tuple[float, int]] = []
        if self.underflow:
            out.append((self.base, self.underflow))
        for idx in sorted(self.buckets):
            out.append((self.base * self.growth ** idx, self.buckets[idx]))
        return out

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100), exact to one bucket bound.

        Returns the upper bound of the bucket holding the q-th
        observation, clamped into ``[min, max]`` so reported percentiles
        never exceed anything actually observed.  Empty histograms
        report 0.0.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cum = 0
        for bound, count in self.bucket_bounds():
            cum += count
            if cum >= target:
                return min(max(bound, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets.clear()
        self.underflow = 0

    def to_dict(self) -> dict:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            # non-cumulative (upper_bound, count) pairs; Prometheus export
            # re-cumulates these into le-labelled buckets
            "buckets": [[bound, count] for bound, count in self.bucket_bounds()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"p50={self.p50:.3g}, p99={self.p99:.3g})")
