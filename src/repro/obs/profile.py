"""Op-level work accounting: FLOPs and bytes, attributed to spans.

The time-only tracer (spans, histograms) answers *how long* a stage
took; this module answers *how much work* it did.  Every instrumented
numerical op — matmul in the autograd tensor, the scatter reductions,
``segment_reduce_csr``, softmax, the hybrid executor's gather and dense
reduce — calls :func:`record_op` with its FLOP count and the bytes it
read and wrote.  The work is accumulated three ways at once:

1. **Global counters** — ``profile.flops`` / ``profile.bytes_read`` /
   ``profile.bytes_written`` plus two per-op counters
   (``profile.op.<op>.flops``, ``profile.op.<op>.bytes``), so totals
   survive the span-record cap and export through every existing
   exporter for free.
2. **Inclusive span attribution** — the work is added to *every* span
   currently open on the registry stack, so a matmul executed inside
   ``stage.update`` inside ``engine.train_epoch`` shows up on both.
   When a work-carrying span closes, the registry stamps its
   ``arithmetic_intensity`` (FLOPs per byte moved) into its attrs.
3. **Reports** — :func:`profile_report` aggregates per-op and per-span
   totals into a roofline-style JSON document;
   :func:`render_profile_report` pretty-prints it.

FLOP conventions (documented per-op in ``docs/observability.md``):
a matmul ``(n,k) @ (k,m)`` costs ``2*n*k*m`` FLOPs (multiply + add);
``scatter_add`` 1 FLOP per scattered element, ``scatter_mean`` 2,
``scatter_max``/``min`` 1 comparison, ``scatter_softmax`` ~5;
``segment_reduce_csr`` sum/mean ``2 * total * dim`` (the SpMM
convention); softmax/log-softmax ~5 FLOPs per element; pure data
movement (gather, concat) is 0 FLOPs but nonzero bytes.  Bytes are the
logical tensor traffic (operand ``nbytes`` read, result ``nbytes``
written), not cache-aware — arithmetic intensity derived from them is
an upper bound on the true intensity, which is the standard roofline
convention for first-order analysis.

Profiling is on by default (the cost per op is two dict lookups and a
few float adds); :func:`disable_profiling` turns it into a no-op for
overhead-sensitive measurements.
"""

from __future__ import annotations

import json

from .registry import Registry, get_registry

__all__ = [
    "FLOPS_COUNTER",
    "BYTES_READ_COUNTER",
    "BYTES_WRITTEN_COUNTER",
    "OP_COUNTER_PREFIX",
    "WORK_RATE_SPANS",
    "record_op",
    "profiling_enabled",
    "enable_profiling",
    "disable_profiling",
    "work_snapshot",
    "work_since",
    "span_work",
    "peak_work_rates",
    "profile_report",
    "render_profile_report",
    "export_profile",
]

#: global running totals (Counter.total is the figure of record)
FLOPS_COUNTER = "profile.flops"
BYTES_READ_COUNTER = "profile.bytes_read"
BYTES_WRITTEN_COUNTER = "profile.bytes_written"
#: per-op counters live under ``profile.op.<op>.flops`` / ``.bytes``
OP_COUNTER_PREFIX = "profile.op."

#: Span names whose FLOP/s and bytes/s are rendered as Chrome-trace
#: counter tracks and searched for peak achieved rates.  These spans
#: never nest within each other, so one counter track per process lane
#: stays consistent.  (Hardcoded here — importing the stage names from
#: ``core.engine`` would invert the layering.)
WORK_RATE_SPANS = (
    "stage.neighbor_selection",
    "stage.aggregation",
    "stage.update",
    "stage.backward",
    "dist.compute",
)

_ENABLED = True


def profiling_enabled() -> bool:
    """Whether :func:`record_op` currently records anything."""
    return _ENABLED


def enable_profiling() -> None:
    """Resume op-level work accounting (the default state)."""
    global _ENABLED
    _ENABLED = True


def disable_profiling() -> None:
    """Make :func:`record_op` a no-op (overhead-sensitive timing)."""
    global _ENABLED
    _ENABLED = False


# record_op runs on every tensor op, so its counter handles are memoized
# per (registry identity, registry generation): _COUNTER_CACHE holds the
# three global counters, _OP_COUNTER_CACHE one (flops, bytes) tuple per
# op name (the string concatenation happens once per op, not per call).
# Registry.reset() recreates Counter objects, so the generation stamp —
# bumped by _init_state — invalidates both caches.
_COUNTER_CACHE: tuple | None = None
_OP_COUNTER_CACHE: dict[str, tuple] = {}


def _cached_counters(reg: Registry, op: str) -> tuple:
    global _COUNTER_CACHE
    cache = _COUNTER_CACHE
    if (cache is None or cache[0] is not reg
            or cache[1] != reg.generation):
        cache = _COUNTER_CACHE = (
            reg, reg.generation,
            reg.counter(FLOPS_COUNTER),
            reg.counter(BYTES_READ_COUNTER),
            reg.counter(BYTES_WRITTEN_COUNTER),
        )
        _OP_COUNTER_CACHE.clear()
    handles = _OP_COUNTER_CACHE.get(op)
    if handles is None:
        handles = _OP_COUNTER_CACHE[op] = (
            reg.counter(OP_COUNTER_PREFIX + op + ".flops"),
            reg.counter(OP_COUNTER_PREFIX + op + ".bytes"),
        )
    return cache[2], cache[3], cache[4], handles[0], handles[1]


def record_op(op: str, *, flops: float = 0.0, bytes_read: float = 0.0,
              bytes_written: float = 0.0) -> None:
    """Account one executed op: global + per-op counters, and inclusive
    attribution to every currently open span."""
    if not _ENABLED:
        return
    reg = get_registry()
    flops = float(flops)
    bytes_read = float(bytes_read)
    bytes_written = float(bytes_written)
    flops_c, read_c, written_c, op_flops_c, op_bytes_c = (
        _cached_counters(reg, op)
    )
    flops_c.add(flops)
    read_c.add(bytes_read)
    written_c.add(bytes_written)
    op_flops_c.add(flops)
    op_bytes_c.add(bytes_read + bytes_written)
    for record in reg._stack:
        attrs = record.attrs
        attrs["flops"] = attrs.get("flops", 0.0) + flops
        attrs["bytes_read"] = attrs.get("bytes_read", 0.0) + bytes_read
        attrs["bytes_written"] = (
            attrs.get("bytes_written", 0.0) + bytes_written
        )


# ----------------------------------------------------------------------
# snapshots / deltas
# ----------------------------------------------------------------------
def work_snapshot(registry: Registry | None = None) -> dict:
    """Current global work totals, for later differencing."""
    reg = registry if registry is not None else get_registry()
    return {
        "flops": reg.counter(FLOPS_COUNTER).total,
        "bytes_read": reg.counter(BYTES_READ_COUNTER).total,
        "bytes_written": reg.counter(BYTES_WRITTEN_COUNTER).total,
    }


def work_since(snapshot: dict, registry: Registry | None = None) -> dict:
    """Work performed since ``snapshot`` (:func:`work_snapshot`)."""
    now = work_snapshot(registry)
    return {key: now[key] - snapshot.get(key, 0.0) for key in now}


# ----------------------------------------------------------------------
# aggregation helpers
# ----------------------------------------------------------------------
def _span_fields(span) -> tuple[str, float, dict]:
    """(name, duration, attrs) from a SpanRecord or an exported dict."""
    if isinstance(span, dict):
        return (span.get("name", ""), float(span.get("duration", 0.0)),
                span.get("attrs", {}) or {})
    return span.name, span.duration, span.attrs


def span_work(spans=None, registry: Registry | None = None) -> dict:
    """Aggregate inclusive work per span *name*.

    Accepts live :class:`SpanRecord` objects or the ``"spans"`` list of
    an exported trace; defaults to the global registry.  Only spans that
    carried work attribution appear.  Attribution is inclusive (a parent
    sees its children's work), so rows are per-name views, not a
    partition — do not sum across nesting levels.
    """
    if spans is None:
        reg = registry if registry is not None else get_registry()
        spans = reg.spans
    rows: dict[str, dict] = {}
    for span in spans:
        name, duration, attrs = _span_fields(span)
        if "flops" not in attrs and "bytes_read" not in attrs:
            continue
        row = rows.get(name)
        if row is None:
            row = rows[name] = {
                "count": 0, "seconds": 0.0, "flops": 0.0,
                "bytes_read": 0.0, "bytes_written": 0.0,
            }
        row["count"] += 1
        row["seconds"] += duration
        row["flops"] += attrs.get("flops", 0.0)
        row["bytes_read"] += attrs.get("bytes_read", 0.0)
        row["bytes_written"] += attrs.get("bytes_written", 0.0)
    for row in rows.values():
        moved = row["bytes_read"] + row["bytes_written"]
        row["bytes"] = moved
        row["arithmetic_intensity"] = (
            row["flops"] / moved if moved > 0 else 0.0
        )
        seconds = row["seconds"]
        row["flops_per_sec"] = row["flops"] / seconds if seconds > 0 else 0.0
        row["bytes_per_sec"] = moved / seconds if seconds > 0 else 0.0
    return rows


def peak_work_rates(spans=None, registry: Registry | None = None,
                    span_names=WORK_RATE_SPANS) -> dict:
    """Peak achieved FLOP/s and bytes/s over individual work spans.

    Scans each span in ``span_names`` separately (not the per-name
    aggregate), so the reported peak is the best *single interval*,
    which is what a roofline plots.
    """
    if spans is None:
        reg = registry if registry is not None else get_registry()
        spans = reg.spans
    names = set(span_names)
    peak_flops = 0.0
    peak_bytes = 0.0
    for span in spans:
        name, duration, attrs = _span_fields(span)
        if name not in names or duration <= 0:
            continue
        flops = attrs.get("flops", 0.0)
        moved = attrs.get("bytes_read", 0.0) + attrs.get("bytes_written", 0.0)
        peak_flops = max(peak_flops, flops / duration)
        peak_bytes = max(peak_bytes, moved / duration)
    return {"peak_flops_per_sec": peak_flops,
            "peak_bytes_per_sec": peak_bytes}


def _op_rows(registry: Registry) -> dict:
    """Per-op totals reconstructed from the ``profile.op.*`` counters."""
    ops: dict[str, dict] = {}
    suffix_flops = ".flops"
    suffix_bytes = ".bytes"
    for name, counter in registry.counters.items():
        if not name.startswith(OP_COUNTER_PREFIX):
            continue
        rest = name[len(OP_COUNTER_PREFIX):]
        if rest.endswith(suffix_flops):
            op, key = rest[: -len(suffix_flops)], "flops"
        elif rest.endswith(suffix_bytes):
            op, key = rest[: -len(suffix_bytes)], "bytes"
        else:
            continue
        row = ops.setdefault(op, {"calls": 0, "flops": 0.0, "bytes": 0.0})
        row[key] = counter.total
        row["calls"] = max(row["calls"], counter.count)
    for row in ops.values():
        row["arithmetic_intensity"] = (
            row["flops"] / row["bytes"] if row["bytes"] > 0 else 0.0
        )
    return ops


def _backend_rows(registry: Registry) -> list[dict]:
    """Measured-cost rows from ``aggregation.backend`` events (the
    hybrid executor emits one per level per call, carrying the work
    and seconds measured around the backend invocation)."""
    from .analysis import backend_report  # local import: analysis is a peer
    return backend_report(registry.events)["rows"]


def profile_report(registry: Registry | None = None, *,
                   peak_flops_per_sec: float | None = None,
                   peak_bytes_per_sec: float | None = None) -> dict:
    """Roofline-style work report over the current registry.

    ``peak_flops_per_sec`` / ``peak_bytes_per_sec`` are optional
    *hardware* peaks; when given, each span row is classified as
    compute- or memory-bound against the machine balance and annotated
    with its percentage of the attainable roof.
    """
    reg = registry if registry is not None else get_registry()
    flops = reg.counter(FLOPS_COUNTER).total
    bytes_read = reg.counter(BYTES_READ_COUNTER).total
    bytes_written = reg.counter(BYTES_WRITTEN_COUNTER).total
    moved = bytes_read + bytes_written
    report = {
        "schema": "repro.profile/1",
        "totals": {
            "flops": flops,
            "bytes_read": bytes_read,
            "bytes_written": bytes_written,
            "bytes": moved,
            "arithmetic_intensity": flops / moved if moved > 0 else 0.0,
        },
        "ops": dict(sorted(_op_rows(reg).items(),
                           key=lambda kv: -kv[1]["flops"])),
        "spans": span_work(registry=reg),
        "backends": _backend_rows(reg),
        "roofline": peak_work_rates(registry=reg),
    }
    if peak_flops_per_sec is not None and peak_bytes_per_sec is not None:
        machine_balance = peak_flops_per_sec / peak_bytes_per_sec
        report["roofline"]["hardware"] = {
            "peak_flops_per_sec": peak_flops_per_sec,
            "peak_bytes_per_sec": peak_bytes_per_sec,
            "machine_balance": machine_balance,
        }
        for row in report["spans"].values():
            intensity = row["arithmetic_intensity"]
            row["bound"] = (
                "compute" if intensity >= machine_balance else "memory"
            )
            roof = min(peak_flops_per_sec, intensity * peak_bytes_per_sec)
            row["pct_of_roof"] = (
                100.0 * row["flops_per_sec"] / roof if roof > 0 else 0.0
            )
    return report


# ----------------------------------------------------------------------
# rendering / export
# ----------------------------------------------------------------------
def _fmt_quantity(value: float, unit: str) -> str:
    for scale, prefix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {prefix}{unit}"
    return f"{value:.0f} {unit}"


def render_profile_report(report: dict | None = None) -> str:
    """Human-readable rendering of :func:`profile_report`."""
    if report is None:
        report = profile_report()
    lines = ["work profile:"]
    totals = report["totals"]
    lines.append(
        "  totals: {} | {} read, {} written | intensity {:.3f} FLOP/B".format(
            _fmt_quantity(totals["flops"], "FLOP"),
            _fmt_quantity(totals["bytes_read"], "B"),
            _fmt_quantity(totals["bytes_written"], "B"),
            totals["arithmetic_intensity"],
        )
    )
    roof = report.get("roofline", {})
    if roof:
        lines.append(
            "  achieved peaks: {}/s | {}/s".format(
                _fmt_quantity(roof.get("peak_flops_per_sec", 0.0), "FLOP"),
                _fmt_quantity(roof.get("peak_bytes_per_sec", 0.0), "B"),
            )
        )
        hw = roof.get("hardware")
        if hw:
            lines.append(
                "  hardware roof: {}/s, {}/s "
                "(machine balance {:.2f} FLOP/B)".format(
                    _fmt_quantity(hw["peak_flops_per_sec"], "FLOP"),
                    _fmt_quantity(hw["peak_bytes_per_sec"], "B"),
                    hw["machine_balance"],
                )
            )
    ops = report.get("ops", {})
    if ops:
        lines.append("  ops (by FLOPs):")
        lines.append("    {:<24} {:>8} {:>12} {:>12} {:>10}".format(
            "op", "calls", "flops", "bytes", "intensity"))
        for op, row in ops.items():
            lines.append(
                "    {:<24} {:>8d} {:>12} {:>12} {:>10.3f}".format(
                    op, row["calls"],
                    _fmt_quantity(row["flops"], ""),
                    _fmt_quantity(row["bytes"], ""),
                    row["arithmetic_intensity"],
                )
            )
    spans = report.get("spans", {})
    if spans:
        lines.append("  spans (inclusive work by name):")
        lines.append(
            "    {:<28} {:>6} {:>10} {:>10} {:>10} {:>9} {:>11}{}".format(
                "span", "count", "seconds", "flops", "bytes",
                "intensity", "flops/s",
                "  bound" if any("bound" in r for r in spans.values()) else "",
            )
        )
        ordered = sorted(spans.items(), key=lambda kv: -kv[1]["flops"])
        for name, row in ordered:
            extra = ""
            if "bound" in row:
                extra = "  {} ({:.0f}% roof)".format(
                    row["bound"], row["pct_of_roof"])
            lines.append(
                "    {:<28} {:>6d} {:>9.4f}s {:>10} {:>10} "
                "{:>9.3f} {:>11}{}".format(
                    name, row["count"], row["seconds"],
                    _fmt_quantity(row["flops"], ""),
                    _fmt_quantity(row["bytes"], ""),
                    row["arithmetic_intensity"],
                    _fmt_quantity(row["flops_per_sec"], ""),
                    extra,
                )
            )
    backends = report.get("backends", [])
    if backends:
        from .analysis import render_backend_report
        lines.append(render_backend_report(backends))
    return "\n".join(lines)


def export_profile(path: str, registry: Registry | None = None, **kwargs) -> dict:
    """Write :func:`profile_report` as JSON to ``path``; returns it."""
    report = profile_report(registry, **kwargs)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return report
