"""Per-epoch scalar time-series (:class:`EpochLog`).

Histograms answer "how is a quantity distributed?"; an :class:`EpochLog`
answers "how does it evolve over training?".  Each call to :meth:`log`
appends one row of named scalars for one epoch — loss, simulated
seconds, traffic, balance factor, throughput — and :meth:`series` reads
any column back as a list, so convergence and perf regressions are one
comparison away.

The trainer and the single-machine engine feed the registry's default
``train`` log automatically; callers may keep additional named logs
(e.g. one per ablation arm) via ``obs.epoch_log("arm-a")``.
"""

from __future__ import annotations

__all__ = ["EpochLog"]


class EpochLog:
    """Append-only per-epoch rows of named scalars."""

    __slots__ = ("name", "rows")

    def __init__(self, name: str):
        self.name = name
        self.rows: list[dict] = []

    def log(self, epoch: int, **scalars) -> dict:
        """Append one epoch's snapshot; returns the stored row."""
        row = {"epoch": int(epoch)}
        for key, value in scalars.items():
            # bool is a subclass of int — preserve flags as-is instead of
            # silently storing True as 1.0.
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                row[key] = value
            else:
                row[key] = float(value)
        self.rows.append(row)
        return row

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def keys(self) -> list[str]:
        """Every column name that appears in at least one row."""
        seen: dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def series(self, key: str) -> list:
        """The column ``key`` across epochs (rows missing it are skipped)."""
        return [row[key] for row in self.rows if key in row]

    def latest(self) -> dict | None:
        """The most recently logged row, or ``None`` when empty."""
        return self.rows[-1] if self.rows else None

    def reset(self) -> None:
        self.rows.clear()

    def to_dict(self) -> dict:
        return {"name": self.name, "rows": [dict(r) for r in self.rows]}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EpochLog({self.name!r}, epochs={len(self.rows)})"
