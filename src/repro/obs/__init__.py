"""``repro.obs`` — the unified observability layer.

Every hot path in the reproduction reports into this one subsystem
instead of growing its own ad-hoc clocks and module-global counters:

* :class:`span` — nestable, monotonic timed regions (the per-stage
  breakdown of Table 4 and the compute/comm overlap of Figure 15);
* :func:`record_span` — spans with *modeled* durations (simulated
  network time), flagged ``simulated`` in exports;
* :func:`counter` / :func:`gauge` — typed metrics with running-total
  *and* peak semantics (the memory accounting of Table 5);
* :func:`event` — point annotations, e.g. which backend (FA / SA /
  dense) the hybrid executor picked per HDG level (Figure 14);
* :func:`export_json` / :func:`summary` — a JSON trace file and a
  human-readable roll-up, also reachable via ``flexgraph ... --trace``.

The registry is process-global; call :func:`reset` at the start of a
measurement window.  All primitives are cheap (a ``perf_counter`` call
and a list append) so they stay on in production code paths.
"""

from .export import aggregate_spans, export_json, render_summary, summary, to_dict
from .metrics import Counter, Gauge
from .registry import (
    EventRecord,
    Registry,
    SpanRecord,
    disable,
    enable,
    get_registry,
    reset,
)
from .spans import counter, event, gauge, record_span, span

__all__ = [
    "span",
    "record_span",
    "event",
    "counter",
    "gauge",
    "Counter",
    "Gauge",
    "Registry",
    "SpanRecord",
    "EventRecord",
    "get_registry",
    "reset",
    "enable",
    "disable",
    "export_json",
    "to_dict",
    "summary",
    "render_summary",
    "aggregate_spans",
]
