"""``repro.obs`` — the unified observability layer.

Every hot path in the reproduction reports into this one subsystem
instead of growing its own ad-hoc clocks and module-global counters:

* :class:`span` — nestable, monotonic timed regions (the per-stage
  breakdown of Table 4 and the compute/comm overlap of Figure 15);
* :func:`record_span` — spans with *modeled* durations (simulated
  network time), flagged ``simulated`` in exports;
* :func:`counter` / :func:`gauge` — typed metrics with running-total
  *and* peak semantics (the memory accounting of Table 5);
* :func:`histogram` — log-bucketed distributions with p50/p90/p99
  readouts; the registry derives one per span name automatically;
* :func:`epoch_log` — append-only per-epoch scalar time-series (loss,
  simulated seconds, traffic, balance factor, throughput);
* :func:`event` — point annotations, e.g. which backend (FA / SA /
  dense) the hybrid executor picked per HDG level (Figure 14);
* :mod:`repro.obs.profile` — op-level FLOP/byte accounting attributed
  to the enclosing spans, with :func:`profile_report` /
  :func:`render_profile_report` roofline-style summaries;
* :mod:`repro.obs.flight` — the crash-surviving flight recorder
  (bounded ring + per-rank journals) and incident bundles;
* :mod:`repro.obs.log` — structured logging stamped with
  rank/epoch/layer/phase and the enclosing span;
* :mod:`repro.obs.analysis` — straggler/skew reports aggregated from
  the distributed per-worker spans, plus :func:`backend_report`
  ranking aggregation backends per HDG level by measured cost;
* :func:`export_json` / :func:`export_chrome_trace` /
  :func:`export_prometheus` / :func:`summary` — a native JSON trace, a
  ``chrome://tracing``/Perfetto trace, a Prometheus text exposition,
  and a human-readable roll-up, reachable via ``flexgraph ...
  --trace/--chrome-trace/--metrics``.

The registry is process-global; call :func:`reset` at the start of a
measurement window.  All primitives are cheap (a ``perf_counter`` call
and a list append) so they stay on in production code paths.
"""

from . import analysis, flight, live, log, profile
from .analysis import (
    StallReport,
    StragglerReport,
    backend_report,
    render_backend_report,
    render_stall_report,
    render_straggler_report,
    stall_report,
    straggler_report,
)
from .export import (
    aggregate_spans,
    export_chrome_trace,
    export_json,
    export_prometheus,
    render_summary,
    summary,
    to_chrome_trace,
    to_dict,
    to_prometheus,
)
from .flight import (
    FlightRecorder,
    get_flight,
    install_flight,
    latest_incident,
    read_journal,
    uninstall_flight,
    write_incident_bundle,
)
from .histogram import Histogram
from .live import StallDetector, StallEvent, TelemetrySlab, WorkerTelemetry
from .log import (
    StructuredLogger,
    clear_log_context,
    get_logger,
    log_context,
    set_log_context,
)
from .metrics import Counter, Gauge
from .registry import (
    SPAN_HISTOGRAM_PREFIX,
    EventRecord,
    Registry,
    SpanRecord,
    disable,
    enable,
    get_registry,
    reset,
)
from .profile import (
    WORK_RATE_SPANS,
    disable_profiling,
    enable_profiling,
    export_profile,
    peak_work_rates,
    profile_report,
    profiling_enabled,
    record_op,
    render_profile_report,
    span_work,
    work_since,
    work_snapshot,
)
from .spans import counter, epoch_log, event, gauge, histogram, record_span, span
from .timeseries import EpochLog

__all__ = [
    "span",
    "record_span",
    "event",
    "counter",
    "gauge",
    "histogram",
    "epoch_log",
    "Counter",
    "Gauge",
    "Histogram",
    "EpochLog",
    "Registry",
    "SpanRecord",
    "EventRecord",
    "SPAN_HISTOGRAM_PREFIX",
    "get_registry",
    "reset",
    "enable",
    "disable",
    "export_json",
    "to_dict",
    "to_chrome_trace",
    "export_chrome_trace",
    "to_prometheus",
    "export_prometheus",
    "summary",
    "render_summary",
    "aggregate_spans",
    "analysis",
    "straggler_report",
    "StragglerReport",
    "render_straggler_report",
    "stall_report",
    "StallReport",
    "render_stall_report",
    "backend_report",
    "render_backend_report",
    "flight",
    "FlightRecorder",
    "install_flight",
    "uninstall_flight",
    "get_flight",
    "write_incident_bundle",
    "latest_incident",
    "read_journal",
    "log",
    "StructuredLogger",
    "get_logger",
    "set_log_context",
    "clear_log_context",
    "log_context",
    "live",
    "TelemetrySlab",
    "WorkerTelemetry",
    "StallDetector",
    "StallEvent",
    "profile",
    "record_op",
    "profiling_enabled",
    "enable_profiling",
    "disable_profiling",
    "work_snapshot",
    "work_since",
    "span_work",
    "peak_work_rates",
    "profile_report",
    "render_profile_report",
    "export_profile",
    "WORK_RATE_SPANS",
]
