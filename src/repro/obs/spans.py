"""Span context managers — nestable timed regions.

Usage::

    from repro import obs

    with obs.span("stage.aggregation", layer=i, epoch=epoch) as s:
        nbr = layer.aggregation(h, hdg, strategy)
    elapsed = s.duration      # available after exit, even when disabled

Spans nest: a span opened inside another records its parent id and
depth, so exporters can rebuild the call tree.  Timing uses
``time.perf_counter`` (monotonic); a span's ``duration`` attribute is
always populated on exit so hot paths can keep using the measured value
(e.g. to fill ``StageTimes``) without re-reading the registry.

For *modeled* durations — simulated network time that was never actually
waited for — use :func:`record_span`, which stamps the span with
``simulated: true``.
"""

from __future__ import annotations

from .registry import SpanRecord, get_registry

__all__ = ["span", "record_span", "event", "counter", "gauge",
           "histogram", "epoch_log"]


class span:
    """Context manager timing one named region; attrs are free-form.

    ``scale`` multiplies the measured duration at exit — the distributed
    trainer passes ``1 / worker_speed`` so a modeled-slow worker's
    ``dist.compute`` spans carry its effective (slowed-down) time, which
    is what straggler analysis and latency histograms must see.
    """

    __slots__ = ("name", "attrs", "record", "scale")

    def __init__(self, name: str, scale: float | None = None, **attrs):
        self.name = name
        self.attrs = attrs
        self.scale = scale
        self.record: SpanRecord | None = None

    def __enter__(self) -> "span":
        self.record = get_registry().begin_span(self.name, self.attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        reg = get_registry()
        if self.scale is None:
            reg.end_span(self.record)
        else:
            measured = reg.now() - self.record.start
            reg.end_span(self.record, duration=measured * self.scale)

    @property
    def duration(self) -> float:
        """Seconds elapsed (0.0 while still open)."""
        return 0.0 if self.record is None else self.record.duration


def record_span(name: str, duration: float, **attrs) -> SpanRecord:
    """Record a span with an externally computed (simulated) duration."""
    return get_registry().record_span(name, duration, **attrs)


def event(name: str, **attrs) -> None:
    """Record a point-in-time event (e.g. a backend choice)."""
    get_registry().event(name, **attrs)


def counter(name: str):
    """Fetch-or-create the named :class:`~repro.obs.metrics.Counter`."""
    return get_registry().counter(name)


def gauge(name: str):
    """Fetch-or-create the named :class:`~repro.obs.metrics.Gauge`."""
    return get_registry().gauge(name)


def histogram(name: str):
    """Fetch-or-create the named :class:`~repro.obs.histogram.Histogram`."""
    return get_registry().histogram(name)


def epoch_log(name: str = "train"):
    """Fetch-or-create the named :class:`~repro.obs.timeseries.EpochLog`."""
    return get_registry().epoch_log(name)
