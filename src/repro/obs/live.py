"""Live cluster telemetry: the shared-memory metrics plane.

Everything else in ``repro.obs`` is *post-hoc*: spans and counters
accumulate inside each process and reach the parent only when a worker
ships its epoch results.  That is useless for the question operators
actually ask while a cluster runs — "is worker 3 stalled or just slow,
and where?" — because a hung worker looks identical to a slow one until
a barrier times out.

This module closes the gap with a :class:`TelemetrySlab`: one
fixed-layout shared-memory record per worker rank, written **lock-free**
by the owning worker on every phase transition and sampled by the
parent (or an external ``tools/monitor.py``) at poll time.

Slab layout (one float64 row of :data:`NUM_FIELDS` per rank)::

    SEQNO          heartbeat sequence number; bumped LAST on every write
    PID            worker OS pid
    EPOCH          epoch currently executing
    LAYER          layer currently executing (-1 between layers)
    PHASE          phase enum (see PHASE_NAMES)
    SPANS_CLOSED   spans closed so far this epoch (progress proxy)
    FLOPS          profile.flops counter total (work so far)
    BYTES          profile bytes read+written so far
    LAST_BEAT      time.monotonic() of the last heartbeat
    CLOCK_ORIGIN   raw perf_counter of the worker registry's origin
                   (the clock-offset handshake for trace rebasing)

The single-writer-per-row discipline makes torn reads the only hazard;
readers guard against them by re-reading ``SEQNO`` after copying the
row and retrying on mismatch (:meth:`TelemetrySlab.sample`).

Stall semantics
---------------
A worker is **dead** when its process is gone (``is_alive()`` false —
surfaced as :class:`~repro.distributed.fault_tolerance.WorkerFailure`).
A worker is **stalled** when the process is alive but its heartbeat
seqno has been frozen past a deadline *while in an active phase*.
Waiting phases (barrier, awaiting the parent's gradient) are exempt:
when rank 2 hangs in its forward, ranks 0 and 1 freeze too — blocked in
``Barrier.wait`` — and flagging them would bury the culprit.  The
:class:`StallDetector` therefore reports exactly the rank whose frozen
phase is one it was supposed to be making progress in.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np

from .registry import get_registry

__all__ = [
    "NUM_FIELDS",
    "PHASE_IDLE",
    "PHASE_FEAT_FETCH",
    "PHASE_FORWARD",
    "PHASE_BARRIER",
    "PHASE_AWAIT_GRAD",
    "PHASE_BACKWARD",
    "PHASE_GRAD_REDUCE",
    "PHASE_PARAM_REDUCE",
    "PHASE_DONE",
    "PHASE_NAMES",
    "ACTIVE_PHASES",
    "WorkerSample",
    "WorkerTelemetry",
    "TelemetrySlab",
    "StallEvent",
    "StallDetector",
    "STALL_EVENT",
]

# ----------------------------------------------------------------------
# slab layout
# ----------------------------------------------------------------------
(SEQNO, PID, EPOCH, LAYER, PHASE, SPANS_CLOSED, FLOPS, BYTES,
 LAST_BEAT, CLOCK_ORIGIN) = range(10)
NUM_FIELDS = 10

#: phase enum — the coarse per-worker state machine of one epoch
PHASE_IDLE = 0          # no epoch dispatched / between epochs
PHASE_FEAT_FETCH = 1    # assembling the input feature matrix
PHASE_FORWARD = 2       # layer-l aggregation + update
PHASE_BARRIER = 3       # blocked in a Barrier.wait (peer-dependent)
PHASE_AWAIT_GRAD = 4    # waiting for the parent's output gradient
PHASE_BACKWARD = 5      # layer-l backward
PHASE_GRAD_REDUCE = 6   # hidden-gradient chunk reduction
PHASE_PARAM_REDUCE = 7  # parameter-gradient chunk reduction
PHASE_DONE = 8          # epoch results shipped

PHASE_NAMES = (
    "idle", "feat_fetch", "forward", "barrier", "await_grad",
    "backward", "grad_reduce", "param_reduce", "done",
)

#: phases in which a frozen heartbeat means *this* worker is stuck
#: (waiting phases freeze legitimately when a peer stalls)
ACTIVE_PHASES = frozenset({
    PHASE_FEAT_FETCH, PHASE_FORWARD, PHASE_BACKWARD,
    PHASE_GRAD_REDUCE, PHASE_PARAM_REDUCE,
})

#: event name the stall poll emits (consumed by analysis.stall_report)
STALL_EVENT = "dist.worker_stalled"

#: gauge-name prefix the parent publishes samples under
LIVE_GAUGE_PREFIX = "live.worker."


def phase_name(phase: int) -> str:
    """Human name for a phase enum value (``"?"`` when out of range)."""
    return PHASE_NAMES[phase] if 0 <= phase < len(PHASE_NAMES) else "?"


@dataclass
class WorkerSample:
    """One parent-side reading of a worker's telemetry record."""

    rank: int
    seqno: int
    pid: int
    epoch: int
    layer: int
    phase: int
    spans_closed: int
    flops: float
    bytes: float
    last_beat: float          # raw time.monotonic() of the last beat
    clock_origin: float       # raw perf_counter of the worker registry
    progress_age: float | None  # seconds since last beat (None: no beat yet)

    @property
    def phase_name(self) -> str:
        return phase_name(self.phase)

    @property
    def alive_signal(self) -> bool:
        """Whether this rank has heartbeat at least once."""
        return self.seqno > 0

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "seqno": self.seqno,
            "pid": self.pid,
            "epoch": self.epoch,
            "layer": self.layer,
            "phase": self.phase,
            "phase_name": self.phase_name,
            "spans_closed": self.spans_closed,
            "flops": self.flops,
            "bytes": self.bytes,
            "progress_age": self.progress_age,
        }


class WorkerTelemetry:
    """The worker-side writer over one slab row (single-writer,
    lock-free: fields first, seqno bumped last)."""

    __slots__ = ("_row", "rank")

    def __init__(self, row: np.ndarray, rank: int):
        self._row = row
        self.rank = int(rank)
        row[PID] = float(os.getpid())

    # ------------------------------------------------------------------
    def set_clock_origin(self, origin: float) -> None:
        """Publish the worker registry's raw ``perf_counter`` origin —
        the handshake the parent uses to rebase span start times."""
        self._row[CLOCK_ORIGIN] = float(origin)

    def update(self, phase: int | None = None, epoch: int | None = None,
               layer: int | None = None) -> None:
        """Record a phase transition: write the changed fields, refresh
        the progress counters, then bump the heartbeat seqno last."""
        row = self._row
        if epoch is not None:
            row[EPOCH] = float(epoch)
        if layer is not None:
            row[LAYER] = float(layer)
        if phase is not None:
            row[PHASE] = float(phase)
        reg = get_registry()
        row[SPANS_CLOSED] = float(len(reg.spans))
        flops = reg.counters.get("profile.flops")
        read = reg.counters.get("profile.bytes_read")
        written = reg.counters.get("profile.bytes_written")
        row[FLOPS] = flops.total if flops is not None else 0.0
        row[BYTES] = (
            (read.total if read is not None else 0.0)
            + (written.total if written is not None else 0.0)
        )
        row[LAST_BEAT] = time.monotonic()
        row[SEQNO] += 1.0

    def beat(self) -> None:
        """Heartbeat without a state change (proves liveness cheaply)."""
        row = self._row
        row[LAST_BEAT] = time.monotonic()
        row[SEQNO] += 1.0

    def on_barrier(self, event: str) -> None:
        """:class:`~repro.distributed.comm.ProcessComm` barrier hook:
        entering a barrier is a phase transition (the wait may block on
        a peer), leaving it is a plain progress beat."""
        if event == "enter":
            self.update(phase=PHASE_BARRIER)
        else:
            self.beat()


class TelemetrySlab:
    """``k`` fixed-layout worker records in one shared-memory segment.

    Created by the parent before the workers spawn; travels to each
    worker by fork inheritance or pickling (the backing
    :class:`~repro.distributed.kvstore.SharedArray` re-attaches by
    name).  Each worker writes only its own row; the parent — or an
    out-of-process ``tools/monitor.py`` attached via
    :meth:`write_descriptor` / :meth:`attach` — samples all rows.
    """

    def __init__(self, k: int, *, _backing=None):
        if _backing is None:
            # Imported here: kvstore imports nothing from obs, but obs is
            # imported by nearly everything and must not pull distributed
            # machinery in at module import time.
            from ..distributed.kvstore import SharedArray
            _backing = SharedArray((int(k), NUM_FIELDS), np.float64)
            _backing.array[...] = 0.0
        self._arr = _backing
        self.k = int(k)

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Zero every record (pool respawn: stale heartbeats must not
        read as progress)."""
        self._arr.array[...] = 0.0

    def close(self) -> None:
        self._arr.close()

    # -- pickling (descriptor travels, views re-attach lazily) ---------
    def __getstate__(self):
        return {"arr": self._arr, "k": self.k}

    def __setstate__(self, state):
        self._arr = state["arr"]
        self.k = state["k"]

    # -- out-of-process attach ------------------------------------------
    def descriptor(self) -> dict:
        """JSON-serializable handle an external monitor can attach with."""
        return {"schema": "repro.live-slab/1", "name": self._arr.name,
                "k": self.k}

    def write_descriptor(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.descriptor(), fh)
            fh.write("\n")

    @classmethod
    def attach(cls, descriptor: dict) -> "TelemetrySlab":
        """Attach to an existing slab from its :meth:`descriptor`."""
        from ..distributed.kvstore import SharedArray
        arr = SharedArray((int(descriptor["k"]), NUM_FIELDS), np.float64,
                          name=descriptor["name"], create=False)
        return cls(int(descriptor["k"]), _backing=arr)

    # -- worker side ----------------------------------------------------
    def writer(self, rank: int) -> WorkerTelemetry:
        if not (0 <= rank < self.k):
            raise ValueError("rank out of range")
        return WorkerTelemetry(self._arr.array[rank], rank)

    # -- parent side ----------------------------------------------------
    def _read_row(self, rank: int) -> np.ndarray:
        """Torn-read-guarded copy of one row (seqno re-checked)."""
        row = self._arr.array[rank]
        for _ in range(3):
            seq = row[SEQNO]
            copied = np.array(row)
            if row[SEQNO] == seq:
                return copied
        return copied  # pragma: no cover - writer outpacing 3 retries

    def sample(self, publish: bool = False, now: float | None = None,
               registry=None) -> list[WorkerSample]:
        """Read every rank's record; optionally publish live gauges
        (``live.worker.{rank}.phase`` / ``.progress_age`` / ``.epoch`` /
        ``.layer`` / ``.heartbeat``) into the registry."""
        if now is None:
            now = time.monotonic()
        samples = []
        for rank in range(self.k):
            row = self._read_row(rank)
            seqno = int(row[SEQNO])
            samples.append(WorkerSample(
                rank=rank,
                seqno=seqno,
                pid=int(row[PID]),
                epoch=int(row[EPOCH]),
                layer=int(row[LAYER]),
                phase=int(row[PHASE]),
                spans_closed=int(row[SPANS_CLOSED]),
                flops=float(row[FLOPS]),
                bytes=float(row[BYTES]),
                last_beat=float(row[LAST_BEAT]),
                clock_origin=float(row[CLOCK_ORIGIN]),
                progress_age=(
                    max(now - float(row[LAST_BEAT]), 0.0) if seqno else None
                ),
            ))
        if publish:
            reg = registry or get_registry()
            for s in samples:
                prefix = f"{LIVE_GAUGE_PREFIX}{s.rank}."
                reg.gauge(prefix + "phase").set(s.phase)
                reg.gauge(prefix + "epoch").set(s.epoch)
                reg.gauge(prefix + "layer").set(s.layer)
                reg.gauge(prefix + "heartbeat").set(s.seqno)
                if s.progress_age is not None:
                    reg.gauge(prefix + "progress_age").set(s.progress_age)
        return samples

    def clock_origin(self, rank: int) -> float:
        """The rank's published registry origin (0.0 before handshake)."""
        return float(self._arr.array[rank, CLOCK_ORIGIN])

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-serializable snapshot (``tools/monitor.py --snapshot``)."""
        return {
            "schema": "repro.live/1",
            "k": self.k,
            "workers": [s.to_dict() for s in self.sample(now=now)],
        }


# ----------------------------------------------------------------------
# stall detection
# ----------------------------------------------------------------------
@dataclass
class StallEvent:
    """One detected stall episode (heartbeat frozen in an active phase)."""

    rank: int
    epoch: int
    layer: int
    phase: int
    stalled_seconds: float

    @property
    def phase_name(self) -> str:
        return phase_name(self.phase)

    def to_dict(self) -> dict:
        return {
            "rank": self.rank, "epoch": self.epoch, "layer": self.layer,
            "phase": self.phase, "phase_name": self.phase_name,
            "stalled_seconds": self.stalled_seconds,
        }


class StallDetector:
    """Distinguishes *stalled* (alive, heartbeat frozen mid-work) from
    merely slow.

    The parent feeds every liveness poll's samples into
    :meth:`observe`.  A rank is flagged when its seqno has not advanced
    for more than ``deadline`` seconds *and* its last reported phase is
    an active one (:data:`ACTIVE_PHASES`) — a slow-but-progressing
    worker keeps bumping its seqno at every phase transition and is
    never flagged; a worker parked at a barrier is the victim of someone
    else's stall and is never flagged either.  Each stall episode fires
    once; the rank re-arms when its heartbeat resumes.
    """

    def __init__(self, deadline: float = 5.0,
                 active_phases: frozenset = ACTIVE_PHASES):
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.deadline = float(deadline)
        self.active_phases = active_phases
        # rank -> (last seqno, monotonic time that seqno was first seen)
        self._seen: dict[int, tuple[int, float]] = {}
        self._flagged: set[int] = set()

    def reset(self) -> None:
        """Forget all tracking state (pool respawn)."""
        self._seen.clear()
        self._flagged.clear()

    def observe(self, samples: list[WorkerSample],
                now: float | None = None) -> list[StallEvent]:
        """Ingest one poll's samples; returns newly detected stalls."""
        if now is None:
            now = time.monotonic()
        stalls: list[StallEvent] = []
        for s in samples:
            if s.seqno <= 0:
                continue  # never heartbeat: not yet started, not stalled
            prev = self._seen.get(s.rank)
            if prev is None or prev[0] != s.seqno:
                self._seen[s.rank] = (s.seqno, now)
                self._flagged.discard(s.rank)
                continue
            frozen_for = now - prev[1]
            if (frozen_for > self.deadline
                    and s.phase in self.active_phases
                    and s.rank not in self._flagged):
                self._flagged.add(s.rank)
                stalls.append(StallEvent(
                    rank=s.rank, epoch=s.epoch, layer=s.layer,
                    phase=s.phase, stalled_seconds=frozen_for,
                ))
        return stalls
