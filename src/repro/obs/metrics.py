"""Typed metric primitives: counters and gauges.

A :class:`Counter` is a monotone accumulator with *three* readouts:

* ``total`` — running sum of everything ever added (e.g. cumulative
  bytes materialized by sparse aggregation across a whole run);
* ``current`` — live value, i.e. ``add``s minus ``release``s (bytes
  materialized and not yet freed);
* ``peak`` — high-water mark of ``current`` (the number a memory-budget
  experiment actually cares about, cf. Table 5).

Callers that never ``release`` get ``peak == current == total``, which
degrades gracefully to a plain running total.

A :class:`Gauge` is a last-write-wins value that also remembers its
maximum, for quantities that are set rather than accumulated (queue
depths, per-epoch loss, partition imbalance factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge"]


@dataclass
class Counter:
    """Accumulator with running-total *and* peak (high-water) semantics."""

    name: str
    total: float = 0.0
    current: float = 0.0
    peak: float = 0.0
    #: number of ``add`` calls, so averages can be derived
    count: int = 0

    def add(self, amount: float) -> None:
        """Add ``amount`` to the running total and the live value."""
        amount = float(amount)
        self.total += amount
        self.current += amount
        self.count += 1
        if self.current > self.peak:
            self.peak = self.current

    def release(self, amount: float) -> None:
        """Lower the live value (resources freed); ``total`` is untouched."""
        self.current = max(0.0, self.current - float(amount))

    def reset(self) -> None:
        self.total = self.current = self.peak = 0.0
        self.count = 0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "current": self.current,
            "peak": self.peak,
            "count": self.count,
        }


@dataclass
class Gauge:
    """Last-write-wins value with a remembered maximum."""

    name: str
    value: float = 0.0
    peak: float = field(default=float("-inf"))
    #: number of ``set`` calls
    count: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.count += 1
        if self.value > self.peak:
            self.peak = self.value

    def reset(self) -> None:
        self.value = 0.0
        self.peak = float("-inf")
        self.count = 0

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "peak": self.peak if self.count else None,
            "count": self.count,
        }
