"""Typed metric primitives: counters and gauges.

A :class:`Counter` is a monotone accumulator with *three* readouts:

* ``total`` — running sum of everything ever added (e.g. cumulative
  bytes materialized by sparse aggregation across a whole run);
* ``current`` — live value, i.e. ``add``s minus ``release``s (bytes
  materialized and not yet freed);
* ``peak`` — high-water mark of ``current`` (the number a memory-budget
  experiment actually cares about, cf. Table 5).

Callers that never ``release`` get ``peak == current == total``, which
degrades gracefully to a plain running total.

A :class:`Gauge` is a last-write-wins value that also remembers its
maximum, for quantities that are set rather than accumulated (queue
depths, per-epoch loss, partition imbalance factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge"]


@dataclass
class Counter:
    """Accumulator with running-total *and* peak (high-water) semantics."""

    name: str
    total: float = 0.0
    current: float = 0.0
    peak: float = 0.0
    #: number of ``add`` calls, so averages can be derived
    count: int = 0

    def add(self, amount: float) -> None:
        """Add ``amount`` to the running total and the live value."""
        amount = float(amount)
        self.total += amount
        self.current += amount
        self.count += 1
        if self.current > self.peak:
            self.peak = self.current

    def release(self, amount: float) -> None:
        """Lower the live value (resources freed); ``total`` is untouched."""
        self.current = max(0.0, self.current - float(amount))

    def reset(self) -> None:
        self.total = self.current = self.peak = 0.0
        self.count = 0

    def merge_dict(self, data: dict) -> None:
        """Fold another process's exported counter state into this one.

        Totals, live values and call counts add; the peak takes the
        high-water mark of either side's peak and the combined live
        value (the two processes' peaks need not have coincided, so
        summing peaks would overstate — max is the defensible bound).
        """
        self.total += float(data.get("total", 0.0))
        self.current += float(data.get("current", 0.0))
        self.count += int(data.get("count", 0))
        self.peak = max(self.peak, float(data.get("peak", 0.0)), self.current)

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "current": self.current,
            "peak": self.peak,
            "count": self.count,
        }


@dataclass
class Gauge:
    """Last-write-wins value with a remembered maximum."""

    name: str
    value: float = 0.0
    peak: float = field(default=float("-inf"))
    #: number of ``set`` calls
    count: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.count += 1
        if self.value > self.peak:
            self.peak = self.value

    def reset(self) -> None:
        self.value = 0.0
        self.peak = float("-inf")
        self.count = 0

    def merge_dict(self, data: dict) -> None:
        """Fold another process's exported gauge state into this one:
        adopt the incoming value (last write wins across the merge),
        keep the larger peak, add the set counts.  A never-set incoming
        gauge (count 0) leaves this one untouched."""
        incoming = int(data.get("count", 0))
        if incoming <= 0:
            return
        self.value = float(data.get("value", 0.0))
        self.count += incoming
        peak = data.get("peak")
        if peak is not None and float(peak) > self.peak:
            self.peak = float(peak)

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "peak": self.peak if self.count else None,
            "count": self.count,
        }
