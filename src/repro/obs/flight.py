"""The flight recorder: crash-surviving black-box capture.

Everything else in ``repro.obs`` optimizes for the *surviving* process:
spans accumulate in a per-process registry and reach the parent when a
worker ships its epoch results.  A rank that dies inside a reduction
takes that registry — its spans, its metric state, its final phase —
with it, and the post-mortem question ("what was rank 1 doing when it
vanished?") becomes unanswerable.

A :class:`FlightRecorder` closes that gap the way an aircraft black box
does: a bounded ring buffer of the most recent telemetry — closed
spans, events, structured log records (:mod:`repro.obs.log`), phase
transitions, metric samples — continuously spilled to an append-only
per-rank *journal* file.  Journal writes stay off the hot path: the
recording thread appends the record to an in-process queue (one deque
append — the worker's phase transitions sit right at barrier
boundaries, where every extra syscall de-synchronizes ranks), and a
daemon drain thread batches them to an ``O_APPEND`` fd via ``os.write``
every ``_DRAIN_INTERVAL``.  Once written they live in the kernel page
cache and
survive ``os._exit``, ``SIGKILL`` and segfaults.  Controlled deaths
(:meth:`FlightRecorder.crash` — the worker crash hook, ``_die``) drain
the queue *synchronously* before the process exits, so the journal
always ends with the traceback; only an uncatchable kill can lose the
final drain interval.  The parent (or ``tools/postmortem.py``) reads
the dead rank's final moments straight from its journal.

The recorder taps the registry (``Registry.flight``) so instrumentation
does not change: every ``end_span``/``event`` forwards one shallow
record.  The tap survives :func:`repro.obs.reset` deliberately — worker
processes reset their registry each epoch, and the black box must keep
recording across that boundary or it would lose exactly the incident
it exists to capture.  Ring writes are plain list stores (append-only,
no locks); journaling costs the recording thread one deque append —
serialization and the write syscall happen on the drain thread.

Incident bundles
----------------
:func:`write_incident_bundle` snapshots one incident into a
self-contained directory::

    incident-<kind>-<stamp>/
      manifest.json     kind, wall time, rank, reason, trace id, config
      flight.json       the calling process's ring dump
      journal-*.jsonl   copies of every per-rank journal in the flight dir
      telemetry.json    live TelemetrySlab snapshot        (section)
      stalls.json       StallDetector state + episodes     (section)
      requests.json     serving requests in flight         (section)
      metrics.json      registry counters/gauges/histograms
      trace.json        merged partial Chrome trace of the parent registry

The multiprocess runtime dumps one on ``WorkerFailure``, on
``dist.worker_stalled`` and on epoch timeout; ``GNNServer`` snapshots
on SLO breach and shed-rate spikes; the CLI dumps one when a command
crashes.  ``tools/postmortem.py`` analyzes a bundle into a per-rank
timeline and a culprit-vs-victim ranking.
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import shutil
import threading
import time

from .registry import EventRecord, Registry, SpanRecord, get_registry

__all__ = [
    "FlightRecorder",
    "install_flight",
    "uninstall_flight",
    "get_flight",
    "write_incident_bundle",
    "latest_incident",
    "read_journal",
    "FLIGHT_SCHEMA",
    "INCIDENT_SCHEMA",
    "INCIDENT_PREFIX",
    "JOURNAL_PREFIX",
]

FLIGHT_SCHEMA = "repro.flight/1"
INCIDENT_SCHEMA = "repro.incident/1"

#: incident bundle directories are named ``incident-<kind>-<stamp>``
INCIDENT_PREFIX = "incident-"
#: per-process journal files are named ``journal-<who>.jsonl``
JOURNAL_PREFIX = "journal-"

#: event names starting with this prefix reach the recorder through
#: :meth:`FlightRecorder.on_log` (see repro.obs.log) and are skipped by
#: the generic event tap so they are not journaled twice.
_LOG_EVENT_PREFIX = "log."

_BUNDLE_SEQ = itertools.count(1)

#: how long a journaled record may sit in the in-process queue before
#: the drain thread writes it out (the SIGKILL loss window; controlled
#: deaths drain synchronously and lose nothing).  Deliberately coarse:
#: on a single-core host every thread wake preempts a worker, and the
#: workers' phase records sit at barrier boundaries where one badly
#: timed context switch gates every rank.
_DRAIN_INTERVAL = 0.25


def _json_default(value):
    """Last-resort JSON coercion: numpy scalars/arrays, then ``str``."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    return str(value)


def _dumps(obj) -> str:
    # Fast path: pure-builtin records (the overwhelming majority) skip
    # the default-handler machinery; numpy-bearing attrs fall back.
    try:
        return json.dumps(obj, separators=(",", ":"))
    except (TypeError, ValueError):
        return json.dumps(obj, separators=(",", ":"), default=_json_default)


class FlightRecorder:
    """Bounded ring of recent telemetry, spilled to a durable journal.

    Parameters
    ----------
    capacity:
        Ring size in records.  Older records fall out of the ring but —
        when a ``journal_path`` is set — remain in the journal file.
    journal_path:
        Append-only JSONL spill target.  Records are queued by the
        recording thread and written out by a daemon drain thread
        within ``_DRAIN_INTERVAL``; :meth:`crash` and :meth:`close`
        drain synchronously.  ``None`` keeps the recorder in-memory
        only.
    rank:
        Stamped into every record and the :meth:`dump` header, so
        merged post-mortem timelines can attribute records.
    """

    def __init__(self, capacity: int = 1024,
                 journal_path: str | None = None,
                 rank: int | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.rank = rank
        self.journal_path = journal_path
        self._ring: list = [None] * self.capacity
        self._total = 0
        # Journal plumbing: records queue on a deque (GIL-atomic append,
        # no syscall on the recording thread) and a daemon thread drains
        # them to a raw O_APPEND fd.  Drains serialize under a lock so
        # a synchronous flush (crash path) cannot interleave with the
        # background drain and reorder records.
        self._journal_fd: int | None = None
        self._pending: collections.deque | None = None
        self._drain_lock: threading.Lock | None = None
        self._drain_stop: threading.Event | None = None
        self._drain_thread: threading.Thread | None = None
        if journal_path is not None:
            directory = os.path.dirname(os.path.abspath(journal_path))
            os.makedirs(directory, exist_ok=True)
            self._journal_fd = os.open(
                journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            self._pending = collections.deque()
            self._drain_lock = threading.Lock()
            self._drain_stop = threading.Event()
            self._drain_thread = threading.Thread(
                target=self._drain_loop, name="flight-journal", daemon=True
            )
            self._drain_thread.start()

    # ------------------------------------------------------------------
    # recording (the hot path: one dict build, one list store, one
    # deque append — no locks, no syscalls)
    # ------------------------------------------------------------------
    def record(self, kind: str, **data) -> dict:
        """Append one record to the ring (and the journal queue, if
        any).  The drain thread writes it out within
        ``_DRAIN_INTERVAL``; call :meth:`flush` to force it."""
        entry = {"kind": kind, "t": time.time()}
        if self.rank is not None:
            entry["rank"] = self.rank
        entry.update(data)
        self._ring[self._total % self.capacity] = entry
        self._total += 1
        if self._pending is not None:
            self._pending.append(entry)
        return entry

    def _drain_loop(self) -> None:
        stop = self._drain_stop
        while not stop.wait(_DRAIN_INTERVAL):
            self.flush()

    def flush(self) -> None:
        """Drain queued records to the journal fd now (synchronous)."""
        pending, fd = self._pending, self._journal_fd
        if not pending or fd is None:
            return
        with self._drain_lock:
            lines = []
            while True:
                try:
                    lines.append(_dumps(pending.popleft()))
                except IndexError:
                    break
            if lines:
                try:
                    os.write(fd, ("\n".join(lines) + "\n").encode("utf-8"))
                except OSError:  # pragma: no cover - fd closed under us
                    pass

    # -- registry taps (see Registry.end_span / Registry.event) --------
    def on_span(self, record: SpanRecord) -> None:
        attrs = record.attrs
        self.record(
            "span", name=record.name, start=record.start,
            duration=record.duration,
            **({"attrs": dict(attrs)} if attrs else {}),
        )

    def on_event(self, record: EventRecord) -> None:
        if record.name.startswith(_LOG_EVENT_PREFIX):
            return  # structured logs arrive via on_log; don't journal twice
        self.record(
            "event", name=record.name, time=record.time,
            **({"attrs": dict(record.attrs)} if record.attrs else {}),
        )

    def on_log(self, payload: dict) -> None:
        """One structured log record (see :mod:`repro.obs.log`)."""
        self.record("log", **payload)

    def record_metrics(self, registry: Registry | None = None) -> dict:
        """Sample the registry's counters/gauges into one ring record."""
        reg = registry or get_registry()
        return self.record(
            "metrics",
            counters={n: c.total for n, c in reg.counters.items()},
            gauges={n: g.value for n, g in reg.gauges.items()},
        )

    def crash(self, traceback_text: str, reason: str = "crash") -> dict:
        """The final record: the queue is drained synchronously before
        returning, so the journal ends with the traceback even when the
        caller's next statement is ``os._exit``."""
        entry = self.record("crash", reason=reason,
                            traceback=traceback_text)
        self.flush()
        return entry

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Records ever written (ring holds the last ``capacity``)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Records that have fallen out of the ring."""
        return max(0, self._total - self.capacity)

    def entries(self) -> list[dict]:
        """Ring contents, oldest first."""
        if self._total <= self.capacity:
            return [e for e in self._ring[: self._total]]
        head = self._total % self.capacity
        return self._ring[head:] + self._ring[:head]

    def dump(self) -> dict:
        """JSON-ready snapshot of the ring (the ``flight.json`` of an
        incident bundle)."""
        return {
            "schema": FLIGHT_SCHEMA,
            "rank": self.rank,
            "pid": os.getpid(),
            "capacity": self.capacity,
            "total": self._total,
            "dropped": self.dropped,
            "journal_path": self.journal_path,
            "entries": self.entries(),
        }

    def close(self, drain: bool = True) -> None:
        """Stop the drain thread and close the journal fd.

        ``drain=False`` discards queued-but-unwritten records — for a
        forked child disposing of the recorder it inherited, whose
        pending records belong to (and will be written by) the parent.
        """
        stop, thread = self._drain_stop, self._drain_thread
        if stop is not None:
            stop.set()
        if (thread is not None and thread.is_alive()
                and thread is not threading.current_thread()):
            thread.join(timeout=1.0)
        self._drain_thread = None
        if drain:
            self.flush()
        elif self._pending is not None:
            self._pending.clear()
        if self._journal_fd is not None:
            fd, self._journal_fd = self._journal_fd, None
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass


# ----------------------------------------------------------------------
# registry installation
# ----------------------------------------------------------------------
def install_flight(recorder: FlightRecorder,
                   registry: Registry | None = None) -> FlightRecorder:
    """Tap ``recorder`` into the registry (``reg.flight``): every span
    close and event is forwarded.  The tap survives ``reset()``."""
    (registry or get_registry()).flight = recorder
    return recorder


def uninstall_flight(registry: Registry | None = None) -> FlightRecorder | None:
    """Remove (and return) the installed recorder, if any.  The caller
    owns closing it."""
    reg = registry or get_registry()
    recorder = reg.flight
    reg.flight = None
    return recorder


def get_flight(registry: Registry | None = None) -> FlightRecorder | None:
    """The recorder currently tapped into the registry, or ``None``."""
    return (registry or get_registry()).flight


# ----------------------------------------------------------------------
# journals
# ----------------------------------------------------------------------
def read_journal(path: str) -> list[dict]:
    """Parse a journal file, skipping any truncated trailing line (a
    process killed mid-write leaves at most one partial record)."""
    entries: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return entries


# ----------------------------------------------------------------------
# incident bundles
# ----------------------------------------------------------------------
def write_incident_bundle(
    flight_dir: str,
    kind: str,
    *,
    rank: int | None = None,
    reason: str | None = None,
    config: dict | None = None,
    sections: dict | None = None,
    registry: Registry | None = None,
    copy_journals: bool = True,
    include_trace: bool = True,
) -> str:
    """Write one self-contained incident bundle under ``flight_dir``.

    ``sections`` maps section name -> JSON-serializable object; each
    becomes ``<name>.json`` in the bundle (e.g. ``telemetry``,
    ``stalls``, ``requests``, ``slo``).  ``copy_journals`` snapshots
    every ``journal-*.jsonl`` sitting in ``flight_dir`` into the bundle
    — including a dead worker's.  Returns the bundle directory path.
    """
    reg = registry or get_registry()
    stamp = time.strftime("%Y%m%dT%H%M%S")
    name = (f"{INCIDENT_PREFIX}{kind}-{stamp}-"
            f"{os.getpid()}-{next(_BUNDLE_SEQ)}")
    bundle = os.path.join(flight_dir, name)
    os.makedirs(bundle, exist_ok=True)

    files: list[str] = []

    def _write(filename: str, payload) -> None:
        with open(os.path.join(bundle, filename), "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, default=_json_default)
        files.append(filename)

    recorder = reg.flight
    if recorder is not None:
        recorder.flush()  # journal copies below must include the queue
        _write("flight.json", recorder.dump())

    for section, payload in (sections or {}).items():
        if payload is not None:
            _write(f"{section}.json", payload)

    _write("metrics.json", reg.metrics_snapshot())

    if include_trace:
        from .export import to_chrome_trace

        _write("trace.json", to_chrome_trace(reg))

    if copy_journals and os.path.isdir(flight_dir):
        for entry in sorted(os.listdir(flight_dir)):
            if entry.startswith(JOURNAL_PREFIX) and entry.endswith(".jsonl"):
                try:
                    shutil.copyfile(os.path.join(flight_dir, entry),
                                    os.path.join(bundle, entry))
                except OSError:  # pragma: no cover - journal vanished
                    continue
                files.append(entry)

    manifest = {
        "schema": INCIDENT_SCHEMA,
        "kind": kind,
        "time_unix": time.time(),
        "time": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rank": rank,
        "reason": reason,
        "pid": os.getpid(),
        "trace_id": reg.trace_id,
        "config": config or {},
        "files": files,
    }
    with open(os.path.join(bundle, "manifest.json"), "w",
              encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, default=_json_default)
    reg.event("flight.incident", kind=kind, rank=rank, bundle=bundle)
    return bundle


def latest_incident(flight_dir: str) -> dict | None:
    """Manifest of the newest incident bundle under ``flight_dir``
    (with its ``path`` added), or ``None``.  Feeds the "last incident"
    status line of ``tools/monitor.py --watch``."""
    if not flight_dir or not os.path.isdir(flight_dir):
        return None
    newest: dict | None = None
    for entry in os.listdir(flight_dir):
        if not entry.startswith(INCIDENT_PREFIX):
            continue
        manifest_path = os.path.join(flight_dir, entry, "manifest.json")
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        manifest["path"] = os.path.join(flight_dir, entry)
        if newest is None or (manifest.get("time_unix", 0.0)
                              > newest.get("time_unix", 0.0)):
            newest = manifest
    return newest
