"""Structured logging, stamped with the training context.

``get_logger(name)`` returns a :class:`StructuredLogger` whose records
are dictionaries, not format strings: a message plus free-form fields,
automatically stamped with the process's current *log context* (rank,
epoch, layer, phase — maintained by the runtimes via
:func:`set_log_context`) and the innermost open span.  Each record is

* folded into ``Registry.events`` as a ``log.<level>`` event (so logs
  travel with traces, merge across processes via
  ``Registry.merge_metrics``, and appear in exports);
* forwarded to the installed :class:`~repro.obs.flight.FlightRecorder`
  (so the black-box journal carries the last log lines a dead worker
  wrote);
* optionally emitted as a JSON line to a configured stream
  (:func:`configure`).

Usage::

    from repro.obs.log import get_logger, set_log_context

    set_log_context(rank=2)
    log = get_logger("dist.worker")
    with obs.span("dist.compute", layer=0):
        log.info("aggregation done", vertices=1024)
    # -> {"level": "info", "logger": "dist.worker", "message":
    #     "aggregation done", "rank": 2, "span": "dist.compute",
    #     "vertices": 1024}

The context is process-global (one rank per worker process, matching
the one-registry-per-process observability model), and survives
``obs.reset()`` — a worker resets its registry every epoch but stays
the same rank.
"""

from __future__ import annotations

import json
import time

from .registry import get_registry

__all__ = [
    "LEVELS",
    "LOG_EVENT_PREFIX",
    "StructuredLogger",
    "get_logger",
    "set_log_context",
    "clear_log_context",
    "log_context",
    "configure",
]

#: numeric severities, standard-library-compatible
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: registry events carrying log records are named ``log.<level>``
LOG_EVENT_PREFIX = "log."

# Process-global context stamped into every record.  Keys are free-form;
# the distributed runtime maintains rank/epoch/layer/phase.
_CONTEXT: dict = {}

_LOGGERS: dict[str, "StructuredLogger"] = {}
_THRESHOLD = LEVELS["debug"]
_STREAM = None


def set_log_context(**fields) -> None:
    """Merge ``fields`` into the process log context; ``None`` values
    are ignored (use :func:`clear_log_context` to remove keys)."""
    for key, value in fields.items():
        if value is not None:
            _CONTEXT[key] = value


def clear_log_context(*keys: str) -> None:
    """Drop the named context keys — or the whole context when called
    with no arguments."""
    if not keys:
        _CONTEXT.clear()
        return
    for key in keys:
        _CONTEXT.pop(key, None)


def log_context() -> dict:
    """A copy of the current process log context."""
    return dict(_CONTEXT)


def configure(stream=None, level: str = "debug") -> None:
    """Set the optional JSON-lines output stream and the minimum level
    (records below it are dropped entirely)."""
    global _STREAM, _THRESHOLD
    if level not in LEVELS:
        raise ValueError(f"unknown level {level!r}")
    _STREAM = stream
    _THRESHOLD = LEVELS[level]


class StructuredLogger:
    """A named logger emitting context-stamped structured records."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def log(self, level: str, message: str, **fields) -> dict | None:
        """Emit one record; returns the payload (or ``None`` when the
        level is below the configured threshold)."""
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}")
        if severity < _THRESHOLD:
            return None
        reg = get_registry()
        payload = {"level": level, "logger": self.name,
                   "message": str(message)}
        payload.update(_CONTEXT)
        open_span = reg.current_span()
        if open_span is not None:
            payload["span"] = open_span.name
            payload["span_id"] = open_span.span_id
        if fields:
            payload.update(fields)
        # Fold into the trace (events merge across processes) ...
        reg.event(LOG_EVENT_PREFIX + level, **payload)
        # ... into the black box ...
        flight = reg.flight
        if flight is not None:
            flight.on_log(payload)
        # ... and, when configured, out as a JSON line.
        stream = _STREAM
        if stream is not None:
            stream.write(json.dumps({"t": time.time(), **payload},
                                    default=str) + "\n")
        return payload

    def debug(self, message: str, **fields) -> dict | None:
        return self.log("debug", message, **fields)

    def info(self, message: str, **fields) -> dict | None:
        return self.log("info", message, **fields)

    def warning(self, message: str, **fields) -> dict | None:
        return self.log("warning", message, **fields)

    def error(self, message: str, **fields) -> dict | None:
        return self.log("error", message, **fields)


def get_logger(name: str) -> StructuredLogger:
    """Fetch-or-create the named logger (loggers are stateless handles;
    one instance per name is kept for identity)."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name)
    return logger
