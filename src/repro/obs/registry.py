"""The global observability registry.

One process-wide :class:`Registry` collects every span, counter, gauge
and event the instrumented code paths emit.  It is deliberately *not*
thread-local: the simulated cluster runs every worker in one process, so
a single registry sees the whole picture, and :func:`reset` gives each
benchmark run a clean slate.

Records are bounded (``max_records`` per kind); once the cap is hit new
records are dropped and counted, so a long training run cannot grow
memory without bound.  Aggregate statistics (counters, gauges, span
aggregation in the summary) remain exact regardless.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field

from .histogram import Histogram
from .metrics import Counter, Gauge
from .timeseries import EpochLog

#: prefix of the latency histograms the registry derives per span name.
SPAN_HISTOGRAM_PREFIX = "span."

__all__ = [
    "SpanRecord",
    "EventRecord",
    "Registry",
    "SPAN_HISTOGRAM_PREFIX",
    "get_registry",
    "reset",
    "enable",
    "disable",
]


@dataclass
class SpanRecord:
    """One finished (or still-open) timed region."""

    span_id: int
    name: str
    start: float                  # seconds since the registry's origin
    attrs: dict = field(default_factory=dict)
    duration: float = 0.0
    parent_id: int | None = None
    depth: int = 0
    #: modeled (simulated) durations are flagged so exporters can tell
    #: them apart from wall-clock measurements
    simulated: bool = False
    #: set once by end_span; a second end of the same record is a no-op
    closed: bool = field(default=False, compare=False, repr=False)

    def to_dict(self) -> dict:
        out = {
            "id": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.simulated:
            out["simulated"] = True
        if self.attrs:
            out["attrs"] = self.attrs
        return out


@dataclass
class EventRecord:
    """A point-in-time annotation (no duration)."""

    name: str
    time: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"name": self.name, "time": self.time}
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Registry:
    """Collects spans, events, counters and gauges for one run."""

    def __init__(self, max_records: int = 200_000):
        self.max_records = int(max_records)
        self._init_state()

    def _init_state(self) -> None:
        # Bumped on every reset so memoized counter handles (see
        # profile.record_op) know their cached Counter objects are stale.
        self.generation = getattr(self, "generation", -1) + 1
        # The flight-recorder tap (repro.obs.flight) deliberately
        # survives reset: workers reset their registry every epoch, and
        # the black box must keep recording across that boundary.
        self.flight = getattr(self, "flight", None)
        self.origin = time.perf_counter()
        #: one id per measurement window; the multiprocess runtime
        #: propagates the parent's to every worker so merged traces can
        #: be recognized as one run
        self.trace_id = secrets.token_hex(8)
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.epoch_logs: dict[str, EpochLog] = {}
        self.dropped_spans = 0
        self.dropped_events = 0
        self.enabled = True
        self._stack: list[SpanRecord] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded data and re-zero the clock."""
        self._init_state()

    def now(self) -> float:
        """Seconds since this registry's origin (monotonic)."""
        return time.perf_counter() - self.origin

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin_span(self, name: str, attrs: dict,
                   simulated: bool = False) -> SpanRecord:
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            name=name,
            start=self.now(),
            attrs=attrs,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            simulated=simulated,
        )
        self._next_id += 1
        self._stack.append(record)
        return record

    def end_span(self, record: SpanRecord,
                 duration: float | None = None) -> None:
        if record.closed:
            # Stale/double end: the record already has its duration and
            # was already (maybe) stored; ending it again must not
            # disturb currently open spans.
            return
        if duration is None:
            duration = self.now() - record.start
        record.duration = float(duration)
        record.closed = True
        # Work-profiled spans (see repro.obs.profile) close with a derived
        # arithmetic-intensity figure so every exported span carries the
        # roofline coordinate alongside its raw FLOP/byte counts.
        attrs = record.attrs
        if "flops" in attrs:
            moved = attrs.get("bytes_read", 0.0) + attrs.get("bytes_written", 0.0)
            attrs["arithmetic_intensity"] = (
                attrs["flops"] / moved if moved > 0 else 0.0
            )
        # Tolerate out-of-order exits defensively: pop up to the record —
        # but only if the record is actually on the stack, otherwise a
        # stale end would silently discard every open span.
        if any(open_span is record for open_span in self._stack):
            while self._stack:
                if self._stack.pop() is record:
                    break
        # Per-span-name latency histograms stay exact regardless of the
        # record cap or enabled state (O(1) aggregate, like counters).
        self.histogram(SPAN_HISTOGRAM_PREFIX + record.name).observe(
            record.duration
        )
        # The flight ring sees every close, even past the record cap or
        # while disabled — it is a bounded plane of its own, and the
        # most recent spans are exactly what a post-mortem needs.
        if self.flight is not None:
            self.flight.on_span(record)
        if not self.enabled:
            return
        if len(self.spans) >= self.max_records:
            self.dropped_spans += 1
            return
        self.spans.append(record)

    def current_span(self) -> SpanRecord | None:
        """The innermost open span, or ``None`` (used by the structured
        logger to stamp records with their enclosing span)."""
        return self._stack[-1] if self._stack else None

    def record_span(self, name: str, duration: float, *,
                    simulated: bool = True, **attrs) -> SpanRecord:
        """Record a span whose duration is already known (e.g. modeled
        network time), rather than measured by entry/exit.

        A *measured* duration (``simulated=False``) describes wall time
        that just elapsed — a barrier wait, a request latency — so the
        span is backdated to when that interval began; stamping it at
        record time would claim ``duration`` seconds of the future and
        overlap whatever runs next on the timeline.  Simulated spans
        keep their record-time start: their durations are modeled, not
        intervals of this clock.
        """
        record = self.begin_span(name, attrs, simulated=simulated)
        self.end_span(record, duration=duration)
        if not simulated:
            record.start = max(record.start - record.duration, 0.0)
        return record

    def merge_spans(self, records: list[dict], *, clock_offset: float = 0.0,
                    rank: int | None = None,
                    observe_histograms: bool = True) -> int:
        """Ingest span records exported from another process's registry.

        The multiprocess runtime runs one registry per worker process;
        each worker ships ``[span.to_dict() ...]`` to the parent, which
        merges them here so exports, histograms and straggler analysis
        see the whole cluster.

        ``clock_offset`` (seconds) is added to every start time —
        workers publish their registry origin at spawn, so the parent
        can rebase worker-clock starts onto its own timeline and the
        merged Chrome trace shows one coherent set of per-rank lanes.
        Parent/child nesting survives the process boundary: worker-local
        span/parent ids are remapped onto fresh parent ids and the
        recorded depth is preserved.  ``rank``, when given, is stamped
        into the attrs as ``worker`` (unless the span already carries
        one) so aggregation can group by rank.

        Merging honors ``enabled`` consistently: while the registry is
        disabled nothing is ingested — not even the derived span
        histograms, which the producing process already observed
        (re-observing on a retried merge would double-count them).  Set
        ``observe_histograms=False`` when the worker's own histograms
        arrive separately via :meth:`merge_metrics`, for the same
        reason.  Returns the number of records stored.
        """
        if not self.enabled:
            return 0
        # Two passes: spans close child-before-parent, so a child's
        # ``parent`` refers to an id that appears *later* in the list —
        # the full id remap must exist before any record is built.
        id_map: dict[int, int] = {}
        new_ids: list[int] = []
        for rec in records:
            new_id = self._next_id
            self._next_id += 1
            new_ids.append(new_id)
            if "id" in rec:
                id_map[rec["id"]] = new_id
        stored = 0
        for rec, new_id in zip(records, new_ids):
            attrs = dict(rec.get("attrs", {}))
            if rank is not None:
                attrs.setdefault("worker", rank)
            record = SpanRecord(
                span_id=new_id,
                name=rec["name"],
                start=float(rec.get("start", 0.0)) + clock_offset,
                attrs=attrs,
                duration=float(rec.get("duration", 0.0)),
                parent_id=id_map.get(rec.get("parent")),
                depth=int(rec.get("depth", 0)),
                simulated=bool(rec.get("simulated", False)),
            )
            record.closed = True
            if observe_histograms:
                self.histogram(SPAN_HISTOGRAM_PREFIX + record.name).observe(
                    record.duration
                )
            if len(self.spans) >= self.max_records:
                self.dropped_spans += 1
                continue
            self.spans.append(record)
            stored += 1
        return stored

    # ------------------------------------------------------------------
    # cross-process metric merging
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Serializable snapshot of every non-span aggregate — the
        payload a worker ships so :meth:`merge_metrics` can fold its
        counters, gauges, histograms and events into the parent."""
        return {
            "counters": {n: c.to_dict() for n, c in self.counters.items()},
            "gauges": {n: g.to_dict() for n, g in self.gauges.items()},
            "histograms": {
                n: h.to_dict() for n, h in self.histograms.items()
            },
            "events": [e.to_dict() for e in self.events],
        }

    def merge_metrics(self, snapshot: dict | None, *,
                      clock_offset: float = 0.0,
                      rank: int | None = None) -> None:
        """Fold another registry's :meth:`metrics_snapshot` into this one.

        Counters add totals/currents/counts (peaks take the high-water
        mark), gauges adopt the incoming value (peaks merge), histograms
        merge bucket-exact, and events are re-recorded with
        ``clock_offset`` applied and ``worker=rank`` stamped.  Counters,
        gauges and histograms merge even while recording is disabled —
        they are O(1) aggregates that always update, matching the live
        semantics; events respect ``enabled`` and the record cap.
        """
        if not snapshot:
            return
        for name, data in snapshot.get("counters", {}).items():
            self.counter(name).merge_dict(data)
        for name, data in snapshot.get("gauges", {}).items():
            self.gauge(name).merge_dict(data)
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_dict(data)
        for rec in snapshot.get("events", ()):
            if not self.enabled:
                break
            if len(self.events) >= self.max_records:
                self.dropped_events += 1
                continue
            attrs = dict(rec.get("attrs", {}))
            if rank is not None:
                attrs.setdefault("worker", rank)
            self.events.append(EventRecord(
                name=rec["name"],
                time=float(rec.get("time", 0.0)) + clock_offset,
                attrs=attrs,
            ))

    # ------------------------------------------------------------------
    # events / counters / gauges
    # ------------------------------------------------------------------
    def event(self, name: str, **attrs) -> None:
        record = None
        if self.flight is not None:
            # The flight ring records events even past the cap or while
            # disabled (bounded on its own, like the span tap above).
            record = EventRecord(name=name, time=self.now(), attrs=attrs)
            self.flight.on_event(record)
        if not self.enabled:
            return
        if len(self.events) >= self.max_records:
            self.dropped_events += 1
            return
        if record is None:
            record = EventRecord(name=name, time=self.now(), attrs=attrs)
        self.events.append(record)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def epoch_log(self, name: str = "train") -> EpochLog:
        log = self.epoch_logs.get(name)
        if log is None:
            log = self.epoch_logs[name] = EpochLog(name)
        return log


_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global registry all instrumentation writes to."""
    return _REGISTRY


def reset() -> None:
    """Clear the global registry (start of a run / test / benchmark)."""
    _REGISTRY.reset()


def enable() -> None:
    """Resume recording spans and events (counters always record)."""
    _REGISTRY.enabled = True


def disable() -> None:
    """Stop recording spans/events; timing still works, records are not
    kept.  Counters and gauges keep updating — they are O(1) state."""
    _REGISTRY.enabled = False
