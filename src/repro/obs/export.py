"""Exporters: JSON trace files and a human-readable summary table.

The JSON schema (version 1) is::

    {
      "schema": "repro.obs/1",
      "meta": {"dropped_spans": 0, "dropped_events": 0},
      "spans":    [{"id", "name", "start", "duration", "depth",
                    "parent"?, "simulated"?, "attrs"?}, ...],
      "events":   [{"name", "time", "attrs"?}, ...],
      "counters": {name: {"total", "current", "peak", "count"}, ...},
      "gauges":   {name: {"value", "peak", "count"}, ...}
    }

``tools/trace_summary.py`` pretty-prints this file from the command
line; :func:`summary` renders the same aggregation for a live registry.
"""

from __future__ import annotations

import json
from typing import Iterable

from .registry import Registry, get_registry

__all__ = ["to_dict", "export_json", "summary", "aggregate_spans"]

SCHEMA = "repro.obs/1"


def to_dict(registry: Registry | None = None) -> dict:
    """Serializable snapshot of a registry (the global one by default)."""
    reg = registry or get_registry()
    return {
        "schema": SCHEMA,
        "meta": {
            "dropped_spans": reg.dropped_spans,
            "dropped_events": reg.dropped_events,
        },
        "spans": [s.to_dict() for s in reg.spans],
        "events": [e.to_dict() for e in reg.events],
        "counters": {name: c.to_dict() for name, c in reg.counters.items()},
        "gauges": {name: g.to_dict() for name, g in reg.gauges.items()},
    }


def export_json(path: str, registry: Registry | None = None) -> None:
    """Write the registry snapshot as a JSON trace file."""
    with open(path, "w") as fh:
        json.dump(to_dict(registry), fh, indent=1)
        fh.write("\n")


def aggregate_spans(spans: Iterable) -> dict[str, dict]:
    """Aggregate span dicts/records by name -> count/total/max stats.

    Accepts either :class:`SpanRecord` objects or the dicts found in an
    exported trace, so the CLI trace tool can share this code path.
    """
    stats: dict[str, dict] = {}
    for s in spans:
        if isinstance(s, dict):
            name, dur = s["name"], float(s["duration"])
            simulated = bool(s.get("simulated"))
        else:
            name, dur, simulated = s.name, s.duration, s.simulated
        row = stats.get(name)
        if row is None:
            row = stats[name] = {
                "count": 0, "total": 0.0, "max": 0.0, "simulated": simulated,
            }
        row["count"] += 1
        row["total"] += dur
        row["max"] = max(row["max"], dur)
    return stats


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:9.3f}ms"
    return f"{seconds * 1e6:9.1f}us"


def _format_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n):,} B"
        n /= 1024.0
    return f"{n:,.1f} TB"


def render_summary(
    span_stats: dict[str, dict],
    counters: dict[str, dict],
    gauges: dict[str, dict],
    events: list[dict],
    meta: dict | None = None,
) -> str:
    """Render aggregated trace data as a fixed-width text table."""
    lines: list[str] = []
    if span_stats:
        lines.append("spans (aggregated by name):")
        lines.append(f"  {'name':<34} {'count':>7} {'total':>11} "
                     f"{'mean':>11} {'max':>11}")
        grand = sum(r["total"] for r in span_stats.values())
        for name in sorted(span_stats, key=lambda n: -span_stats[n]["total"]):
            row = span_stats[name]
            mean = row["total"] / max(row["count"], 1)
            tag = "~" if row.get("simulated") else " "
            lines.append(
                f" {tag}{name:<34} {row['count']:>7} "
                f"{_format_seconds(row['total'])} {_format_seconds(mean)} "
                f"{_format_seconds(row['max'])}"
            )
        lines.append(f"  {'(sum of spans; ~ = simulated)':<34} "
                     f"{'':>7} {_format_seconds(grand)}")
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            c = counters[name]
            rendered = (
                f"total {_format_bytes(c['total'])}  "
                f"peak {_format_bytes(c['peak'])}"
                if "bytes" in name
                else f"total {c['total']:,.0f}  peak {c['peak']:,.0f}"
            )
            lines.append(f"  {name:<36} {rendered}  (n={c['count']})")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            g = gauges[name]
            peak = g["peak"]
            peak_s = "n/a" if peak is None else f"{peak:,.4g}"
            lines.append(f"  {name:<36} value {g['value']:,.4g}  peak {peak_s}")
    if events:
        lines.append("events (by name):")
        by_name: dict[str, int] = {}
        for e in events:
            by_name[e["name"]] = by_name.get(e["name"], 0) + 1
        for name in sorted(by_name):
            lines.append(f"  {name:<36} x{by_name[name]}")
    if meta and (meta.get("dropped_spans") or meta.get("dropped_events")):
        lines.append(
            f"  [capped: dropped {meta.get('dropped_spans', 0)} spans, "
            f"{meta.get('dropped_events', 0)} events]"
        )
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)


def summary(registry: Registry | None = None) -> str:
    """Human-readable summary of everything recorded so far."""
    snapshot = to_dict(registry)
    return render_summary(
        aggregate_spans(snapshot["spans"]),
        snapshot["counters"],
        snapshot["gauges"],
        snapshot["events"],
        snapshot["meta"],
    )
