"""Exporters: JSON traces, Chrome traces, Prometheus text, summaries.

The native JSON schema (version 2) is::

    {
      "schema": "repro.obs/2",
      "meta": {"dropped_spans": 0, "dropped_events": 0},
      "spans":    [{"id", "name", "start", "duration", "depth",
                    "parent"?, "simulated"?, "attrs"?}, ...],
      "events":   [{"name", "time", "attrs"?}, ...],
      "counters": {name: {"total", "current", "peak", "count"}, ...},
      "gauges":   {name: {"value", "peak", "count"}, ...},
      "histograms": {name: {"count", "sum", "min", "max",
                            "p50", "p90", "p99", "buckets"}, ...},
      "epochs":   {name: {"name", "rows": [{"epoch", ...}, ...]}, ...}
    }

Version 2 is a superset of version 1 (readers of /1 traces keep
working; the new sections default to empty).  Two standard formats are
also supported:

* :func:`export_chrome_trace` — Chrome Trace Event Format, loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev;
* :func:`export_prometheus` — Prometheus text exposition (counters,
  gauges and histograms with cumulative ``le`` buckets).

``tools/trace_summary.py`` pretty-prints native traces from the command
line; :func:`summary` renders the same aggregation for a live registry.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from .profile import WORK_RATE_SPANS
from .registry import Registry, get_registry

__all__ = [
    "to_dict",
    "export_json",
    "summary",
    "aggregate_spans",
    "to_chrome_trace",
    "export_chrome_trace",
    "to_prometheus",
    "export_prometheus",
]

SCHEMA = "repro.obs/2"


def to_dict(registry: Registry | None = None) -> dict:
    """Serializable snapshot of a registry (the global one by default)."""
    reg = registry or get_registry()
    return {
        "schema": SCHEMA,
        "meta": {
            "trace_id": reg.trace_id,
            "dropped_spans": reg.dropped_spans,
            "dropped_events": reg.dropped_events,
        },
        "spans": [s.to_dict() for s in reg.spans],
        "events": [e.to_dict() for e in reg.events],
        "counters": {name: c.to_dict() for name, c in reg.counters.items()},
        "gauges": {name: g.to_dict() for name, g in reg.gauges.items()},
        "histograms": {
            name: h.to_dict() for name, h in reg.histograms.items()
        },
        "epochs": {
            name: log.to_dict() for name, log in reg.epoch_logs.items()
        },
    }


def export_json(path: str, registry: Registry | None = None) -> None:
    """Write the registry snapshot as a JSON trace file."""
    with open(path, "w") as fh:
        json.dump(to_dict(registry), fh, indent=1)
        fh.write("\n")


# ----------------------------------------------------------------------
# Chrome Trace Event Format (chrome://tracing, Perfetto)
# ----------------------------------------------------------------------

#: pid lanes: measured spans vs modeled (simulated) durations.  Modeled
#: spans never occupied wall time, so mixing them into the measured
#: timeline would draw misleading overlaps.
_PID_MEASURED = 0
_PID_SIMULATED = 1

#: non-integer worker labels are mapped onto tids starting here, well
#: clear of any realistic integer worker rank
_LABEL_TID_BASE = 10_000


def _worker_label_tids(spans) -> dict[str, int]:
    """Stable tid per distinct non-integer ``worker`` label.

    Labels are sorted before numbering, so the mapping depends only on
    the *set* of labels present, not on span order.
    """
    labels: set[str] = set()
    for s in spans:
        worker = s.attrs.get("worker", 0)
        try:
            int(worker)
        except (TypeError, ValueError):
            labels.add(str(worker))
    return {
        label: _LABEL_TID_BASE + i for i, label in enumerate(sorted(labels))
    }


def to_chrome_trace(registry: Registry | None = None,
                    pid_offset: int = 0) -> dict:
    """Registry snapshot in Chrome Trace Event Format.

    Spans become complete events (``ph: "X"``, microsecond timestamps);
    point events become global instants (``ph: "i"``).  Measured and
    simulated spans live in separate process lanes, and spans carrying a
    ``worker`` attribute are placed on that worker's thread so the
    per-worker timelines of the simulated cluster line up visually.
    Non-integer worker labels get distinct stable tids (>= 10000) with a
    ``thread_name`` metadata record and a ``trace.worker_label_coerced``
    instant documenting each mapping.  Spans named in
    ``profile.WORK_RATE_SPANS`` that carry work attribution additionally
    emit counter events (``ph: "C"``) so FLOP/s and bytes/s render as
    tracks in Perfetto.  ``pid_offset`` shifts both lanes, letting
    callers merge several runs into one file (``tools/bench.py`` gives
    each config its own lanes).
    """
    reg = registry or get_registry()
    trace_events: list[dict] = [
        {
            "ph": "M", "name": "process_name", "pid": pid_offset + pid,
            "tid": 0, "args": {"name": label},
        }
        for pid, label in (
            (_PID_MEASURED, "repro (measured)"),
            (_PID_SIMULATED, "repro (simulated)"),
        )
    ]
    # Integer worker ranks get named lanes too, so a merged multiprocess
    # trace reads "rank 0 / rank 1 / ..." instead of bare thread ids.
    int_tids: set[int] = set()
    for s in reg.spans:
        worker = s.attrs.get("worker")
        if worker is None:
            continue
        try:
            int_tids.add(int(worker))
        except (TypeError, ValueError):
            pass
    for tid in sorted(int_tids):
        trace_events.append({
            "ph": "M", "name": "thread_name",
            "pid": pid_offset + _PID_MEASURED, "tid": tid,
            "args": {"name": f"rank {tid}"},
        })
    label_tids = _worker_label_tids(reg.spans)
    for label, tid in label_tids.items():
        trace_events.append({
            "ph": "M", "name": "thread_name",
            "pid": pid_offset + _PID_MEASURED, "tid": tid,
            "args": {"name": f"worker {label}"},
        })
        trace_events.append({
            "ph": "i", "s": "g", "name": "trace.worker_label_coerced",
            "pid": pid_offset + _PID_MEASURED, "tid": tid, "ts": 0.0,
            "args": {"worker": label, "tid": tid},
        })
    rate_names = set(WORK_RATE_SPANS)
    for s in reg.spans:
        pid = _PID_SIMULATED if s.simulated else _PID_MEASURED
        worker = s.attrs.get("worker", 0)
        try:
            tid = int(worker)
        except (TypeError, ValueError):
            tid = label_tids[str(worker)]
        trace_events.append({
            "ph": "X",
            "name": s.name,
            "pid": pid_offset + pid,
            "tid": tid,
            "ts": s.start * 1e6,
            "dur": s.duration * 1e6,
            "args": dict(s.attrs),
        })
        if s.name in rate_names and s.duration > 0 and "flops" in s.attrs:
            flops_rate = s.attrs.get("flops", 0.0) / s.duration
            bytes_rate = (
                s.attrs.get("bytes_read", 0.0)
                + s.attrs.get("bytes_written", 0.0)
            ) / s.duration
            for name, value, ts in (
                ("work.flops_per_sec", flops_rate, s.start),
                ("work.bytes_per_sec", bytes_rate, s.start),
                ("work.flops_per_sec", 0.0, s.start + s.duration),
                ("work.bytes_per_sec", 0.0, s.start + s.duration),
            ):
                trace_events.append({
                    "ph": "C", "name": name,
                    "pid": pid_offset + pid, "tid": 0,
                    "ts": ts * 1e6, "args": {"value": value},
                })
    for e in reg.events:
        trace_events.append({
            "ph": "i",
            "s": "g",
            "name": e.name,
            "pid": pid_offset + _PID_MEASURED,
            "tid": 0,
            "ts": e.time * 1e6,
            "args": dict(e.attrs),
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": reg.trace_id},
    }


def export_chrome_trace(path: str, registry: Registry | None = None) -> None:
    """Write a ``chrome://tracing``/Perfetto-loadable trace file."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(registry), fh)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus charset."""
    name = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def to_prometheus(registry: Registry | None = None) -> str:
    """Registry snapshot in the Prometheus text exposition format.

    Counters expose ``<name>_total`` (plus ``_peak`` and ``_current``
    gauges for their high-water semantics), gauges map directly, and
    histograms expose cumulative ``le``-labelled buckets with ``_sum``
    and ``_count`` — scrape-ready for a pushgateway or node exporter's
    textfile collector.
    """
    reg = registry or get_registry()
    lines: list[str] = []
    for name in sorted(reg.counters):
        c = reg.counters[name]
        base = _prom_name(name)
        lines.append(f"# TYPE {base}_total counter")
        lines.append(f"{base}_total {_prom_float(c.total)}")
        lines.append(f"# TYPE {base}_peak gauge")
        lines.append(f"{base}_peak {_prom_float(c.peak)}")
        lines.append(f"# TYPE {base}_current gauge")
        lines.append(f"{base}_current {_prom_float(c.current)}")
    for name in sorted(reg.gauges):
        g = reg.gauges[name]
        base = _prom_name(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_prom_float(g.value)}")
    for name in sorted(reg.histograms):
        h = reg.histograms[name]
        base = _prom_name(name)
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bound, count in h.bucket_bounds():
            cumulative += count
            lines.append(
                f'{base}_bucket{{le="{_prom_float(bound)}"}} {cumulative}'
            )
        lines.append(f'{base}_bucket{{le="+Inf"}} {h.count}')
        lines.append(f"{base}_sum {_prom_float(h.sum)}")
        lines.append(f"{base}_count {h.count}")
    return "\n".join(lines) + "\n" if lines else ""


def export_prometheus(path: str, registry: Registry | None = None) -> None:
    """Write the Prometheus text exposition to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_prometheus(registry))


def aggregate_spans(spans: Iterable) -> dict[str, dict]:
    """Aggregate span dicts/records by name -> count/total/max stats.

    Accepts either :class:`SpanRecord` objects or the dicts found in an
    exported trace, so the CLI trace tool can share this code path.
    """
    stats: dict[str, dict] = {}
    for s in spans:
        if isinstance(s, dict):
            name, dur = s["name"], float(s["duration"])
            simulated = bool(s.get("simulated"))
        else:
            name, dur, simulated = s.name, s.duration, s.simulated
        row = stats.get(name)
        if row is None:
            row = stats[name] = {
                "count": 0, "total": 0.0, "max": 0.0, "simulated": simulated,
            }
        row["count"] += 1
        row["total"] += dur
        row["max"] = max(row["max"], dur)
    return stats


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:9.3f}s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:9.3f}ms"
    return f"{seconds * 1e6:9.1f}us"


def _format_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n):,} B"
        n /= 1024.0
    return f"{n:,.1f} TB"


def render_summary(
    span_stats: dict[str, dict],
    counters: dict[str, dict],
    gauges: dict[str, dict],
    events: list[dict],
    meta: dict | None = None,
    histograms: dict[str, dict] | None = None,
    epochs: dict[str, dict] | None = None,
) -> str:
    """Render aggregated trace data as a fixed-width text table."""
    lines: list[str] = []
    if span_stats:
        lines.append("spans (aggregated by name):")
        lines.append(f"  {'name':<34} {'count':>7} {'total':>11} "
                     f"{'mean':>11} {'max':>11}")
        grand = sum(r["total"] for r in span_stats.values())
        for name in sorted(span_stats, key=lambda n: -span_stats[n]["total"]):
            row = span_stats[name]
            mean = row["total"] / max(row["count"], 1)
            tag = "~" if row.get("simulated") else " "
            lines.append(
                f" {tag}{name:<34} {row['count']:>7} "
                f"{_format_seconds(row['total'])} {_format_seconds(mean)} "
                f"{_format_seconds(row['max'])}"
            )
        lines.append(f"  {'(sum of spans; ~ = simulated)':<34} "
                     f"{'':>7} {_format_seconds(grand)}")
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            c = counters[name]
            rendered = (
                f"total {_format_bytes(c['total'])}  "
                f"peak {_format_bytes(c['peak'])}"
                if "bytes" in name
                else f"total {c['total']:,.0f}  peak {c['peak']:,.0f}"
            )
            lines.append(f"  {name:<36} {rendered}  (n={c['count']})")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            g = gauges[name]
            peak = g["peak"]
            peak_s = "n/a" if peak is None else f"{peak:,.4g}"
            lines.append(f"  {name:<36} value {g['value']:,.4g}  peak {peak_s}")
    if histograms:
        lines.append("histograms (percentiles; span.* are seconds):")
        lines.append(f"  {'name':<34} {'count':>7} {'p50':>11} "
                     f"{'p90':>11} {'p99':>11} {'max':>11}")
        for name in sorted(histograms):
            h = histograms[name]
            if not h["count"]:
                continue
            if name.startswith("span."):
                fmt = _format_seconds
            elif "bytes" in name:
                fmt = lambda v: f"{_format_bytes(v):>11}"  # noqa: E731
            else:
                fmt = lambda v: f"{v:>11.4g}"  # noqa: E731
            lines.append(
                f"  {name:<34} {h['count']:>7} "
                f"{fmt(h['p50'])} {fmt(h['p90'])} "
                f"{fmt(h['p99'])} {fmt(h['max'])}"
            )
    if epochs:
        lines.append("epoch series:")
        for name in sorted(epochs):
            rows = epochs[name].get("rows", [])
            keys = [k for k in (rows[-1] if rows else {}) if k != "epoch"]
            lines.append(f"  {name:<36} {len(rows)} epochs "
                         f"({', '.join(keys)})")
    if events:
        lines.append("events (by name):")
        by_name: dict[str, int] = {}
        for e in events:
            by_name[e["name"]] = by_name.get(e["name"], 0) + 1
        for name in sorted(by_name):
            lines.append(f"  {name:<36} x{by_name[name]}")
    if meta and (meta.get("dropped_spans") or meta.get("dropped_events")):
        lines.append(
            f"  [capped: dropped {meta.get('dropped_spans', 0)} spans, "
            f"{meta.get('dropped_events', 0)} events]"
        )
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)


def summary(registry: Registry | None = None) -> str:
    """Human-readable summary of everything recorded so far."""
    snapshot = to_dict(registry)
    return render_summary(
        aggregate_spans(snapshot["spans"]),
        snapshot["counters"],
        snapshot["gauges"],
        snapshot["events"],
        snapshot["meta"],
        histograms=snapshot["histograms"],
        epochs=snapshot["epochs"],
    )
