"""Straggler analysis over distributed spans.

The distributed trainer emits one ``dist.compute`` (measured, scaled by
the worker's modeled speed) and one ``dist.comm`` (simulated) span per
worker per layer.  Synchronous data-parallel training runs at the pace
of the slowest worker, so the quantity that matters is not total time
but *skew*: how much slower the worst worker is than the median.  This
module aggregates those spans into a :class:`StragglerReport`:

* per-worker compute/comm totals;
* the slowest worker and its skew ratio (max / median compute);
* workers exceeding a configurable straggler threshold;
* the critical-path worker per layer (who the barrier waited for).

Works on live registry records or on the ``"spans"`` list of an
exported JSON trace, like the other aggregation helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .registry import get_registry

__all__ = ["StragglerReport", "straggler_report", "render_straggler_report"]

COMPUTE_SPAN = "dist.compute"
COMM_SPAN = "dist.comm"


@dataclass
class StragglerReport:
    """Per-worker skew summary of one (or more) distributed runs."""

    #: worker -> {"compute": s, "comm": s}
    per_worker: dict[int, dict] = field(default_factory=dict)
    #: worker with the largest total compute time (None when no spans)
    slowest_worker: int | None = None
    #: max / median per-worker compute (1.0 when balanced or empty)
    skew_ratio: float = 1.0
    #: workers whose compute exceeds threshold * median
    stragglers: list[int] = field(default_factory=list)
    threshold: float = 1.2
    #: layer -> worker whose compute + comm bounded that layer's barrier
    critical_path: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "per_worker": {str(w): dict(v) for w, v in self.per_worker.items()},
            "slowest_worker": self.slowest_worker,
            "skew_ratio": self.skew_ratio,
            "stragglers": list(self.stragglers),
            "threshold": self.threshold,
            "critical_path": {str(l): w for l, w in self.critical_path.items()},
        }

    def render(self) -> str:
        return render_straggler_report(self)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def straggler_report(
    spans: Iterable | None = None,
    threshold: float = 1.2,
    registry=None,
) -> StragglerReport:
    """Aggregate ``dist.compute``/``dist.comm`` spans into a skew report.

    Parameters
    ----------
    spans:
        Span records or exported-trace dicts; defaults to the global
        registry's records.
    threshold:
        A worker whose total compute exceeds ``threshold * median`` is
        reported as a straggler.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if spans is None:
        spans = (registry or get_registry()).spans

    per_worker: dict[int, dict] = {}
    # (layer, worker) -> compute + comm seconds, for the critical path
    layer_time: dict[tuple[int, int], float] = {}
    for s in spans:
        if isinstance(s, dict):
            name, duration = s["name"], float(s["duration"])
            attrs = s.get("attrs") or {}
        else:
            name, duration, attrs = s.name, s.duration, s.attrs
        if name not in (COMPUTE_SPAN, COMM_SPAN) or "worker" not in attrs:
            continue
        worker = int(attrs["worker"])
        row = per_worker.setdefault(worker, {"compute": 0.0, "comm": 0.0})
        kind = "compute" if name == COMPUTE_SPAN else "comm"
        row[kind] += duration
        layer = attrs.get("layer")
        if layer is not None:
            key = (int(layer), worker)
            layer_time[key] = layer_time.get(key, 0.0) + duration

    report = StragglerReport(per_worker=per_worker, threshold=float(threshold))
    if not per_worker:
        return report

    computes = {w: row["compute"] for w, row in per_worker.items()}
    report.slowest_worker = max(computes, key=lambda w: (computes[w], -w))
    median = _median(list(computes.values()))
    worst = computes[report.slowest_worker]
    report.skew_ratio = worst / median if median > 0 else 1.0
    if median > 0:
        report.stragglers = sorted(
            w for w, c in computes.items() if c > threshold * median
        )
    for (layer, worker), seconds in layer_time.items():
        current = report.critical_path.get(layer)
        if current is None or seconds > layer_time[(layer, current)]:
            report.critical_path[layer] = worker
    return report


def render_straggler_report(report: StragglerReport) -> str:
    """Fixed-width text rendering of a :class:`StragglerReport`."""
    if not report.per_worker:
        return "(no distributed spans recorded)"
    lines = [f"  {'worker':>6} {'compute':>11} {'comm':>11} {'share':>7}"]
    total = sum(r["compute"] for r in report.per_worker.values()) or 1.0
    for worker in sorted(report.per_worker):
        row = report.per_worker[worker]
        mark = ""
        if worker in report.stragglers:
            mark = "  <- straggler"
        elif worker == report.slowest_worker:
            mark = "  <- slowest"
        lines.append(
            f"  {worker:>6} {row['compute'] * 1e3:9.3f}ms "
            f"{row['comm'] * 1e3:9.3f}ms {row['compute'] / total:6.1%}{mark}"
        )
    lines.append(
        f"  skew ratio (max/median compute): {report.skew_ratio:.2f} "
        f"(straggler threshold {report.threshold:.2f})"
    )
    if report.critical_path:
        path = " ".join(
            f"L{layer}->w{worker}"
            for layer, worker in sorted(report.critical_path.items())
        )
        lines.append(f"  critical path per layer: {path}")
    return "\n".join(lines)
