"""Straggler analysis over distributed spans.

The distributed trainer emits one ``dist.compute`` (measured, scaled by
the worker's modeled speed) and one ``dist.comm`` (simulated) span per
worker per layer.  Synchronous data-parallel training runs at the pace
of the slowest worker, so the quantity that matters is not total time
but *skew*: how much slower the worst worker is than the median.  This
module aggregates those spans into a :class:`StragglerReport`:

* per-worker compute/comm totals;
* the slowest worker and its skew ratio (max / median compute);
* workers exceeding a configurable straggler threshold;
* the critical-path worker per layer (who the barrier waited for).

Works on live registry records or on the ``"spans"`` list of an
exported JSON trace, like the other aggregation helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .registry import get_registry

__all__ = [
    "StragglerReport",
    "straggler_report",
    "render_straggler_report",
    "StallReport",
    "stall_report",
    "render_stall_report",
    "backend_report",
    "render_backend_report",
]

COMPUTE_SPAN = "dist.compute"
COMM_SPAN = "dist.comm"

#: event name the multiprocess runtime's stall poll emits (kept in sync
#: with ``obs.live.STALL_EVENT`` — analysis reads traces, not the slab)
STALL_EVENT_NAME = "dist.worker_stalled"

#: name of the hybrid executor's per-level backend event (kept in sync
#: with ``core.hybrid.BACKEND_EVENT`` — obs must not import core)
BACKEND_EVENT = "aggregation.backend"

#: bottom-up HDG level order, for stable report sorting
_LEVEL_ORDER = {"bottom": 0, "instances": 1, "schema": 2}


@dataclass
class StragglerReport:
    """Per-worker skew summary of one (or more) distributed runs."""

    #: worker -> {"compute": s, "comm": s, "flops": f, "bytes": b}
    per_worker: dict[int, dict] = field(default_factory=dict)
    #: worker with the largest total compute time (None when no spans)
    slowest_worker: int | None = None
    #: max / median per-worker compute (1.0 when balanced or empty)
    skew_ratio: float = 1.0
    #: max / median per-worker FLOPs — distinguishes "this worker was
    #: handed more work" from "this worker is slower at the same work"
    work_skew_ratio: float = 1.0
    #: workers whose compute exceeds threshold * median
    stragglers: list[int] = field(default_factory=list)
    threshold: float = 1.2
    #: straggler worker -> "more work" | "slower worker" (only workers in
    #: ``stragglers`` appear; requires profiled dist.compute spans)
    diagnosis: dict[int, str] = field(default_factory=dict)
    #: layer -> worker whose compute + comm bounded that layer's barrier
    critical_path: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "per_worker": {str(w): dict(v) for w, v in self.per_worker.items()},
            "slowest_worker": self.slowest_worker,
            "skew_ratio": self.skew_ratio,
            "work_skew_ratio": self.work_skew_ratio,
            "stragglers": list(self.stragglers),
            "threshold": self.threshold,
            "diagnosis": {str(w): d for w, d in self.diagnosis.items()},
            "critical_path": {str(l): w for l, w in self.critical_path.items()},
        }

    def render(self) -> str:
        return render_straggler_report(self)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def straggler_report(
    spans: Iterable | None = None,
    threshold: float = 1.2,
    registry=None,
) -> StragglerReport:
    """Aggregate ``dist.compute``/``dist.comm`` spans into a skew report.

    Parameters
    ----------
    spans:
        Span records or exported-trace dicts; defaults to the global
        registry's records.
    threshold:
        A worker whose total compute exceeds ``threshold * median`` is
        reported as a straggler.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if spans is None:
        spans = (registry or get_registry()).spans

    per_worker: dict[int, dict] = {}
    # (layer, worker) -> compute + comm seconds, for the critical path
    layer_time: dict[tuple[int, int], float] = {}
    for s in spans:
        if isinstance(s, dict):
            name, duration = s["name"], float(s["duration"])
            attrs = s.get("attrs") or {}
        else:
            name, duration, attrs = s.name, s.duration, s.attrs
        if name not in (COMPUTE_SPAN, COMM_SPAN) or "worker" not in attrs:
            continue
        worker = int(attrs["worker"])
        row = per_worker.setdefault(
            worker, {"compute": 0.0, "comm": 0.0, "flops": 0.0, "bytes": 0.0}
        )
        kind = "compute" if name == COMPUTE_SPAN else "comm"
        row[kind] += duration
        if name == COMPUTE_SPAN:
            # Profiled compute spans carry inclusive work attribution.
            row["flops"] += attrs.get("flops", 0.0)
            row["bytes"] += (
                attrs.get("bytes_read", 0.0) + attrs.get("bytes_written", 0.0)
            )
        layer = attrs.get("layer")
        if layer is not None:
            key = (int(layer), worker)
            layer_time[key] = layer_time.get(key, 0.0) + duration

    report = StragglerReport(per_worker=per_worker, threshold=float(threshold))
    if not per_worker:
        return report

    computes = {w: row["compute"] for w, row in per_worker.items()}
    report.slowest_worker = max(computes, key=lambda w: (computes[w], -w))
    median = _median(list(computes.values()))
    worst = computes[report.slowest_worker]
    report.skew_ratio = worst / median if median > 0 else 1.0
    if median > 0:
        report.stragglers = sorted(
            w for w, c in computes.items() if c > threshold * median
        )
    # Work skew + per-straggler diagnosis: a straggler doing threshold×
    # more FLOPs than the median worker is overloaded ("more work" — a
    # partitioning problem ADB can fix); one doing roughly median work
    # in more time is a slow machine ("slower worker" — a worker_speeds
    # problem rebalancing can only partially hide).
    work = {w: row["flops"] for w, row in per_worker.items()}
    median_work = _median(list(work.values()))
    if median_work > 0:
        report.work_skew_ratio = max(work.values()) / median_work
        for worker in report.stragglers:
            report.diagnosis[worker] = (
                "more work"
                if work[worker] > threshold * median_work
                else "slower worker"
            )
    for (layer, worker), seconds in layer_time.items():
        current = report.critical_path.get(layer)
        if current is None or seconds > layer_time[(layer, current)]:
            report.critical_path[layer] = worker
    return report


def render_straggler_report(report: StragglerReport) -> str:
    """Fixed-width text rendering of a :class:`StragglerReport`."""
    if not report.per_worker:
        return "(no distributed spans recorded)"
    profiled = any(
        r.get("flops", 0.0) > 0 for r in report.per_worker.values()
    )
    header = f"  {'worker':>6} {'compute':>11} {'comm':>11} {'share':>7}"
    if profiled:
        header += f" {'flops':>10}"
    lines = [header]
    total = sum(r["compute"] for r in report.per_worker.values()) or 1.0
    for worker in sorted(report.per_worker):
        row = report.per_worker[worker]
        mark = ""
        if worker in report.stragglers:
            mark = "  <- straggler"
            why = report.diagnosis.get(worker)
            if why:
                mark += f" ({why})"
        elif worker == report.slowest_worker:
            mark = "  <- slowest"
        line = (
            f"  {worker:>6} {row['compute'] * 1e3:9.3f}ms "
            f"{row['comm'] * 1e3:9.3f}ms {row['compute'] / total:6.1%}"
        )
        if profiled:
            line += f" {row.get('flops', 0.0):>10.3g}"
        lines.append(line + mark)
    lines.append(
        f"  skew ratio (max/median compute): {report.skew_ratio:.2f} "
        f"(straggler threshold {report.threshold:.2f})"
    )
    if profiled:
        lines.append(
            f"  work skew ratio (max/median flops): "
            f"{report.work_skew_ratio:.2f}"
        )
    if report.critical_path:
        path = " ".join(
            f"L{layer}->w{worker}"
            for layer, worker in sorted(report.critical_path.items())
        )
        lines.append(f"  critical path per layer: {path}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# stall reports (live-telemetry plane, see repro.obs.live)
# ----------------------------------------------------------------------
@dataclass
class StallReport:
    """Aggregation of ``dist.worker_stalled`` events: which ranks froze,
    and exactly where (epoch, layer, phase) progress stopped.

    *Dead* workers surface as
    :class:`~repro.distributed.fault_tolerance.WorkerFailure`; this
    report covers the other failure mode — a process that is alive but
    no longer heartbeating in an active phase (hung syscall, livelock,
    pathological slowdown).
    """

    #: one entry per stall episode, in detection order:
    #: {"rank", "epoch", "layer", "phase", "stalled_seconds", "time"}
    stalls: list[dict] = field(default_factory=list)

    @property
    def stalled_ranks(self) -> list[int]:
        return sorted({int(s["rank"]) for s in self.stalls})

    def to_dict(self) -> dict:
        return {"stalls": [dict(s) for s in self.stalls]}

    def render(self) -> str:
        return render_stall_report(self)


def stall_report(events: Iterable | None = None, registry=None) -> StallReport:
    """Build a :class:`StallReport` from ``dist.worker_stalled`` events
    (live :class:`EventRecord` objects or an exported trace's
    ``"events"`` list; defaults to the global registry)."""
    if events is None:
        events = (registry or get_registry()).events
    report = StallReport()
    for event in events:
        name, attrs = _event_fields(event)
        if name != STALL_EVENT_NAME:
            continue
        when = event.get("time") if isinstance(event, dict) else event.time
        report.stalls.append({
            "rank": int(attrs.get("rank", -1)),
            "epoch": int(attrs.get("epoch", -1)),
            "layer": int(attrs.get("layer", -1)),
            "phase": str(attrs.get("phase", "?")),
            "stalled_seconds": float(attrs.get("stalled_seconds", 0.0)),
            "time": float(when if when is not None else 0.0),
        })
    return report


def render_stall_report(report: StallReport) -> str:
    """Fixed-width text rendering of a :class:`StallReport`."""
    if not report.stalls:
        return "(no worker stalls detected)"
    lines = [
        f"  {'rank':>5} {'epoch':>6} {'layer':>6} {'phase':<12} "
        f"{'frozen for':>11}"
    ]
    for s in report.stalls:
        lines.append(
            f"  {s['rank']:>5} {s['epoch']:>6} {s['layer']:>6} "
            f"{s['phase']:<12} {s['stalled_seconds'] * 1e3:9.1f}ms"
        )
    lines.append(
        f"  stalled ranks: {', '.join(map(str, report.stalled_ranks))}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# per-level backend ranking (the Figure 14 narrative, measured)
# ----------------------------------------------------------------------
def _event_fields(event) -> tuple[str, dict]:
    if isinstance(event, dict):
        return event.get("name", ""), event.get("attrs", {}) or {}
    return event.name, event.attrs


def backend_report(events: Iterable | None = None, registry=None) -> dict:
    """Rank aggregation backends per HDG level per strategy by measured
    cost.

    Aggregates the ``aggregation.backend`` events the hybrid executor
    emits (each carries the seconds, FLOPs and bytes measured around
    one backend invocation) into one row per
    ``(strategy, level, backend)``.  Rows are sorted by strategy, then
    bottom-up level order, then bytes moved — so for a fixed level the
    first row is the cheapest backend in data movement, which is the
    ordering Figure 14 of the paper argues from (fused one-shot
    aggregation at the wide bottom level, dense at the narrow top).

    Accepts live :class:`EventRecord` objects or the ``"events"`` list
    of an exported trace; defaults to the global registry.
    """
    if events is None:
        events = (registry or get_registry()).events
    grouped: dict[tuple, dict] = {}
    for event in events:
        name, attrs = _event_fields(event)
        if name != BACKEND_EVENT:
            continue
        key = (
            str(attrs.get("strategy", "?")),
            str(attrs.get("level", "?")),
            str(attrs.get("backend", "?")),
        )
        row = grouped.get(key)
        if row is None:
            row = grouped[key] = {
                "strategy": key[0], "level": key[1], "backend": key[2],
                "aggregator": attrs.get("aggregator"),
                "count": 0, "seconds": 0.0, "flops": 0.0,
                "bytes_read": 0.0, "bytes_written": 0.0,
            }
        row["count"] += 1
        row["seconds"] += attrs.get("seconds", 0.0)
        row["flops"] += attrs.get("flops", 0.0)
        row["bytes_read"] += attrs.get("bytes_read", 0.0)
        row["bytes_written"] += attrs.get("bytes_written", 0.0)
    rows = []
    for row in grouped.values():
        moved = row["bytes_read"] + row["bytes_written"]
        row["bytes"] = moved
        row["arithmetic_intensity"] = (
            row["flops"] / moved if moved > 0 else 0.0
        )
        rows.append(row)
    rows.sort(key=lambda r: (
        r["strategy"], _LEVEL_ORDER.get(r["level"], 99), r["bytes"]
    ))
    return {"rows": rows}


def render_backend_report(report) -> str:
    """Fixed-width rendering of :func:`backend_report` output (accepts
    the report dict or its ``rows`` list)."""
    rows = report["rows"] if isinstance(report, dict) else report
    if not rows:
        return "(no aggregation.backend events recorded)"
    lines = ["  backend cost per strategy/level (by bytes moved):"]
    lines.append(
        "    {:<8} {:<10} {:<8} {:>6} {:>10} {:>12} {:>12} {:>10}".format(
            "strategy", "level", "backend", "calls", "seconds",
            "flops", "bytes", "intensity"
        )
    )
    for row in rows:
        lines.append(
            "    {:<8} {:<10} {:<8} {:>6d} {:>9.4f}s {:>12.4g} "
            "{:>12.4g} {:>10.3f}".format(
                row["strategy"], row["level"], row["backend"], row["count"],
                row["seconds"], row["flops"], row["bytes"],
                row["arithmetic_intensity"],
            )
        )
    return "\n".join(lines)
