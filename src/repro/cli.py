"""Command-line interface: train models, inspect datasets, compare
engines — the operations a downstream user reaches for first.

Usage (installed as the ``flexgraph`` console script, or via
``python -m repro.cli``)::

    flexgraph info --dataset reddit --scale small
    flexgraph metrics --dataset twitter
    flexgraph train --model magnn --dataset imdb --strategy ha
    flexgraph compare --model pinsage --dataset reddit
    flexgraph bench --model gcn --engines dgl flexgraph
    flexgraph distributed --model gcn --dataset twitter --workers 8 --balance
    flexgraph linkpred --model gcn --dataset reddit
    flexgraph train --model gcn --checkpoint model.npz
    flexgraph serve --model gcn --checkpoint model.npz --requests 500
    flexgraph train --model gcn --trace out.json   # repro.obs JSON trace
    flexgraph train --model gcn --chrome-trace t.json --metrics prom.txt

Every dataset-bearing subcommand accepts ``--trace PATH`` (native JSON
trace + printed summary table), ``--chrome-trace PATH`` (Chrome Trace
Event Format, loadable in chrome://tracing or Perfetto),
``--metrics PATH`` (Prometheus text exposition) and ``--profile PATH``
(op-level FLOP/byte work profile with a printed roofline report); see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_MODEL_CHOICES = ("gcn", "gat", "gin", "pinsage", "magnn", "pgnn", "jknet")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexgraph",
        description="FlexGraph (EuroSys '21) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a dataset")
    _dataset_args(info)

    metrics = sub.add_parser("metrics", help="full graph characterization")
    _dataset_args(metrics)

    train = sub.add_parser("train", help="train a model with FlexGraph")
    _dataset_args(train)
    _model_args(train)
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--lr", type=float, default=0.01)
    train.add_argument("--strategy", choices=("sa", "sa+fa", "ha"), default="ha")
    train.add_argument("--checkpoint", help="save final model state to this .npz")
    train.add_argument("--ondisk", metavar="DIR",
                       help="stream from an ondisk dataset directory "
                            "(repro.ondisk/1) instead of loading in RAM; "
                            "implies sampled mini-batch training")
    train.add_argument("--minibatch", action="store_true",
                       help="sampled mini-batch training (GraphSAGE-style) "
                            "instead of full-batch")
    train.add_argument("--batch-size", type=int, default=256,
                       help="mini-batch seed count (with --minibatch/--ondisk)")
    train.add_argument("--fanouts", type=int, nargs="+", default=None,
                       help="per-layer neighbor budgets, bottom layer first")
    train.add_argument("--prefetch-depth", type=int, default=2,
                       help="loader batches produced ahead of training "
                            "(0 = synchronous)")
    train.add_argument("--feature-dtype",
                       choices=("float32", "float16", "int8"), default=None,
                       help="store features quantized and dequantize on "
                            "gather (minibatch path; with --ondisk the "
                            "dataset's own codec must already match)")
    train.add_argument("--loader-workers", type=int, default=2,
                       help="loader worker threads when prefetching")

    compare = sub.add_parser("compare", help="compare engines on one model")
    _dataset_args(compare)
    compare.add_argument("--model", choices=("gcn", "pinsage", "magnn"), default="gcn")
    compare.add_argument("--epochs", type=int, default=2)

    dist = sub.add_parser("distributed", help="simulated distributed training")
    _dataset_args(dist)
    _model_args(dist)
    dist.add_argument("--workers", type=int, default=8)
    dist.add_argument("--epochs", type=int, default=5)
    dist.add_argument("--no-pipeline", action="store_true")
    dist.add_argument("--balance", action="store_true",
                      help="apply ADB rebalancing before training")

    bench = sub.add_parser("bench", help="Table 2-style engine comparison table")
    _dataset_args(bench)
    bench.add_argument("--model", choices=("gcn", "pinsage", "magnn"), default="gcn")
    bench.add_argument("--engines", nargs="+", default=None,
                       help="engine subset (default: all)")
    bench.add_argument("--epochs", type=int, default=2)

    linkpred = sub.add_parser("linkpred", help="link prediction with a GNN encoder")
    _dataset_args(linkpred)
    linkpred.add_argument("--model", choices=("gcn", "gat", "gin"), default="gcn")
    linkpred.add_argument("--hidden-dim", type=int, default=32)
    linkpred.add_argument("--epochs", type=int, default=20)
    linkpred.add_argument("--test-fraction", type=float, default=0.1)

    serve = sub.add_parser("serve", help="online inference server + demo workload")
    _dataset_args(serve)
    _model_args(serve)
    serve.add_argument("--checkpoint",
                       help="load model state from this .npz (metadata is "
                            "verified against the dataset graph); default "
                            "trains --train-epochs first")
    serve.add_argument("--train-epochs", type=int, default=3,
                       help="warm-up training epochs when no --checkpoint")
    serve.add_argument("--requests", type=int, default=200,
                       help="demo workload request count")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf exponent of seed popularity (>1)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--batch-size", type=int, default=32,
                       help="micro-batch max coalesced seeds")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="micro-batch max delay window")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="admission bound (requests beyond it are shed)")
    serve.add_argument("--feature-dtype",
                       choices=("float32", "float16", "int8"), default=None,
                       help="pin features quantized (dequantize on gather) "
                            "and store embedding-cache rows in the same "
                            "codec")
    serve.add_argument("--slo-p99-ms", type=float, default=None,
                       help="rolling-window p99 SLO in ms; with "
                            "--flight-dir set, breaches snapshot an "
                            "incident bundle")
    return parser


def _dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("reddit", "fb91", "twitter", "imdb"),
                        default="reddit")
    parser.add_argument("--scale", choices=("tiny", "small", "bench"), default="small")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", metavar="PATH",
                        help="export a repro.obs JSON trace of the run to "
                             "PATH and print the observability summary")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="export the run as a Chrome Trace Event Format "
                             "file (chrome://tracing / Perfetto)")
    parser.add_argument("--metrics", metavar="PATH",
                        help="export the run's counters/gauges/histograms "
                             "in Prometheus text exposition format")
    parser.add_argument("--profile", metavar="PATH",
                        help="export the op-level work profile (FLOPs, "
                             "bytes, arithmetic intensity per op/span/"
                             "backend) as JSON and print the roofline "
                             "report")
    parser.add_argument("--flight-dir", metavar="DIR",
                        help="enable the flight recorder: journal recent "
                             "spans/events/logs to DIR and write a "
                             "self-contained incident bundle there when "
                             "the command crashes (see tools/postmortem.py)")


def _model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", choices=_MODEL_CHOICES, default="gcn")
    parser.add_argument("--hidden-dim", type=int, default=32)


def _build_model(args, dataset):
    from . import models

    factory = getattr(models, args.model)
    kwargs = {}
    if args.model == "magnn":
        kwargs["max_instances_per_root"] = 30
    return factory(dataset.feat_dim, args.hidden_dim, dataset.num_classes,
                   seed=args.seed, **kwargs)


def _cmd_info(args) -> int:
    from .datasets import load_dataset

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed or None)
    degrees = ds.graph.out_degree()
    print(ds)
    print(f"  vertex types : {ds.graph.type_names}")
    print(f"  degree       : mean {degrees.mean():.1f}, max {int(degrees.max())}")
    print(f"  splits       : train {int(ds.train_mask.sum())} / "
          f"val {int(ds.val_mask.sum())} / test {int(ds.test_mask.sum())}")
    print(f"  graph memory : {ds.graph.nbytes / 1e6:.2f} MB")
    return 0


def _cmd_metrics(args) -> int:
    from .datasets import load_dataset
    from .graph import graph_summary

    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed or None)
    summary = graph_summary(ds.graph, ds.labels)
    print(f"{ds.name}:")
    for key, value in summary.items():
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        print(f"  {key:24s} {rendered}")
    return 0


def _cmd_minibatch_train(args) -> int:
    """Sampled mini-batch training via the streaming loader
    (``--minibatch`` or ``--ondisk``)."""
    from .core.sampling import MiniBatchTrainer
    from .datasets import load_dataset
    from .tensor import Adam, Tensor

    feature_dtype = getattr(args, "feature_dtype", None)
    if args.ondisk:
        from .storage import OnDiskDataset

        ds = OnDiskDataset(args.ondisk)
        print(f"streaming from {ds!r}")
        # An ondisk dataset carries its storage codec in the manifest;
        # --feature-dtype must agree with it, not re-quantize it.
        if feature_dtype is not None:
            stored = ds.feature_codec or str(ds.feature_dtype)
            if feature_dtype != stored:
                raise SystemExit(
                    f"--feature-dtype {feature_dtype} conflicts with the "
                    f"ondisk dataset's storage codec {stored!r}; regenerate "
                    "the dataset with tools/make_ondisk.py --quantize "
                    f"{feature_dtype}"
                )
            feature_dtype = None  # already quantized on disk
    else:
        ds = load_dataset(args.dataset, scale=args.scale)
    model = _build_model(args, ds)
    trainer = MiniBatchTrainer(
        model, ds, batch_size=args.batch_size, fanouts=args.fanouts,
        strategy=args.strategy, seed=args.seed,
        prefetch_depth=args.prefetch_depth, num_workers=args.loader_workers,
        feature_dtype=feature_dtype,
    )
    optimizer = Adam(model.parameters(), lr=args.lr)
    for epoch in range(args.epochs):
        stats = trainer.train_epoch(
            optimizer=optimizer, mask=ds.train_mask, epoch=epoch,
        )
        print(f"epoch {epoch:2d}  loss={stats.loss:.4f}  "
              f"acc={stats.train_accuracy:.3f}  "
              f"{stats.seconds * 1000:.0f}ms  "
              f"overlap={stats.overlap_efficiency:.2f}")
    if not args.ondisk:
        feats = Tensor(ds.features)
        val = trainer.evaluate(feats, ds.labels, ds.val_mask)
        test = trainer.evaluate(feats, ds.labels, ds.test_mask)
        print(f"\n{model.name} on {ds.name}: val acc {val:.3f}, "
              f"test acc {test:.3f}")
    if args.checkpoint:
        from .storage import checkpoint_metadata, save_checkpoint

        meta = checkpoint_metadata(
            model, ds.graph,
            extra={"model": args.model, "dataset": args.dataset},
        )
        save_checkpoint(model.state_dict(), args.checkpoint, meta)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _cmd_train(args) -> int:
    from .core import FlexGraphEngine
    from .datasets import load_dataset
    from .tensor import Adam, Tensor

    if args.ondisk or args.minibatch:
        return _cmd_minibatch_train(args)
    if getattr(args, "feature_dtype", None) is not None:
        raise SystemExit(
            "--feature-dtype requires the gather-based path; add "
            "--minibatch (or --ondisk)"
        )
    ds = load_dataset(args.dataset, scale=args.scale)
    model = _build_model(args, ds)
    engine = FlexGraphEngine(model, ds.graph, strategy=args.strategy, seed=args.seed)
    optimizer = Adam(model.parameters(), lr=args.lr)
    feats = Tensor(ds.features)
    engine.fit(feats, ds.labels, optimizer, args.epochs,
               mask=ds.train_mask, verbose=True)
    val = engine.evaluate(feats, ds.labels, ds.val_mask)
    test = engine.evaluate(feats, ds.labels, ds.test_mask)
    print(f"\n{model.name} on {ds.name}: val acc {val:.3f}, test acc {test:.3f}")
    if args.checkpoint:
        from .storage import checkpoint_metadata, save_checkpoint

        meta = checkpoint_metadata(
            model, ds.graph,
            extra={"model": args.model, "dataset": args.dataset,
                   "scale": args.scale},
        )
        save_checkpoint(model.state_dict(), args.checkpoint, meta)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _cmd_compare(args) -> int:
    from .baselines import ENGINES
    from .datasets import load_dataset

    ds = load_dataset(args.dataset, scale=args.scale)
    print(f"{args.model} on {ds.name} (seconds/epoch, avg of {args.epochs}):")
    for name, engine_cls in ENGINES.items():
        engine = engine_cls(ds, args.model, hidden_dim=32, seed=args.seed,
                            max_instances_per_root=30)
        reports = [engine.run_epoch(e) for e in range(args.epochs)]
        if reports[0].status != "ok":
            print(f"  {name:10s} {reports[0].cell}")
        else:
            mean = float(np.mean([r.seconds for r in reports]))
            print(f"  {name:10s} {mean:.3f}")
    return 0


def _cmd_distributed(args) -> int:
    from . import obs
    from .core import ADBBalancer, CostModel, FlexGraphEngine, metrics_from_hdg
    from .datasets import load_dataset
    from .distributed import DistributedTrainer
    from .graph import hash_partition
    from .tensor import Adam, Tensor

    ds = load_dataset(args.dataset, scale=args.scale)
    labels = hash_partition(ds.graph.num_vertices, args.workers)
    model = _build_model(args, ds)
    if args.balance:
        hdg = FlexGraphEngine(model, ds.graph).hdg_for_layer(0)
        metrics = metrics_from_hdg(hdg, ds.feat_dim)
        balancer = ADBBalancer(num_plans=5, threshold=1.05, seed=args.seed)
        # Bootstrap the learned cost function from the analytical default
        # (stands in for sampled running logs; publishes the calibration
        # gauge + residual histogram).
        balancer.observe(metrics, CostModel.default_costs(metrics))
        labels, plan = balancer.rebalance(hdg, labels, args.workers, metrics)
        print("ADB:", "no migration needed" if plan is None else
              f"moved {plan.moved.size} vertices "
              f"{plan.source_partition} -> {plan.target_partition}")
    trainer = DistributedTrainer(
        model, ds.graph, labels, pipeline=not args.no_pipeline, seed=args.seed
    )
    optimizer = Adam(model.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    for epoch in range(args.epochs):
        stats = trainer.train_epoch(feats, ds.labels, optimizer,
                                    ds.train_mask, epoch)
        print(f"epoch {epoch:2d}  loss={stats.loss:.4f}  "
              f"simulated {stats.simulated_seconds * 1000:.1f}ms  "
              f"({stats.total_bytes / 1e6:.1f} MB, "
              f"{stats.total_messages} msgs, {stats.comm_mode})")
    if args.workers > 1:
        print("\nstraggler report:")
        print(obs.straggler_report().render())
    return 0


def _cmd_bench(args) -> int:
    from .datasets import load_dataset
    from .experiments import ComparisonConfig, compare_engines, render_rows

    ds = load_dataset(args.dataset, scale=args.scale)
    config = ComparisonConfig(
        seed=args.seed, epochs=args.epochs,
        model_params={"max_instances_per_root": 30} if args.model == "magnn" else {},
    )
    cells = compare_engines(ds, args.model, args.engines, config)
    rows = [[name, cell] for name, cell in cells.items()]
    print(render_rows(
        f"{args.model} on {ds.name} (seconds/epoch; X=unsupported, "
        f"OOM=over budget, >t=extrapolated past limit)",
        ["engine", "epoch"], rows,
    ))
    return 0


def _cmd_linkpred(args) -> int:
    from . import models
    from .datasets import load_dataset
    from .tasks import LinkPredictionTrainer, split_edges
    from .tensor import Adam, Tensor

    ds = load_dataset(args.dataset, scale=args.scale)
    split = split_edges(ds.graph, args.test_fraction,
                        np.random.default_rng(args.seed))
    factory = getattr(models, args.model)
    encoder = factory(ds.feat_dim, args.hidden_dim, args.hidden_dim,
                      seed=args.seed)
    trainer = LinkPredictionTrainer(encoder, split, seed=args.seed)
    optimizer = Adam(encoder.parameters(), lr=0.01)
    feats = Tensor(ds.features)
    for epoch in range(args.epochs):
        loss = trainer.train_epoch(feats, optimizer, epoch)
        if epoch % 5 == 0:
            print(f"epoch {epoch:2d}  bce={loss:.4f}")
    metrics = trainer.evaluate(feats)
    print(f"\n{args.model} on {ds.name}: AUC={metrics['auc']:.3f}  "
          f"hits@10={metrics['hits@10']:.3f}")
    return 0


def _cmd_serve(args) -> int:
    from .datasets import load_dataset
    from .serve import GNNServer, InferenceSession, ServerOverloaded

    ds = load_dataset(args.dataset, scale=args.scale)
    model = _build_model(args, ds)
    if args.checkpoint is None:
        from .core import FlexGraphEngine
        from .tensor import Adam, Tensor

        print(f"no --checkpoint: training {model.name} for "
              f"{args.train_epochs} epochs first")
        engine = FlexGraphEngine(model, ds.graph, seed=args.seed)
        optimizer = Adam(model.parameters(), lr=0.01)
        engine.fit(Tensor(ds.features), ds.labels, optimizer,
                   args.train_epochs, mask=ds.train_mask)
    session = InferenceSession(
        model, ds.graph, ds.features,
        checkpoint=args.checkpoint, seed=args.seed,
        feature_dtype=args.feature_dtype, cache_dtype=args.feature_dtype,
    )

    # Zipfian seed popularity: a small hot set dominates, which is what
    # makes the embedding cache earn its keep.
    rng = np.random.default_rng(args.seed)
    ranks = np.arange(1, ds.graph.num_vertices + 1, dtype=np.float64)
    popularity = ranks ** -args.zipf
    popularity /= popularity.sum()
    seeds = rng.choice(ds.graph.num_vertices, size=args.requests, p=popularity)

    server = GNNServer(
        session, num_workers=args.workers, max_batch_size=args.batch_size,
        max_delay=args.max_delay_ms / 1e3, max_queue_depth=args.queue_depth,
        flight_dir=getattr(args, "flight_dir", None),
        slo_p99_ms=args.slo_p99_ms,
    )
    with server:
        for i in range(0, args.requests, 4):
            chunk = seeds[i : i + 4]
            try:
                server.predict(chunk)
            except ServerOverloaded:
                pass
    summary = server.slo_summary()
    lat = summary["latency_ms"]
    cache = summary["session"]["embed_cache"]
    print(f"\n{model.name} on {ds.name}: served "
          f"{summary['completed']}/{summary['requests']} requests "
          f"({summary['shed']} shed)")
    print(f"  latency      : p50 {lat['p50']:.2f}ms  p90 {lat['p90']:.2f}ms  "
          f"p99 {lat['p99']:.2f}ms")
    print(f"  batches      : {summary['batches']['count']} "
          f"(mean {summary['batches']['mean_ms']:.2f}ms)")
    print(f"  embed cache  : {cache['entries']} entries, "
          f"hit rate {cache['hit_rate']:.1%}")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "metrics": _cmd_metrics,
    "train": _cmd_train,
    "compare": _cmd_compare,
    "distributed": _cmd_distributed,
    "linkpred": _cmd_linkpred,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    chrome_path = getattr(args, "chrome_trace", None)
    metrics_path = getattr(args, "metrics", None)
    profile_path = getattr(args, "profile", None)
    flight_dir = getattr(args, "flight_dir", None)
    exporting = trace_path or chrome_path or metrics_path or profile_path
    if exporting:
        from . import obs

        obs.reset()
    if flight_dir:
        import os

        from .obs.flight import FlightRecorder, install_flight

        os.makedirs(flight_dir, exist_ok=True)
        install_flight(FlightRecorder(
            journal_path=os.path.join(flight_dir, "journal-cli.jsonl"),
        ))
    try:
        rc = _COMMANDS[args.command](args)
    except Exception:
        if flight_dir:
            # Crash hook: the black box plus the traceback become a
            # post-mortem bundle before the error propagates.
            import traceback

            from .obs.flight import get_flight, write_incident_bundle

            recorder = get_flight()
            if recorder is not None:
                recorder.crash(traceback.format_exc(), reason="cli_crash")
            bundle = write_incident_bundle(
                flight_dir, "cli_crash",
                reason=f"command {args.command!r} raised",
                config={"argv": list(argv) if argv is not None
                        else sys.argv[1:]},
            )
            print(f"incident bundle written to {bundle}", file=sys.stderr)
        raise
    finally:
        if flight_dir:
            # Journal writes are asynchronous: drain the queue before
            # the interpreter kills the daemon writer thread.
            from .obs.flight import uninstall_flight

            recorder = uninstall_flight()
            if recorder is not None:
                recorder.close()
    if trace_path:
        obs.export_json(trace_path)
        print(f"\ntrace written to {trace_path}")
        print(obs.summary())
    if chrome_path:
        obs.export_chrome_trace(chrome_path)
        print(f"chrome trace written to {chrome_path} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    if metrics_path:
        obs.export_prometheus(metrics_path)
        print(f"prometheus metrics written to {metrics_path}")
    if profile_path:
        report = obs.export_profile(profile_path)
        print(f"work profile written to {profile_path}")
        print(obs.render_profile_report(report))
    return rc


if __name__ == "__main__":
    sys.exit(main())
