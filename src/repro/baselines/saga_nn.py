"""SAGA-NN abstraction and the DGL / DistDGL baseline engines.

SAGA-NN (NeuGraph) splits a GNN layer into Scatter, ApplyEdge, Gather and
ApplyVertex — the GAS-like abstraction DGL, PyG, NeuGraph and Euler adopt
(§2.3).  :class:`SAGANNLayer` is a faithful rendering of the abstraction;
:class:`DGLEngine` executes it with DGL's kernel-fusion optimization
(skip edge materialization when ApplyEdge is trivial, reduce straight
from a gathered view), and :class:`DistDGLEngine` adds DistDGL's
mini-batch full-k-hop-neighborhood training loop.

Neither can express MAGNN — hierarchical aggregation over metapath
instances is outside the 1-hop flat abstraction (Table 2's "X" cells) —
and both fall back to walk *simulation* for PinSage.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.hdg import hdg_from_flat_arrays
from ..core.schema import SchemaTree
from ..graph.graph import Graph
from ..tensor.optim import Adam
from ..tensor.scatter import scatter_add
from ..tensor.tensor import Tensor
from .common import BaselineEngine
from .model_math import BaselineModel
from .walk_sim import propagation_random_walks, top_k_from_visits

__all__ = ["SAGANNLayer", "DGLEngine", "DistDGLEngine"]


class SAGANNLayer:
    """The 4-stage SAGA-NN abstraction for one GNN layer.

    Users override ``apply_edge`` / ``gather_reduce`` / ``apply_vertex``;
    ``run`` executes the stages over a COO edge index.  ``fuse_kernels``
    skips the explicit edge materialization when ``apply_edge`` is the
    identity — DGL's kernel-fusion optimization.
    """

    def __init__(self, fuse_kernels: bool = True):
        self.fuse_kernels = fuse_kernels

    def scatter(self, feats: Tensor, src: np.ndarray) -> Tensor:
        """Stage 1: send vertex features along out-edges."""
        return feats[src]

    def apply_edge(self, edge_feats: Tensor) -> Tensor:
        """Stage 2: per-edge NN op (identity by default)."""
        return edge_feats

    def gather_reduce(self, edge_feats: Tensor, dst: np.ndarray, n: int) -> Tensor:
        """Stage 3: reduce incoming edge features per vertex."""
        return scatter_add(edge_feats, dst, n)

    def apply_vertex(self, feats: Tensor, agg: Tensor) -> Tensor:
        """Stage 4: the Update NN op."""
        raise NotImplementedError

    def run(self, feats: Tensor, src: np.ndarray, dst: np.ndarray, n: int,
            edge_weights: np.ndarray | None = None) -> Tensor:
        edge_feats = self.scatter(feats, src)
        if not self.fuse_kernels:
            edge_feats = self.apply_edge(edge_feats)
        if edge_weights is not None:
            edge_feats = edge_feats * Tensor(edge_weights.reshape(-1, 1))
        agg = self.gather_reduce(edge_feats, dst, n)
        return self.apply_vertex(feats, agg)


class _ModelSAGALayer(SAGANNLayer):
    """SAGA-NN layer whose ApplyVertex is a BaselineModel update."""

    def __init__(self, model: BaselineModel, layer: int, fuse_kernels: bool = True):
        super().__init__(fuse_kernels)
        self.model = model
        self.layer = layer

    def apply_vertex(self, feats: Tensor, agg: Tensor) -> Tensor:
        return self.model.update(self.layer, feats, agg)


class DGLEngine(BaselineEngine):
    """Full-graph GAS execution with kernel fusion (the DGL column)."""

    name = "dgl"
    supported_models = ("gcn", "pinsage")
    #: edge temporaries per walk-simulation hop (DGL fuses to one).
    walk_edge_temporaries = 1

    def _prepare(self) -> None:
        ds = self.dataset
        self.model = BaselineModel(
            self.model_name, ds.feat_dim, self.hidden_dim, ds.num_classes,
            seed=self.seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=0.01)
        self.feats = Tensor(ds.features.astype(np.float64))
        self.saga_layers = [
            _ModelSAGALayer(self.model, i) for i in range(self.model.num_layers)
        ]
        self._dst, self._src = ds.graph.coo()
        self._walk_params = {
            "num_traces": self.model_params.get("num_traces", 10),
            "n_hops": self.model_params.get("n_hops", 3),
            "top_k": self.model_params.get("top_k", 10),
        }

    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        t0 = time.perf_counter()
        if self.model_name == "gcn":
            loss = self._gcn_epoch()
        else:
            loss = self._pinsage_epoch()
        return time.perf_counter() - t0, loss, False

    def _gcn_epoch(self) -> float:
        ds = self.dataset
        h = self.feats
        n = ds.graph.num_vertices
        for layer_obj in self.saga_layers:
            # Fused kernel still gathers one (E, dim) view for the reduce.
            self.memory.charge(self._src.size * h.shape[1] * 8, "gathered edge view")
            h_new = layer_obj.run(h, self._src, self._dst, n)
            self.memory.release(self._src.size * h.shape[1] * 8)
            h = h_new
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)

    def _pinsage_epoch(self) -> float:
        ds = self.dataset
        roots, visited = propagation_random_walks(
            ds.graph, self._walk_params["num_traces"], self._walk_params["n_hops"],
            self._rng, self.memory, edge_temporaries=self.walk_edge_temporaries,
        )
        owners, nbrs, weights = top_k_from_visits(
            roots, visited, ds.graph.num_vertices, self._walk_params["top_k"]
        )
        all_roots = np.arange(ds.graph.num_vertices, dtype=np.int64)
        hdg = hdg_from_flat_arrays(
            SchemaTree(), all_roots, owners, nbrs, weights, ds.graph.num_vertices
        )
        dst, src = hdg.sub_graph(1)
        h = self.feats
        n = ds.graph.num_vertices
        for layer_obj in self.saga_layers:
            self.memory.charge(src.size * h.shape[1] * 8, "gathered edge view")
            h_new = layer_obj.run(h, src, dst, n, edge_weights=hdg.leaf_weights)
            self.memory.release(src.size * h.shape[1] * 8)
            h = h_new
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)


class DistDGLEngine(DGLEngine):
    """DistDGL: DGL's model math with mini-batch k-hop-neighborhood
    training (the strategy §7.1 blames for GCN's collapse on dense and
    power-law graphs).

    For a k-layer GCN each batch first gathers the *full* neighborhood
    within k hops of its seed vertices and rebuilds it as a subgraph;
    per-batch cost approaches full-graph cost on dense graphs.  PinSage
    inherits DGL's implementation (the paper measures them equal).
    """

    name = "distdgl"
    supported_models = ("gcn", "pinsage")

    def _prepare(self) -> None:
        super()._prepare()
        self.batch_size = self.model_params.get("batch_size", 64)
        self.max_batches = self.model_params.get("max_batches", 4)

    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        if self.model_name == "pinsage":
            return super()._run_epoch(epoch)
        return self._minibatch_gcn_epoch(dedup=True)

    def _minibatch_gcn_epoch(self, dedup: bool) -> tuple[float, float | None, bool]:
        """Shared mini-batch loop (also used by the Euler engine).

        Measures ``max_batches`` batches and extrapolates to the full
        epoch; charges memory per batch for the expanded neighborhoods
        (deduplicated for DistDGL, per-sample-duplicated for Euler).
        """
        ds = self.dataset
        graph: Graph = ds.graph
        n = graph.num_vertices
        num_hops = self.model.num_layers
        seeds_all = self._rng.permutation(n)
        num_batches = int(np.ceil(n / self.batch_size))
        measured = min(num_batches, self.max_batches) if self.max_batches else num_batches
        t0 = time.perf_counter()
        loss = None
        for b in range(measured):
            seeds = seeds_all[b * self.batch_size : (b + 1) * self.batch_size]
            block = self._expand_k_hop(graph, seeds, num_hops)
            if not dedup:
                dup_size = self._duplicated_expansion_size(graph, seeds, num_hops)
                self.memory.charge(dup_size * ds.feat_dim * 8, "per-sample neighborhoods")
            self.memory.charge(block.size * ds.feat_dim * 8, "batch subgraph features")
            sub, original = graph.subgraph(block)
            h = Tensor(ds.features[original].astype(np.float64))
            dst, src = sub.coo()
            for layer_obj in self.saga_layers:
                h = layer_obj.run(h, src, dst, sub.num_vertices)
            # Loss over the seed rows only (they are the batch targets).
            local_of = {int(v): i for i, v in enumerate(original)}
            seed_rows = np.array([local_of[int(s)] for s in seeds])
            loss = self.model.train_step(
                h[seed_rows], ds.labels[seeds], None, self.optimizer
            )
            self.memory.release(block.size * ds.feat_dim * 8)
            if not dedup:
                self.memory.release(dup_size * ds.feat_dim * 8)
        elapsed = time.perf_counter() - t0
        extrapolated = measured < num_batches
        total = elapsed * num_batches / max(measured, 1)
        return total, loss, extrapolated

    @staticmethod
    def _expand_k_hop(graph: Graph, seeds: np.ndarray, k: int) -> np.ndarray:
        """Union of the full k-hop in-neighborhood of the seeds."""
        block = np.unique(seeds)
        frontier = block
        indptr, indices = graph.csc
        for _ in range(k):
            counts = indptr[frontier + 1] - indptr[frontier]
            if counts.sum() == 0:
                break
            starts = indptr[frontier]
            total = int(counts.sum())
            offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            flat = (
                np.arange(total) - np.repeat(offsets, counts) + np.repeat(starts, counts)
            )
            nbrs = indices[flat]
            frontier = np.setdiff1d(nbrs, block)
            block = np.union1d(block, frontier)
        return block

    @staticmethod
    def _duplicated_expansion_size(graph: Graph, seeds: np.ndarray, k: int) -> int:
        """Sum of per-sample neighborhood sizes *with duplication* — what a
        per-sample sampler materializes before any dedup (k == 2 path)."""
        in_deg = graph.in_degree()
        indptr, indices = graph.csc
        sizes = in_deg[seeds].astype(np.int64)
        if k >= 2:
            # Second-hop duplicated size per seed: sum of neighbor degrees.
            second = np.array(
                [int(in_deg[indices[indptr[s] : indptr[s + 1]]].sum()) for s in seeds],
                dtype=np.int64,
            )
            sizes = sizes + second
        return int(sizes.sum())
