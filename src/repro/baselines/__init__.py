"""``repro.baselines`` — re-implementations of the paper's competitors.

Each engine reproduces the *algorithmic strategy* the paper attributes to
one baseline system, over the same numpy substrate FlexGraph uses:

==============  =========================================================
engine          strategy
==============  =========================================================
``pytorch``     pure sparse tensor ops; walks & metapaths simulated with
                tensor ops; re-selects neighbors every epoch
``dgl``         full-graph SAGA-NN with kernel fusion
``distdgl``     DGL math + mini-batch full-k-hop-neighborhood training
``euler``       mini-batch sampling framework with a fast (Gremlin-like)
                query engine; sparse-op aggregation
``pre+dgl``     GAS ops over a pre-computed expanded graph (Table 3)
``neugraph``    chunk-at-a-time whole-graph SAGA-NN (§8; extension —
                the paper had no public implementation to compare)
``flexgraph``   the real thing, adapted to the same interface
==============  =========================================================
"""

from .common import (
    MODEL_NAMES,
    BaselineEngine,
    EpochReport,
    MemoryMeter,
    OutOfMemoryError,
    UnsupportedModelError,
)
from .flexgraph_adapter import FlexGraphAdapter
from .minibatch import EulerEngine, GraphQuery
from .neugraph import NeuGraphEngine
from .model_math import BaselineModel
from .pre_expanded import PreDGLEngine
from .saga_nn import DGLEngine, DistDGLEngine, SAGANNLayer
from .sparse_engine import PyTorchEngine
from .walk_sim import propagation_random_walks, top_k_from_visits

ENGINES = {
    "pytorch": PyTorchEngine,
    "neugraph": NeuGraphEngine,
    "dgl": DGLEngine,
    "distdgl": DistDGLEngine,
    "euler": EulerEngine,
    "pre+dgl": PreDGLEngine,
    "flexgraph": FlexGraphAdapter,
}

__all__ = [
    "BaselineEngine", "EpochReport", "MemoryMeter",
    "OutOfMemoryError", "UnsupportedModelError", "MODEL_NAMES",
    "BaselineModel", "SAGANNLayer", "GraphQuery",
    "PyTorchEngine", "DGLEngine", "DistDGLEngine", "EulerEngine",
    "PreDGLEngine", "FlexGraphAdapter", "NeuGraphEngine",
    "propagation_random_walks", "top_k_from_visits",
    "ENGINES",
]
