"""Euler-style baseline: mini-batch training with a graph sampling engine.

Euler (and AliGraph, which the paper treats as equivalent) trains GNNs by
sampling: an efficient graph query engine — Euler exposes Gremlin — pulls
each batch's neighborhood, which is then converted to tensors and
aggregated with sparse ops.

* **PinSage**: the sampling engine's random-walk kernel is fast (Euler is
  the best baseline on PinSage in Table 2), but aggregation still runs
  through per-edge scatter ops rather than fused reduction.
* **GCN**: a 2-layer GCN forces full 2-hop-neighborhood queries per
  batch; on dense or power-law graphs the per-sample expansions are
  enormous — the ">3600s" / OOM cells of Table 2.
* **MAGNN**: outside the abstraction — unsupported.

:class:`GraphQuery` is a deliberately small Gremlin-flavored query
builder standing in for Euler's query language.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.hdg import hdg_from_flat_arrays
from ..core.schema import SchemaTree
from ..graph.graph import Graph
from ..graph.random_walk import random_walks, top_k_visited
from ..tensor.scatter import scatter_add
from ..tensor.tensor import Tensor
from .saga_nn import DistDGLEngine

__all__ = ["GraphQuery", "EulerEngine"]


class GraphQuery:
    """A minimal Gremlin-flavored sampling query over a graph.

    Example::

        q = GraphQuery(graph, seed=0).v(batch).walk(hops=3, traces=10)
        roots, visited = q.collect()
    """

    def __init__(self, graph: Graph, seed: int = 0):
        self.graph = graph
        self._rng = np.random.default_rng(seed)
        self._vertices: np.ndarray | None = None
        self._roots: np.ndarray | None = None
        self._visited: np.ndarray | None = None

    def v(self, vertices) -> "GraphQuery":
        """Select start vertices."""
        self._vertices = np.asarray(vertices, dtype=np.int64)
        return self

    def out_sample(self, k: int) -> "GraphQuery":
        """Sample ``k`` out-neighbors (with replacement) per vertex."""
        if self._vertices is None:
            raise RuntimeError("call v() before out_sample()")
        walks = random_walks(self.graph, self._vertices, k, 1, self._rng)
        self._roots = np.repeat(self._vertices, k)
        self._visited = walks[:, 1]
        return self

    def walk(self, hops: int, traces: int) -> "GraphQuery":
        """Run ``traces`` random walks of ``hops`` steps per vertex."""
        if self._vertices is None:
            raise RuntimeError("call v() before walk()")
        walks = random_walks(self.graph, self._vertices, traces, hops, self._rng)
        self._roots = np.repeat(
            np.repeat(self._vertices, traces), hops
        )
        self._visited = walks[:, 1:].reshape(-1)
        return self

    # -- traversal steps (vertex-set transformations) -----------------------
    def has_type(self, type_id: int) -> "GraphQuery":
        """Filter the current vertex set by vertex type."""
        if self._vertices is None:
            raise RuntimeError("call v() before has_type()")
        self._vertices = self._vertices[
            self.graph.vertex_types[self._vertices] == type_id
        ]
        return self

    def out(self) -> "GraphQuery":
        """Expand to all out-neighbors of the current set (with duplicates,
        as Gremlin's ``out()`` does)."""
        if self._vertices is None:
            raise RuntimeError("call v() before out()")
        indptr, indices = self.graph.csr
        counts = indptr[self._vertices + 1] - indptr[self._vertices]
        total = int(counts.sum())
        if total == 0:
            self._vertices = np.empty(0, dtype=np.int64)
            return self
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        flat = (
            np.arange(total)
            - np.repeat(offsets, counts)
            + np.repeat(indptr[self._vertices], counts)
        )
        self._vertices = indices[flat]
        return self

    def dedup(self) -> "GraphQuery":
        """Deduplicate the current vertex set."""
        if self._vertices is None:
            raise RuntimeError("call v() before dedup()")
        self._vertices = np.unique(self._vertices)
        return self

    def limit(self, n: int) -> "GraphQuery":
        """Keep the first ``n`` vertices of the current set."""
        if self._vertices is None:
            raise RuntimeError("call v() before limit()")
        self._vertices = self._vertices[:n]
        return self

    def values(self) -> np.ndarray:
        """Materialize the current vertex set."""
        if self._vertices is None:
            raise RuntimeError("no vertex set selected")
        return self._vertices.copy()

    def count(self) -> int:
        """Size of the current vertex set."""
        return int(self.values().size)

    def collect(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the (root, visited) pairs the query produced."""
        if self._roots is None:
            raise RuntimeError("no sampling step executed")
        return self._roots, self._visited


class EulerEngine(DistDGLEngine):
    """Mini-batch sampling framework with a fast query engine."""

    name = "euler"
    supported_models = ("gcn", "pinsage")

    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        if self.model_name == "pinsage":
            t0 = time.perf_counter()
            loss = self._pinsage_sampled_epoch()
            return time.perf_counter() - t0, loss, False
        # GCN: per-sample neighborhoods are materialized with duplication
        # before tensor conversion (no dedup), unlike DistDGL.
        return self._minibatch_gcn_epoch(dedup=False)

    def _pinsage_sampled_epoch(self) -> float:
        ds = self.dataset
        n = ds.graph.num_vertices
        roots = np.arange(n, dtype=np.int64)
        # Euler's efficient sampling engine: the fast walk kernel.
        owners, nbrs, weights = top_k_visited(
            ds.graph, roots,
            self._walk_params["num_traces"], self._walk_params["n_hops"],
            self._walk_params["top_k"], self._rng,
        )
        hdg = hdg_from_flat_arrays(
            SchemaTree(), roots, owners, nbrs, weights, n
        )
        dst, src = hdg.sub_graph(1)
        h = self.feats
        for layer in range(self.model.num_layers):
            # Sparse tensor aggregation only (no feature fusion).
            self.memory.charge(src.size * h.shape[1] * 8, "sampled neighborhood tensor")
            gathered = h[src] * Tensor(hdg.leaf_weights.reshape(-1, 1))
            agg = scatter_add(gathered, dst, n)
            self.memory.release(src.size * h.shape[1] * 8)
            h = self.model.update(layer, h, agg)
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)
