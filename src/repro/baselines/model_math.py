"""Model math shared by the baseline engines.

Every baseline trains the *same* GCN / PinSage / MAGNN equations as
FlexGraph — the engines differ only in how NeighborSelection and
Aggregation are executed.  This module holds the per-layer weights and
Update math so those differences stay isolated in the engines.
"""

from __future__ import annotations

import numpy as np

from ..core.aggregation import AttentionAggregator, MeanAggregator
from ..tensor.loss import cross_entropy
from ..tensor.nn import Linear, Module
from ..tensor.ops import concat
from ..tensor.optim import Adam
from ..tensor.tensor import Tensor

__all__ = ["BaselineModel"]


class BaselineModel(Module):
    """Two-layer GNN weights plus the Update math for one model family."""

    def __init__(self, model_name: str, in_dim: int, hidden_dim: int,
                 out_dim: int, num_layers: int = 2, seed: int = 0):
        super().__init__()
        self.model_name = model_name
        rng = np.random.default_rng(seed)
        dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
        self.dims = dims
        self.linears: list[Linear] = []
        for i in range(num_layers):
            d_in = dims[i] * (2 if model_name == "pinsage" else 1)
            layer = Linear(d_in, dims[i + 1], rng=rng)
            self.linears.append(layer)
            setattr(self, f"lin{i}", layer)
        # MAGNN's hierarchical aggregation UDFs carry attention parameters.
        self.magnn_aggregators: list[list] = []
        if model_name == "magnn":
            for i in range(num_layers):
                attn = AttentionAggregator(dims[i], rng=rng)
                setattr(self, f"attn{i}", attn)
                self.magnn_aggregators.append(
                    [MeanAggregator(), attn, MeanAggregator()]
                )

    @property
    def num_layers(self) -> int:
        return len(self.linears)

    def layer_in_dim(self, layer: int) -> int:
        return self.dims[layer]

    def update(self, layer: int, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        """Equation (2) for the model family (Figure 7's Update bodies)."""
        if self.model_name == "gcn":
            out = self.linears[layer](feats.add(nbr_feats))
        elif self.model_name == "pinsage":
            out = self.linears[layer](concat([feats, nbr_feats], axis=-1))
        else:  # magnn
            out = self.linears[layer](nbr_feats)
        return out.relu() if layer < self.num_layers - 1 else out

    def train_step(self, logits: Tensor, labels: np.ndarray,
                   mask: np.ndarray | None, optimizer: Adam) -> float:
        """Loss + backward + optimizer step; returns the loss value."""
        loss = cross_entropy(logits, labels, mask)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()
