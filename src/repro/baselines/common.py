"""Shared baseline-engine infrastructure.

The paper compares FlexGraph against PyTorch, DGL, DistDGL and Euler.
None of those are available offline, so ``repro.baselines`` re-implements
the *algorithms* the paper attributes to each system (per-edge sparse
tensor ops, GAS/SAGA-NN with kernel fusion, mini-batch k-hop sampling,
pre-expanded graphs).  Every engine trains the same model math with the
same numpy/autograd substrate, so runtime differences reflect execution
strategy — which is exactly what the paper's comparisons measure.

Resource envelopes are scaled down alongside the datasets:

* :class:`MemoryMeter` imposes a per-step transient-allocation budget
  standing in for the testbed's 512 GB RAM; exceeding it raises
  :class:`OutOfMemoryError` (the paper's "OOM" cells).
* Engines may report ``status="timeout"`` when an extrapolated epoch
  exceeds the time limit (the paper's ">3600s" cells).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "UnsupportedModelError",
    "OutOfMemoryError",
    "MemoryMeter",
    "EpochReport",
    "BaselineEngine",
    "MODEL_NAMES",
]

MODEL_NAMES = ("gcn", "pinsage", "magnn")


class UnsupportedModelError(Exception):
    """The engine's programming abstraction cannot express this model
    (the "X" cells of Table 2)."""


class OutOfMemoryError(Exception):
    """A projected allocation exceeds the engine's memory budget
    (the "OOM" cells of Table 2)."""


class MemoryMeter:
    """Tracks transient allocations against a budget.

    ``charge`` is called *before* a large intermediate is materialized
    with its projected size; ``release`` returns the bytes when the
    intermediate dies.  ``peak`` records the high-water mark.
    """

    def __init__(self, budget_bytes: int | None = None):
        self.budget_bytes = budget_bytes
        self.current = 0
        self.peak = 0

    def charge(self, nbytes: int, what: str = "") -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        self.current += nbytes
        self.peak = max(self.peak, self.current)
        if self.budget_bytes is not None and self.current > self.budget_bytes:
            raise OutOfMemoryError(
                f"{what or 'allocation'} needs {self.current / 1e6:.0f} MB, "
                f"budget is {self.budget_bytes / 1e6:.0f} MB"
            )

    def release(self, nbytes: int) -> None:
        self.current = max(0, self.current - int(nbytes))

    def reset(self) -> None:
        self.current = 0


@dataclass
class EpochReport:
    """Outcome of one (possibly extrapolated) training epoch."""

    engine: str
    model: str
    dataset: str
    seconds: float
    loss: float | None = None
    status: str = "ok"          # ok | oom | unsupported | timeout
    detail: str = ""
    extrapolated: bool = False  # True when mini-batch engines measured a
                                # prefix of batches and scaled up
    peak_memory_mb: float = 0.0

    @property
    def cell(self) -> str:
        """Render as a Table 2-style cell."""
        if self.status == "unsupported":
            return "X"
        if self.status == "oom":
            return "OOM"
        if self.status == "timeout":
            return f">{self.seconds:.0f}"
        prefix = "~" if self.extrapolated else ""
        return f"{prefix}{self.seconds:.3f}"


class BaselineEngine:
    """Base class for competitor engines.

    Subclasses set ``name`` and implement ``_prepare`` (build model state
    for the chosen GNN) and ``_run_epoch`` (one epoch, returning wall
    seconds and loss).  ``supported_models`` gates Table 2's "X" cells.
    """

    name = "base"
    supported_models: tuple[str, ...] = MODEL_NAMES

    def __init__(self, dataset, model_name: str, hidden_dim: int = 32,
                 seed: int = 0, memory_budget: int | None = None,
                 time_limit: float | None = None, **model_params):
        if model_name not in MODEL_NAMES:
            raise ValueError(f"unknown model {model_name!r}; choose from {MODEL_NAMES}")
        self.dataset = dataset
        self.model_name = model_name
        self.hidden_dim = hidden_dim
        self.seed = seed
        self.memory = MemoryMeter(memory_budget)
        self.time_limit = time_limit
        self.model_params = model_params
        self._rng = np.random.default_rng(seed)
        if model_name in self.supported_models:
            self._prepare()

    # -- subclass hooks -----------------------------------------------------
    def _prepare(self) -> None:
        raise NotImplementedError

    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        """Return (seconds, loss, extrapolated)."""
        raise NotImplementedError

    # -- public API ----------------------------------------------------------
    def run_epoch(self, epoch: int = 0) -> EpochReport:
        """One training epoch, mapped to a Table 2-style report."""
        base = dict(engine=self.name, model=self.model_name, dataset=self.dataset.name)
        if self.model_name not in self.supported_models:
            return EpochReport(
                **base, seconds=0.0, status="unsupported",
                detail=f"{self.name} cannot express {self.model_name}",
            )
        self.memory.reset()
        try:
            seconds, loss, extrapolated = self._run_epoch(epoch)
        except OutOfMemoryError as exc:
            return EpochReport(
                **base, seconds=0.0, status="oom", detail=str(exc),
                peak_memory_mb=self.memory.peak / 1e6,
            )
        if self.time_limit is not None and seconds > self.time_limit:
            return EpochReport(
                **base, seconds=self.time_limit, status="timeout",
                detail=f"extrapolated epoch {seconds:.1f}s exceeds limit",
                extrapolated=True, peak_memory_mb=self.memory.peak / 1e6,
            )
        return EpochReport(
            **base, seconds=seconds, loss=loss, extrapolated=extrapolated,
            peak_memory_mb=self.memory.peak / 1e6,
        )
