"""Adapter exposing FlexGraph itself through the baseline-engine interface
so benchmark tables can iterate over all competitors uniformly."""

from __future__ import annotations

import time

import numpy as np

from ..core.engine import FlexGraphEngine
from ..core.hybrid import ExecutionStrategy
from ..models.gcn import gcn
from ..models.magnn import default_metapaths, magnn
from ..models.pinsage import pinsage
from ..tensor.optim import Adam
from ..tensor.tensor import Tensor
from .common import BaselineEngine

__all__ = ["FlexGraphAdapter"]


class FlexGraphAdapter(BaselineEngine):
    """FlexGraph (HA strategy) behind the Table 2 engine interface."""

    name = "flexgraph"
    supported_models = ("gcn", "pinsage", "magnn")

    def _prepare(self) -> None:
        ds = self.dataset
        if self.model_name == "gcn":
            model = gcn(ds.feat_dim, self.hidden_dim, ds.num_classes, seed=self.seed)
        elif self.model_name == "pinsage":
            model = pinsage(
                ds.feat_dim, self.hidden_dim, ds.num_classes, seed=self.seed,
                num_traces=self.model_params.get("num_traces", 10),
                n_hops=self.model_params.get("n_hops", 3),
                top_k=self.model_params.get("top_k", 10),
            )
        else:
            model = magnn(
                ds.feat_dim, self.hidden_dim, ds.num_classes, seed=self.seed,
                metapaths=self.model_params.get("metapaths")
                or default_metapaths(ds.graph.num_types),
                max_instances_per_root=self.model_params.get("max_instances_per_root"),
            )
        self.model = model
        strategy = self.model_params.get("strategy", ExecutionStrategy.HA)
        self.engine = FlexGraphEngine(model, ds.graph, strategy=strategy, seed=self.seed)
        self.optimizer = Adam(model.parameters(), lr=0.01)
        self.feats = Tensor(ds.features.astype(np.float64))

    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        ds = self.dataset
        t0 = time.perf_counter()
        stats = self.engine.train_epoch(
            self.feats, ds.labels, self.optimizer, ds.train_mask, epoch
        )
        return time.perf_counter() - t0, stats.loss, False

    @property
    def last_stage_times(self):
        """Per-stage breakdown of the most recent epoch (Table 4)."""
        return self.engine.last_times
