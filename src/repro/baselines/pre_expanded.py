"""Pre+DGL: GAS-like execution over a pre-computed expanded graph (§7.2).

Pre+DGL "simulates" FlexGraph inside a GAS-like framework: an offline
pre-computation materializes the HDGs as an expanded graph, and runtime
applies GAS operations on it.  Per the paper, reported epoch time covers
only the computation *on* the expanded graph, not the pre-computation.

* **PinSage**: HDGs differ per epoch (walks are stochastic), so the
  expansion can only be approximated: many walks run offline build an
  importance-weighted candidate graph; each epoch *weighted-samples*
  top-k neighbors from the (larger) candidate lists and aggregates with
  scatter ops.
* **MAGNN**: HDGs are static, so the expansion is exact; each layer runs
  multiple GAS rounds over the expanded graph — scatter ops at every
  level (no feature fusion, no dense schema-level reduction).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.hdg import HDG, hdg_from_flat_arrays
from ..core.hybrid import ExecutionStrategy, hierarchical_aggregate
from ..core.schema import SchemaTree
from ..core.selection import build_metapath_hdg
from ..graph.random_walk import top_k_visited
from ..models.magnn import default_metapaths
from ..tensor.optim import Adam
from ..tensor.scatter import scatter_add
from ..tensor.tensor import Tensor
from .common import BaselineEngine
from .model_math import BaselineModel

__all__ = ["PreDGLEngine"]


class PreDGLEngine(BaselineEngine):
    """The Pre+DGL baseline of Table 3."""

    name = "pre+dgl"
    supported_models = ("pinsage", "magnn")

    def _prepare(self) -> None:
        ds = self.dataset
        self.model = BaselineModel(
            self.model_name, ds.feat_dim, self.hidden_dim, ds.num_classes,
            seed=self.seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=0.01)
        self.feats = Tensor(ds.features.astype(np.float64))
        self._walk_params = {
            "num_traces": self.model_params.get("num_traces", 10),
            "n_hops": self.model_params.get("n_hops", 3),
            "top_k": self.model_params.get("top_k", 10),
        }
        self.precompute_seconds = 0.0
        t0 = time.perf_counter()
        if self.model_name == "pinsage":
            self._precompute_pinsage_candidates()
        else:
            self._precompute_magnn_expansion()
        self.precompute_seconds = time.perf_counter() - t0

    # -- offline pre-computation (not counted in epoch time) ---------------
    def _precompute_pinsage_candidates(self) -> None:
        ds = self.dataset
        n = ds.graph.num_vertices
        roots = np.arange(n, dtype=np.int64)
        oversample = self.model_params.get("oversample", 4)
        # Run many more walks offline and keep an enlarged candidate list
        # per root, with importance weights.
        owners, nbrs, weights = top_k_visited(
            ds.graph, roots,
            self._walk_params["num_traces"] * oversample,
            self._walk_params["n_hops"],
            self._walk_params["top_k"] * oversample,
            self._rng,
        )
        order = np.argsort(owners, kind="stable")
        self._cand_owner = owners[order]
        self._cand_nbr = nbrs[order]
        self._cand_weight = weights[order]
        counts = np.bincount(self._cand_owner, minlength=n)
        self._cand_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cand_offsets[1:])

    def _precompute_magnn_expansion(self) -> None:
        ds = self.dataset
        metapaths = self.model_params.get("metapaths") or default_metapaths(
            ds.graph.num_types
        )
        cap = self.model_params.get("max_instances_per_root")
        self._expanded_hdg: HDG = build_metapath_hdg(ds.graph, metapaths, cap)

    # -- runtime ------------------------------------------------------------
    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        t0 = time.perf_counter()
        if self.model_name == "pinsage":
            loss = self._pinsage_epoch()
        else:
            loss = self._magnn_epoch()
        return time.perf_counter() - t0, loss, False

    def _pinsage_epoch(self) -> float:
        ds = self.dataset
        n = ds.graph.num_vertices
        k = self._walk_params["top_k"]
        # Weighted sampling of k neighbors per root from the candidate
        # lists — cheaper than walking, but over a larger edge set than
        # FlexGraph's exact top-k HDG.  Vectorized weighted reservoir
        # sampling: per-root top-k of u^(1/w) keys.
        keys = self._rng.random(self._cand_nbr.size) ** (
            1.0 / np.maximum(self._cand_weight, 1e-12)
        )
        order = np.lexsort((self._cand_nbr, -keys, self._cand_owner))
        owner_s = self._cand_owner[order]
        change = np.flatnonzero(np.diff(owner_s, prepend=owner_s[0] - 1)) if owner_s.size else np.empty(0, dtype=np.int64)
        group_start = np.zeros(owner_s.size, dtype=np.int64)
        group_start[change] = change
        group_start = np.maximum.accumulate(group_start)
        rank = np.arange(owner_s.size) - group_start
        keep = order[rank < k]
        owners = self._cand_owner[keep]
        nbrs = self._cand_nbr[keep]
        raw = self._cand_weight[keep]
        sums = np.bincount(owners, weights=raw, minlength=n)
        weights = raw / sums[owners]
        hdg = hdg_from_flat_arrays(
            SchemaTree(), np.arange(n, dtype=np.int64), owners, nbrs, weights, n
        )
        dst, src = hdg.sub_graph(1)
        h = self.feats
        for layer in range(self.model.num_layers):
            self.memory.charge(src.size * h.shape[1] * 8, "edge messages")
            gathered = h[src] * Tensor(hdg.leaf_weights.reshape(-1, 1))
            agg = scatter_add(gathered, dst, n)
            self.memory.release(src.size * h.shape[1] * 8)
            h = self.model.update(layer, h, agg)
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)

    def _magnn_epoch(self) -> float:
        ds = self.dataset
        hdg = self._expanded_hdg
        h = self.feats
        for layer in range(self.model.num_layers):
            # Multiple GAS rounds on the expanded graph = scatter ops at
            # every HDG level (the SA strategy).
            self.memory.charge(
                hdg.leaf_vertices.size * h.shape[1] * 8, "expanded-graph messages"
            )
            agg = hierarchical_aggregate(
                hdg, h, self.model.magnn_aggregators[layer], ExecutionStrategy.SA
            )
            self.memory.release(hdg.leaf_vertices.size * h.shape[1] * 8)
            h = self.model.update(layer, h, agg)
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)
