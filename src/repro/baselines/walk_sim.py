"""Random-walk *simulation* via graph propagation — the slow path.

DGL and PyTorch have no graph engine, so PinSage implementations on them
"simulate random walks with several graph propagation stages" (§2.3):
every hop of every trace runs a full O(E) propagation over the graph,
materializing per-edge tensors along the way.  The paper measures >95% of
their PinSage epoch inside this simulation.

Contrast with :func:`repro.graph.random_walk.random_walks`, FlexGraph's
graph-engine kernel, which advances all walkers in O(n) per hop.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .common import MemoryMeter

__all__ = ["propagation_random_walks", "top_k_from_visits"]


def propagation_random_walks(
    graph: Graph,
    num_traces: int,
    n_hops: int,
    rng: np.random.Generator,
    memory: MemoryMeter,
    edge_temporaries: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate walks from every vertex using per-hop edge propagation.

    Each hop materializes per-edge random keys and reduces them per source
    vertex to pick one outgoing edge for *every* vertex — O(E) work and an
    O(E) temporary per hop (``edge_temporaries`` scales the accounting for
    engines that stage the propagation through more intermediate edge
    tensors, e.g. plain PyTorch's Scatter + ApplyEdge).

    Returns
    -------
    (roots, visited):
        Flat parallel arrays with one entry per (walker, hop) visit.
    """
    n = graph.num_vertices
    src, dst = graph.edges()
    num_edges = src.size
    roots_out: list[np.ndarray] = []
    visits_out: list[np.ndarray] = []
    all_roots = np.arange(n, dtype=np.int64)
    for _trace in range(num_traces):
        current = all_roots.copy()
        for _hop in range(n_hops):
            # Materialize per-edge random keys (the propagation message).
            memory.charge(num_edges * 8 * edge_temporaries, "per-edge walk messages")
            keys = rng.random(num_edges)
            best = np.full(n, -1.0)
            np.maximum.at(best, src, keys)
            chosen = keys == best[src]
            next_of = np.arange(n, dtype=np.int64)  # sinks stay put
            next_of[src[chosen]] = dst[chosen]
            memory.release(num_edges * 8 * edge_temporaries)
            current = next_of[current]
            roots_out.append(all_roots)
            visits_out.append(current.copy())
    return np.concatenate(roots_out), np.concatenate(visits_out)


def top_k_from_visits(
    roots: np.ndarray,
    visited: np.ndarray,
    num_vertices: int,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-root top-k most-visited vertices with normalized frequencies.

    Same post-processing as the graph-engine path, so the two walk
    implementations produce statistically equivalent neighborhoods.
    """
    valid = roots != visited
    roots, visited = roots[valid], visited[valid]
    if roots.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)
    key = roots * (num_vertices + 1) + visited
    uniq, counts = np.unique(key, return_counts=True)
    uniq_root = uniq // (num_vertices + 1)
    uniq_visit = uniq % (num_vertices + 1)
    from ..graph.random_walk import select_top_k_per_owner

    return select_top_k_per_owner(uniq_root, uniq_visit, counts, k)
