"""NeuGraph-style chunked whole-graph execution (§8 related work).

NeuGraph "first splits a large graph into multiple chunks, using a 2-D
graph partitioning; it then processes one chunk each time where a
GAS-like abstraction (SAGA-NN) is applied on each chunk and the
intermediate result of each chunk is stored; and finally it combines all
intermediate results after all chunks are processed."  The paper could
not benchmark it (no public implementation); this module reconstructs
the strategy so the comparison exists here as an extension:

* destination vertices are split into ``num_chunks`` row blocks and
  source vertices into column blocks (the 2-D edge grid);
* each (dst-block, src-block) chunk runs SAGA-NN over only its edges,
  producing a partial aggregate for the dst block;
* partial aggregates accumulate across the row, bounding the live edge
  state to one chunk (the point of chunking) at ~``E/num_chunks^2``
  edges, at the cost of chunk-scheduling overhead.
"""

from __future__ import annotations

import time

import numpy as np

from ..tensor.optim import Adam
from ..tensor.scatter import scatter_add
from ..tensor.tensor import Tensor
from .common import BaselineEngine
from .model_math import BaselineModel

__all__ = ["NeuGraphEngine"]


class NeuGraphEngine(BaselineEngine):
    """Chunk-at-a-time whole-graph GAS execution (DNFA models only —
    SAGA-NN's expressivity limit applies just as it does to DGL)."""

    name = "neugraph"
    supported_models = ("gcn",)

    def _prepare(self) -> None:
        ds = self.dataset
        self.model = BaselineModel(
            self.model_name, ds.feat_dim, self.hidden_dim, ds.num_classes,
            seed=self.seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=0.01)
        self.feats = Tensor(ds.features.astype(np.float64))
        self.num_chunks = self.model_params.get("num_chunks", 4)
        if self.num_chunks <= 0:
            raise ValueError("num_chunks must be positive")
        # 2-D chunk grid over the edge set: bucket edges by
        # (dst block, src block) once.
        n = ds.graph.num_vertices
        dst, src = ds.graph.coo()
        block = int(np.ceil(n / self.num_chunks))
        self._block = block
        dst_blk = dst // block
        src_blk = src // block
        grid_key = dst_blk * self.num_chunks + src_blk
        order = np.argsort(grid_key, kind="stable")
        self._dst = dst[order]
        self._src = src[order]
        counts = np.bincount(grid_key, minlength=self.num_chunks**2)
        self._chunk_offsets = np.zeros(self.num_chunks**2 + 1, dtype=np.int64)
        np.cumsum(counts, out=self._chunk_offsets[1:])

    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        t0 = time.perf_counter()
        ds = self.dataset
        n = ds.graph.num_vertices
        h = self.feats
        for layer in range(self.model.num_layers):
            agg = None
            for chunk in range(self.num_chunks**2):
                lo = self._chunk_offsets[chunk]
                hi = self._chunk_offsets[chunk + 1]
                if lo == hi:
                    continue
                dst = self._dst[lo:hi]
                src = self._src[lo:hi]
                # One chunk's live edge state only (the memory bound);
                # SAGA-NN over the chunk, accumulated into the running
                # intermediate result.
                chunk_bytes = (hi - lo) * h.shape[1] * 8
                self.memory.charge(chunk_bytes, "chunk edge messages")
                partial = scatter_add(h[src], dst, n)
                self.memory.release(chunk_bytes)
                agg = partial if agg is None else agg + partial
            if agg is None:
                from ..tensor.ops import zeros

                agg = zeros(n, h.shape[1])
            h = self.model.update(layer, h, agg)
        loss = self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)
        return time.perf_counter() - t0, loss, False
