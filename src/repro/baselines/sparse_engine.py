"""PyTorch-style baseline: pure sparse-tensor execution.

Models the paper's "PyTorch v1.5.1" competitor (Table 2): graphs are
encoded as sparse index tensors and every graph operation is simulated
with tensor ops —

* **GCN**: each layer explicitly stages Scatter (gather source features
  onto edges) and ApplyEdge (an identity pass over the edge tensor)
  before reducing, materializing *two* ``(E, dim)`` temporaries per layer
  (§4.2's memory-explosion path).
* **PinSage**: random walks are simulated with per-hop O(E) graph
  propagation (>95% of epoch time, §7.1) and re-run every epoch.
* **MAGNN**: metapath instances are re-discovered every epoch with the
  naive DFS matcher, and aggregation materializes per-instance member
  features — the "large intermediate tensors" that OOM on big graphs.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.hdg import HDG, hdg_from_flat_arrays
from ..core.hybrid import ExecutionStrategy, hierarchical_aggregate
from ..core.schema import SchemaTree
from ..core.selection import schema_for_metapaths, select_metapath_neighbors
from ..graph.metapath import count_length3_instances
from ..models.magnn import default_metapaths
from ..tensor.optim import Adam
from ..tensor.scatter import scatter_add
from ..tensor.tensor import Tensor
from .common import BaselineEngine
from .model_math import BaselineModel
from .walk_sim import propagation_random_walks, top_k_from_visits

__all__ = ["PyTorchEngine"]


class PyTorchEngine(BaselineEngine):
    """Sparse-tensor-only execution (the PyTorch column of Table 2)."""

    name = "pytorch"
    supported_models = ("gcn", "pinsage", "magnn")

    def _prepare(self) -> None:
        ds = self.dataset
        self.model = BaselineModel(
            self.model_name, ds.feat_dim, self.hidden_dim, ds.num_classes,
            seed=self.seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=0.01)
        self.feats = Tensor(ds.features.astype(np.float64))
        if self.model_name == "gcn":
            # COO index tensors, rebuilt once (static graph).
            self._dst, self._src = ds.graph.coo()
        elif self.model_name == "magnn":
            self.metapaths = self.model_params.get("metapaths") or default_metapaths(
                ds.graph.num_types
            )
            self._cap = self.model_params.get("max_instances_per_root")
        self._walk_params = {
            "num_traces": self.model_params.get("num_traces", 10),
            "n_hops": self.model_params.get("n_hops", 3),
            "top_k": self.model_params.get("top_k", 10),
        }

    # ------------------------------------------------------------------
    def _run_epoch(self, epoch: int) -> tuple[float, float | None, bool]:
        t0 = time.perf_counter()
        if self.model_name == "gcn":
            loss = self._gcn_epoch()
        elif self.model_name == "pinsage":
            loss = self._pinsage_epoch()
        else:
            loss = self._magnn_epoch()
        return time.perf_counter() - t0, loss, False

    # ------------------------------------------------------------------
    def _gcn_epoch(self) -> float:
        ds = self.dataset
        h = self.feats
        n = ds.graph.num_vertices
        for layer in range(self.model.num_layers):
            dim = h.shape[1]
            edge_bytes = self._src.size * dim * 8
            # Scatter stage: materialize source features on every edge.
            self.memory.charge(edge_bytes, "edge messages (Scatter)")
            edge_feats = h[self._src]
            # ApplyEdge stage: identity NN pass over the edge tensor —
            # a second full-size edge temporary.
            self.memory.charge(edge_bytes, "edge messages (ApplyEdge)")
            edge_feats = edge_feats * 1.0
            agg = scatter_add(edge_feats, self._dst, n)
            self.memory.release(2 * edge_bytes)
            h = self.model.update(layer, h, agg)
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)

    def _pinsage_epoch(self) -> float:
        ds = self.dataset
        # Walk simulation by graph propagation, re-run every epoch; plain
        # PyTorch stages each hop through two edge tensors.
        roots, visited = propagation_random_walks(
            ds.graph, self._walk_params["num_traces"], self._walk_params["n_hops"],
            self._rng, self.memory, edge_temporaries=2,
        )
        owners, nbrs, weights = top_k_from_visits(
            roots, visited, ds.graph.num_vertices, self._walk_params["top_k"]
        )
        all_roots = np.arange(ds.graph.num_vertices, dtype=np.int64)
        hdg = hdg_from_flat_arrays(
            SchemaTree(), all_roots, owners, nbrs, weights, ds.graph.num_vertices
        )
        h = self.feats
        for layer in range(self.model.num_layers):
            agg = self._charged_sparse_aggregate(hdg, h, layer)
            h = self.model.update(layer, h, agg)
        return self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)

    def _magnn_epoch(self) -> float:
        ds = self.dataset
        # Project the per-instance feature tensor a naive implementation
        # materializes; refuse before doing the work if it cannot fit.
        # The naive tensor join materializes *every* matched instance
        # before any per-root cap can be applied, so the projection uses
        # the uncapped count — this is the intermediate-tensor blow-up
        # behind the paper's OOM cells (§7.1).
        total_instances = sum(
            count_length3_instances(ds.graph, mp)
            for mp in self.metapaths
            if mp.length == 3
        )
        inst_bytes = total_instances * 3 * self.feats.shape[1] * 8
        self.memory.charge(inst_bytes, "metapath instance feature tensor")
        # Naive implementations re-discover instances every epoch (there
        # is no HDG cache); this DFS dominates the epoch (§7.1: >95%).
        records = select_metapath_neighbors(
            ds.graph, self.metapaths, max_instances_per_root=self._cap
        )
        roots = np.arange(ds.graph.num_vertices, dtype=np.int64)
        hdg = HDG.from_records(
            records, schema_for_metapaths(self.metapaths), roots,
            ds.graph.num_vertices, flat=False,
        )
        h = self.feats
        for layer in range(self.model.num_layers):
            agg = hierarchical_aggregate(
                hdg, h, self.model.magnn_aggregators[layer], ExecutionStrategy.SA
            )
            h = self.model.update(layer, h, agg)
        loss = self.model.train_step(h, ds.labels, ds.train_mask, self.optimizer)
        self.memory.release(inst_bytes)
        return loss

    # ------------------------------------------------------------------
    def _charged_sparse_aggregate(self, hdg: HDG, h: Tensor, layer: int) -> Tensor:
        """Flat SA aggregation with edge-tensor memory accounting."""
        edge_bytes = hdg.leaf_vertices.size * h.shape[1] * 8
        self.memory.charge(edge_bytes, "edge messages")
        dst, src = hdg.sub_graph(1)
        gathered = h[src]
        if hdg.leaf_weights is not None:
            gathered = gathered * Tensor(hdg.leaf_weights.reshape(-1, 1))
        agg = scatter_add(gathered, dst, hdg.num_roots)
        self.memory.release(edge_bytes)
        return agg
