"""The staged streaming minibatch pipeline: sample → gather → transfer.

Each epoch is split into per-batch descriptors up front — the seed
permutation *and* one RNG seed per batch are pre-drawn from the epoch
seed (``SeedSequence([seed, epoch])``) — so what a batch samples is a
pure function of ``(seed, epoch, batch index)``.  That is what makes
the pipeline reproducible: prefetch depth, worker-thread count and
scheduling jitter cannot change the stream, only *when* each batch is
produced.

Production runs either inline (``prefetch_depth == 0``; the synchronous
baseline) or on background worker threads over a bounded in-flight
budget: a worker must hold one of ``prefetch_depth`` permits before it
claims the next batch index, and the permit is returned only when the
training loop consumes that batch.  Claims are handed out in index
order and batches are emitted in index order (training order equals
plan order — optimizer steps are sequential and deterministic), so the
permit bound is also a deadlock-freedom argument: the consumer always
waits on the smallest outstanding index, whose claimant holds a permit
and never blocks while producing.

Every stage reports into :mod:`repro.obs`: per-batch
``loader.sample`` / ``loader.gather`` / ``loader.transfer`` spans,
``loader.queue_depth`` (ready-but-unconsumed batches) and
``loader.batches`` / ``loader.bytes_gathered`` counters.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..core.hdg import HDG
from ..core.sampling import build_seed_blocks
from ..tensor.ops import scatter_rows
from ..tensor.tensor import Tensor
from .source import DataSource, as_source

__all__ = [
    "BatchPlan",
    "CompactBlocks",
    "SampledBatch",
    "StreamingLoader",
    "compact_blocks",
    "plan_epoch",
    "run_local_blocks",
]


@dataclass(frozen=True)
class BatchPlan:
    """What batch ``index`` of an epoch will sample — fixed up front."""

    index: int
    epoch: int
    seeds: np.ndarray       # global vertex ids, draw order
    rng_seed: int           # per-batch sampling seed, pre-drawn


def plan_epoch(pool: np.ndarray, batch_size: int, *, seed: int,
               epoch: int) -> list[BatchPlan]:
    """Pre-draw the epoch's batch plans from ``(seed, epoch)`` alone.

    The pool permutation and every batch's sampling seed come from one
    ``SeedSequence([seed, epoch])`` stream, so the plan is identical no
    matter how many loader workers later execute it.
    """
    pool = np.asarray(pool, dtype=np.int64)
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), int(epoch)]))
    order = rng.permutation(pool)
    num_batches = -(-order.size // batch_size) if order.size else 0
    batch_seeds = rng.integers(0, np.iinfo(np.int64).max, size=num_batches)
    return [
        BatchPlan(
            index=i,
            epoch=epoch,
            seeds=order[i * batch_size : (i + 1) * batch_size],
            rng_seed=int(batch_seeds[i]),
        )
        for i in range(num_batches)
    ]


@dataclass
class CompactBlocks:
    """Seed blocks relabeled into batch-local coordinates.

    ``input_vertices`` (sorted unique global ids) is the batch's feature
    universe; every block's leaf/root ids are positions into it, so the
    whole forward pass runs on arrays of size O(batch) — never O(graph).
    """

    input_vertices: np.ndarray
    blocks: list[tuple[HDG, np.ndarray]]   # (local block, local out rows)
    seed_rows: np.ndarray                  # final-layer rows of the seeds

    @property
    def num_local(self) -> int:
        return int(self.input_vertices.size)


def compact_blocks(blocks: list[tuple[HDG, np.ndarray]],
                   seeds: np.ndarray) -> CompactBlocks:
    """Relabel :func:`build_seed_blocks` output into local coordinates."""
    first_block, first_out = blocks[0]
    input_vertices = np.union1d(first_out, first_block.leaf_vertices)

    def local(ids: np.ndarray) -> np.ndarray:
        return np.searchsorted(input_vertices, ids)

    local_blocks: list[tuple[HDG, np.ndarray]] = []
    for block, out_vertices in blocks:
        out_local = local(out_vertices)
        local_blocks.append((
            HDG(
                out_local, block.schema, local(block.leaf_vertices),
                block.leaf_offsets, instance_offsets=None,
                leaf_weights=block.leaf_weights,
                num_input_vertices=input_vertices.size,
            ),
            out_local,
        ))
    return CompactBlocks(
        input_vertices=input_vertices,
        blocks=local_blocks,
        seed_rows=local(np.asarray(seeds, dtype=np.int64)),
    )


def run_local_blocks(model, compact: CompactBlocks, feats: Tensor,
                     strategy) -> Tensor:
    """Layer-wise forward over local-coordinate blocks.

    ``feats`` holds the gathered input rows (one per
    ``input_vertices``); the result stays in the same local universe —
    index it with ``compact.seed_rows`` for the seed logits.
    """
    h = feats
    for layer, (block, out_local) in zip(model.layers, compact.blocks):
        nbr = layer.aggregation(h, block, strategy)
        h_rows = layer.update(h[out_local], nbr)
        h = scatter_rows(h_rows, out_local, compact.num_local)
    return h


@dataclass
class SampledBatch:
    """One fully staged batch, ready for a train step."""

    index: int
    epoch: int
    seeds: np.ndarray
    compact: CompactBlocks
    feats: Tensor
    labels: np.ndarray | None
    sample_seconds: float = 0.0
    gather_seconds: float = 0.0
    transfer_seconds: float = 0.0

    @property
    def blocks(self) -> list[tuple[HDG, np.ndarray]]:
        return self.compact.blocks

    @property
    def seed_rows(self) -> np.ndarray:
        return self.compact.seed_rows

    @property
    def stage_seconds(self) -> float:
        return self.sample_seconds + self.gather_seconds + self.transfer_seconds


@dataclass
class _EpochRun:
    """Shared state of one threaded epoch."""

    plans: list[BatchPlan]
    next_index: int = 0
    results: dict = field(default_factory=dict)
    stop: threading.Event = field(default_factory=threading.Event)


class StreamingLoader:
    """Background sample/gather/transfer over a bounded prefetch window.

    Parameters
    ----------
    source:
        A :class:`~repro.loader.DataSource` (or anything
        :func:`as_source` accepts) features and labels are gathered
        from.
    fanouts:
        Per-layer neighbor budgets, bottom layer first (entries may be
        ``None`` for exact neighborhoods).
    batch_size:
        Seed vertices per batch.
    prefetch_depth:
        Max batches in flight (claimed but not yet consumed by the
        training loop).  ``0`` disables the worker threads entirely —
        batches are produced inline, the synchronous baseline.
    num_workers:
        Worker threads executing the staged production (capped by
        ``prefetch_depth``; ignored when ``prefetch_depth == 0``).
    transfer:
        When true, finish each batch with the device-transfer stub (a
        contiguous copy standing in for an H2D upload, reported under
        ``loader.transfer``).
    modeled_transfer_gbps:
        When set, the transfer stub also *models* the device link: it
        blocks for ``bytes / (gbps * 1e9)`` seconds per batch, the way
        :class:`~repro.distributed.comm.SimulatedComm` models network
        time.  The wait is real blocking (off-GIL), so prefetching
        genuinely hides it — this is what a CUDA H2D copy overlapped
        with compute looks like, without a GPU in the loop.  The span is
        flagged ``simulated`` accordingly.  ``None`` (default) keeps the
        stub free.
    feature_dtype:
        ``"float32"``/``"float16"``/``"int8"`` wraps raw features in an
        in-RAM :class:`~repro.loader.QuantizedSource` (dequantize on
        gather); ``None`` keeps them exact.  Gather traffic is reported
        both as compute bytes (``loader.bytes_gathered``) and storage
        wire bytes (``loader.wire_bytes``).
    """

    def __init__(self, source, fanouts: list, batch_size: int = 256,
                 prefetch_depth: int = 2, num_workers: int = 2,
                 transfer: bool = True,
                 modeled_transfer_gbps: float | None = None,
                 labels: np.ndarray | None = None,
                 feature_dtype: str | None = None):
        self.source: DataSource = as_source(source, labels,
                                            feature_dtype=feature_dtype)
        self.fanouts = list(fanouts)
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.prefetch_depth = int(prefetch_depth)
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.num_workers = max(1, int(num_workers))
        self.transfer = bool(transfer)
        if modeled_transfer_gbps is not None and modeled_transfer_gbps <= 0:
            raise ValueError("modeled_transfer_gbps must be positive")
        self.modeled_transfer_gbps = modeled_transfer_gbps

    # ------------------------------------------------------------------
    # Staged production (runs on a worker thread or inline)
    # ------------------------------------------------------------------
    def _produce(self, hdg: HDG, plan: BatchPlan) -> SampledBatch:
        rng = np.random.default_rng(plan.rng_seed)
        t0 = time.perf_counter()
        blocks = build_seed_blocks(hdg, plan.seeds, self.fanouts, rng)
        compact = compact_blocks(blocks, plan.seeds)
        sample_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        rows = self.source.gather_features(compact.input_vertices)
        labels = self.source.gather_labels(plan.seeds)
        gather_s = time.perf_counter() - t1

        transfer_s = 0.0
        if self.transfer:
            t2 = time.perf_counter()
            # Device-transfer stub: the contiguous staging copy a real
            # H2D upload would make; keeps the stage's cost visible.
            rows = np.ascontiguousarray(rows)
            if self.modeled_transfer_gbps is not None:
                # Model the link itself: block for the bytes at the
                # configured bandwidth.  A real wait, so prefetch can
                # genuinely hide it behind training.
                time.sleep(rows.nbytes / (self.modeled_transfer_gbps * 1e9))
            transfer_s = time.perf_counter() - t2

        reg = obs.get_registry()
        attrs = {"epoch": plan.epoch, "batch": plan.index}
        reg.record_span("loader.sample", sample_s, simulated=False, **attrs)
        reg.record_span("loader.gather", gather_s, simulated=False, **attrs)
        if self.transfer:
            reg.record_span("loader.transfer", transfer_s,
                            simulated=self.modeled_transfer_gbps is not None,
                            **attrs)
        obs.counter("loader.batches").add(1)
        obs.counter("loader.bytes_gathered").add(int(rows.nbytes))
        # Wire bytes: what the storage tier actually moved for this
        # gather (quantized codes + sidecars for a quantized source);
        # equals bytes_gathered only for unquantized storage.
        wire_per_row = getattr(self.source, "wire_bytes_per_row", None)
        wire = (int(wire_per_row) * int(compact.input_vertices.size)
                if wire_per_row is not None else int(rows.nbytes))
        obs.counter("loader.wire_bytes").add(wire)

        return SampledBatch(
            index=plan.index, epoch=plan.epoch, seeds=plan.seeds,
            compact=compact, feats=Tensor(rows), labels=labels,
            sample_seconds=sample_s, gather_seconds=gather_s,
            transfer_seconds=transfer_s,
        )

    # ------------------------------------------------------------------
    # Epoch iteration
    # ------------------------------------------------------------------
    def epoch_batches(self, hdg: HDG, pool: np.ndarray, *, epoch: int,
                      seed: int):
        """Yield the epoch's batches in plan order.

        With ``prefetch_depth == 0`` this is a plain generator; otherwise
        worker threads run the staged production ahead of the consumer,
        at most ``prefetch_depth`` batches deep.
        """
        plans = plan_epoch(pool, self.batch_size, seed=seed, epoch=epoch)
        if not plans:
            return iter(())
        if self.prefetch_depth == 0:
            return (self._produce(hdg, plan) for plan in plans)
        return self._threaded_epoch(hdg, plans)

    def _threaded_epoch(self, hdg: HDG, plans: list[BatchPlan]):
        run = _EpochRun(plans=plans)
        claim_lock = threading.Lock()
        cond = threading.Condition()
        permits = threading.BoundedSemaphore(self.prefetch_depth)
        depth_gauge = obs.gauge("loader.queue_depth")

        def worker() -> None:
            while not run.stop.is_set():
                # Permit first, then claim: every claimed-but-unconsumed
                # batch holds a permit, and claims go out in index order
                # — the consumer's next batch is always being produced.
                if not permits.acquire(timeout=0.05):
                    continue
                with claim_lock:
                    index = run.next_index
                    if index >= len(run.plans):
                        permits.release()
                        return
                    run.next_index += 1
                try:
                    result = self._produce(hdg, run.plans[index])
                except BaseException as exc:  # surfaced on the consumer
                    result = exc
                with cond:
                    run.results[index] = result
                    depth_gauge.set(len(run.results))
                    cond.notify_all()

        threads = [
            threading.Thread(target=worker, name=f"loader-{i}", daemon=True)
            for i in range(min(self.num_workers, self.prefetch_depth))
        ]
        for t in threads:
            t.start()

        def iterate():
            try:
                for index in range(len(plans)):
                    with cond:
                        while index not in run.results:
                            if not any(t.is_alive() for t in threads):
                                raise RuntimeError(
                                    "loader workers exited without producing "
                                    f"batch {index}"
                                )
                            cond.wait(timeout=0.1)
                        result = run.results.pop(index)
                        depth_gauge.set(len(run.results))
                    permits.release()
                    if isinstance(result, BaseException):
                        raise result
                    yield result
            finally:
                run.stop.set()
                for t in threads:
                    t.join()
                depth_gauge.set(0)

        return iterate()
