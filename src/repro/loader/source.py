"""Feature/label sources — what a streaming loader gathers from.

A :class:`DataSource` is anything that can hand back feature rows and
labels for an arbitrary set of vertex ids: an in-RAM array pair, a
:class:`~repro.datasets.synthetic.Dataset`, or an out-of-core
:class:`~repro.storage.ondisk.OnDiskDataset` (which implements the
protocol natively — its gathers touch only the memmap pages the rows
live on).  :func:`as_source` normalizes whatever the trainer was handed.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["DataSource", "InMemorySource", "as_source"]


@runtime_checkable
class DataSource(Protocol):
    """Row-gatherable feature/label storage."""

    num_vertices: int
    feat_dim: int

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        """Feature rows in the requested order, shape (len(rows), feat_dim)."""
        ...

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        """Label values in the requested order."""
        ...


class InMemorySource:
    """A :class:`DataSource` over arrays already resident in RAM."""

    def __init__(self, features, labels: np.ndarray | None = None):
        # Accept a Tensor without importing the tensor module.
        data = getattr(features, "data", features)
        self.features = np.asarray(data)
        if self.features.ndim != 2:
            raise ValueError("features must be 2-D (num_vertices, feat_dim)")
        self.labels = None if labels is None else np.asarray(labels)
        self.num_vertices = int(self.features.shape[0])
        self.feat_dim = int(self.features.shape[1])

    @property
    def feature_dtype(self) -> np.dtype:
        return self.features.dtype

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        return self.features[np.asarray(rows, dtype=np.int64)]

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        if self.labels is None:
            raise ValueError("this source carries no labels")
        return self.labels[np.asarray(rows, dtype=np.int64)]


def as_source(obj, labels: np.ndarray | None = None) -> DataSource:
    """Normalize trainer input into a :class:`DataSource`.

    Accepts an existing source (``OnDiskDataset``, ``InMemorySource``),
    a ``Dataset``, or a raw feature array / ``Tensor`` plus optional
    ``labels``.  An explicit ``labels`` array overrides whatever the
    source carries.
    """
    if hasattr(obj, "gather_features") and hasattr(obj, "gather_labels"):
        if labels is None:
            return obj
        return _LabelOverride(obj, labels)
    if hasattr(obj, "features") and hasattr(obj, "graph"):  # Dataset
        return InMemorySource(obj.features, labels if labels is not None else obj.labels)
    return InMemorySource(obj, labels)


class _LabelOverride:
    """A source with its labels replaced (trainer was given both a
    source and an explicit label array)."""

    def __init__(self, base: DataSource, labels: np.ndarray):
        self._base = base
        self._labels = np.asarray(labels)
        self.num_vertices = base.num_vertices
        self.feat_dim = base.feat_dim

    @property
    def feature_dtype(self):
        return getattr(self._base, "feature_dtype", None)

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        return self._base.gather_features(rows)

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        return self._labels[np.asarray(rows, dtype=np.int64)]
