"""Feature/label sources — what a streaming loader gathers from.

A :class:`DataSource` is anything that can hand back feature rows and
labels for an arbitrary set of vertex ids: an in-RAM array pair, a
:class:`~repro.datasets.synthetic.Dataset`, or an out-of-core
:class:`~repro.storage.ondisk.OnDiskDataset` (which implements the
protocol natively — its gathers touch only the memmap pages the rows
live on).  :func:`as_source` normalizes whatever the trainer was handed.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..tensor.quant import dequantize_rows, quantize_rows, resolve_codec

__all__ = ["DataSource", "InMemorySource", "QuantizedSource", "as_source"]


@runtime_checkable
class DataSource(Protocol):
    """Row-gatherable feature/label storage."""

    num_vertices: int
    feat_dim: int

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        """Feature rows in the requested order, shape (len(rows), feat_dim)."""
        ...

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        """Label values in the requested order."""
        ...


class InMemorySource:
    """A :class:`DataSource` over arrays already resident in RAM."""

    def __init__(self, features, labels: np.ndarray | None = None):
        # Accept a Tensor without importing the tensor module.
        data = getattr(features, "data", features)
        self.features = np.asarray(data)
        if self.features.ndim != 2:
            raise ValueError("features must be 2-D (num_vertices, feat_dim)")
        self.labels = None if labels is None else np.asarray(labels)
        self.num_vertices = int(self.features.shape[0])
        self.feat_dim = int(self.features.shape[1])

    @property
    def feature_dtype(self) -> np.dtype:
        return self.features.dtype

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        return self.features[np.asarray(rows, dtype=np.int64)]

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        if self.labels is None:
            raise ValueError("this source carries no labels")
        return self.labels[np.asarray(rows, dtype=np.int64)]


class QuantizedSource:
    """An in-RAM :class:`DataSource` holding its features quantized.

    Features are encoded once up front (``int8`` with per-row scales,
    or ``float16``/``float32``) and dequantized per gather into
    ``compute_dtype`` — the resident footprint and the bytes a gather
    moves shrink to the wire format (``wire_bytes_per_row``), the same
    trade the quantized on-disk tier makes.
    """

    def __init__(self, features, labels: np.ndarray | None = None,
                 codec: str = "int8", compute_dtype=None):
        data = np.asarray(getattr(features, "data", features))
        if data.ndim != 2:
            raise ValueError("features must be 2-D (num_vertices, feat_dim)")
        self.codec = resolve_codec(codec)
        self.quantized = quantize_rows(data, self.codec)
        self.compute_dtype = np.dtype(
            compute_dtype if compute_dtype is not None
            else (np.float32 if self.codec == "int8" else self.codec)
        )
        if self.compute_dtype.kind != "f":
            raise ValueError(
                f"compute_dtype must be a float dtype, got {self.compute_dtype}"
            )
        self.labels = None if labels is None else np.asarray(labels)
        self.num_vertices = self.quantized.num_rows
        self.feat_dim = self.quantized.dim

    @property
    def feature_dtype(self) -> np.dtype:
        return self.compute_dtype

    @property
    def wire_bytes_per_row(self) -> int:
        return self.quantized.wire_bytes_per_row

    @property
    def nbytes(self) -> int:
        return self.quantized.nbytes

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        return dequantize_rows(self.quantized, rows=rows,
                               out_dtype=self.compute_dtype)

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        if self.labels is None:
            raise ValueError("this source carries no labels")
        return self.labels[np.asarray(rows, dtype=np.int64)]


def as_source(obj, labels: np.ndarray | None = None,
              feature_dtype: str | None = None) -> DataSource:
    """Normalize trainer input into a :class:`DataSource`.

    Accepts an existing source (``OnDiskDataset``, ``InMemorySource``),
    a ``Dataset``, or a raw feature array / ``Tensor`` plus optional
    ``labels``.  An explicit ``labels`` array overrides whatever the
    source carries.

    ``feature_dtype`` (``"float32"``/``"float16"``/``"int8"``) requests
    an in-RAM quantized tier: raw arrays and ``Dataset`` features are
    wrapped in a :class:`QuantizedSource`.  An object that is already a
    source must carry its own storage codec — asking to re-quantize it
    here raises rather than silently double-encoding.
    """
    if hasattr(obj, "gather_features") and hasattr(obj, "gather_labels"):
        if feature_dtype is not None:
            raise ValueError(
                "feature_dtype cannot re-quantize an existing source "
                f"({type(obj).__name__}); build it with the codec instead"
            )
        if labels is None:
            return obj
        return _LabelOverride(obj, labels)
    if hasattr(obj, "features") and hasattr(obj, "graph"):  # Dataset
        feats = obj.features
        got_labels = labels if labels is not None else obj.labels
    else:
        feats, got_labels = obj, labels
    if feature_dtype is not None:
        return QuantizedSource(feats, got_labels, codec=feature_dtype)
    return InMemorySource(feats, got_labels)


class _LabelOverride:
    """A source with its labels replaced (trainer was given both a
    source and an explicit label array)."""

    def __init__(self, base: DataSource, labels: np.ndarray):
        self._base = base
        self._labels = np.asarray(labels)
        self.num_vertices = base.num_vertices
        self.feat_dim = base.feat_dim

    @property
    def feature_dtype(self):
        return getattr(self._base, "feature_dtype", None)

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        return self._base.gather_features(rows)

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        return self._labels[np.asarray(rows, dtype=np.int64)]
