"""``repro.loader`` — the staged streaming minibatch pipeline.

Stages sample → feature gather → device-transfer stub on background
worker threads over a bounded prefetch window, so batch N+1 is being
produced while batch N trains.  Per-batch RNG seeds are pre-drawn from
the epoch seed, making the stream bitwise-identical across prefetch
depths and worker counts.  See ``docs/storage.md`` for tuning.
"""

from .pipeline import (
    BatchPlan,
    CompactBlocks,
    SampledBatch,
    StreamingLoader,
    compact_blocks,
    plan_epoch,
    run_local_blocks,
)
from .source import DataSource, InMemorySource, QuantizedSource, as_source

__all__ = [
    "DataSource", "InMemorySource", "QuantizedSource", "as_source",
    "BatchPlan", "CompactBlocks", "SampledBatch",
    "StreamingLoader",
    "compact_blocks", "plan_epoch", "run_local_blocks",
]
