"""Programmatic experiment runners — the library surface behind the
benchmark harness and the ``flexgraph bench`` CLI command.

The pytest benchmarks under ``benchmarks/`` assert the paper's shapes;
this module provides the same measurements as plain functions so users
can run comparisons from scripts or the CLI without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .baselines import ENGINES, BaselineEngine

__all__ = ["ComparisonConfig", "measure_epoch_cell", "compare_engines", "render_rows"]


@dataclass
class ComparisonConfig:
    """Knobs shared by every engine in a comparison run."""

    hidden_dim: int = 32
    seed: int = 0
    memory_budget: int | None = 300_000_000
    time_limit: float | None = 10.0
    epochs: int = 2                       # measured epochs after warm-up
    model_params: dict = field(default_factory=dict)

    def engine_kwargs(self) -> dict:
        kwargs = dict(
            hidden_dim=self.hidden_dim,
            seed=self.seed,
            memory_budget=self.memory_budget,
            time_limit=self.time_limit,
        )
        kwargs.update(self.model_params)
        return kwargs


def measure_epoch_cell(engine: BaselineEngine, epochs: int = 2) -> str:
    """One engine's Table 2-style cell: warm once, then average.

    Engines that fail (OOM / unsupported / timeout) or extrapolate report
    their first epoch's cell directly.
    """
    first = engine.run_epoch(0)
    if first.status != "ok" or first.extrapolated:
        return first.cell
    seconds = [engine.run_epoch(e).seconds for e in range(1, 1 + epochs)]
    return f"{float(np.mean(seconds)):.3f}"


def compare_engines(
    dataset,
    model_name: str,
    engine_names: list[str] | None = None,
    config: ComparisonConfig | None = None,
) -> dict[str, str]:
    """Run every engine on one (dataset, model) and return name -> cell."""
    config = config or ComparisonConfig()
    engine_names = engine_names or list(ENGINES)
    cells: dict[str, str] = {}
    for name in engine_names:
        if name not in ENGINES:
            raise KeyError(f"unknown engine {name!r}; choose from {sorted(ENGINES)}")
        engine = ENGINES[name](dataset, model_name, **config.engine_kwargs())
        cells[name] = measure_epoch_cell(engine, config.epochs)
    return cells


def render_rows(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table (same renderer the benchmarks print)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))

    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
