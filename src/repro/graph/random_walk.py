"""Random walks and importance-based neighbor selection (PinSage).

PinSage defines ``N(v)`` as the top-k most-visited vertices over several
fixed-length random walks started at ``v`` (Section 2.2).  The walk kernel
here is vectorized over all start vertices at once: one numpy step per
hop, which is the analogue of the paper pushing walks into the parallel
graph engine instead of simulating them with GAS stages.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["random_walks", "visit_counts", "top_k_visited", "select_top_k_per_owner"]


def random_walks(
    graph: Graph,
    starts: np.ndarray,
    num_walks: int,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform random walks over out-edges.

    Returns an ``(len(starts) * num_walks, length + 1)`` int array of
    vertex ids; a walk that reaches a sink vertex stays there (marked by
    repeating the sink), mirroring the usual padding convention.
    """
    if num_walks <= 0 or length < 0:
        raise ValueError("num_walks must be positive and length non-negative")
    starts = np.asarray(starts, dtype=np.int64)
    current = np.repeat(starts, num_walks)
    walks = np.empty((current.size, length + 1), dtype=np.int64)
    walks[:, 0] = current
    indptr, indices = graph.csr
    for step in range(1, length + 1):
        degrees = indptr[current + 1] - indptr[current]
        movable = degrees > 0
        # Sample a uniform slot within each movable vertex's edge range.
        offsets = (rng.random(current.size) * degrees.clip(min=1)).astype(np.int64)
        nxt = current.copy()
        nxt[movable] = indices[indptr[current[movable]] + offsets[movable]]
        current = nxt
        walks[:, step] = current
    return walks


def visit_counts(
    graph: Graph,
    start: int,
    num_walks: int,
    length: int,
    rng: np.random.Generator,
) -> dict[int, int]:
    """Visit counts of vertices (excluding ``start``) over random walks."""
    walks = random_walks(graph, np.array([start]), num_walks, length, rng)
    visited = walks[:, 1:].ravel()
    visited = visited[visited != start]
    ids, counts = np.unique(visited, return_counts=True)
    return dict(zip(ids.tolist(), counts.tolist()))


def top_k_visited(
    graph: Graph,
    starts: np.ndarray,
    num_walks: int,
    length: int,
    k: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Importance-based neighborhoods for all ``starts`` at once.

    For each start vertex, runs ``num_walks`` walks of ``length`` hops and
    keeps the ``k`` most-visited distinct vertices (ties broken by vertex
    id for determinism; the start itself is excluded).

    Returns
    -------
    (roots, neighbors, weights):
        Flat parallel arrays — ``neighbors[i]`` is a selected neighbor of
        ``roots[i]`` with normalized visit frequency ``weights[i]``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    starts = np.asarray(starts, dtype=np.int64)
    walks = random_walks(graph, starts, num_walks, length, rng)
    # Row i of `walks` belongs to start starts[i // num_walks].
    owner = np.repeat(np.arange(starts.size, dtype=np.int64), num_walks)
    owner_per_visit = np.repeat(owner, length)
    visited = walks[:, 1:].ravel()
    valid = visited != starts[owner_per_visit]
    pairs_owner = owner_per_visit[valid]
    pairs_visit = visited[valid]

    # Group (owner, visited) pairs and count within each owner.
    key = pairs_owner * (graph.num_vertices + 1) + pairs_visit
    uniq, counts = np.unique(key, return_counts=True)
    uniq_owner = uniq // (graph.num_vertices + 1)
    uniq_visit = uniq % (graph.num_vertices + 1)
    owners, nbrs, weights = select_top_k_per_owner(uniq_owner, uniq_visit, counts, k)
    return starts[owners], nbrs, weights


def select_top_k_per_owner(
    owners: np.ndarray,
    candidates: np.ndarray,
    counts: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-owner top-k of ``candidates`` by ``counts`` — fully vectorized.

    Ties break toward smaller candidate id for determinism.  Returns the
    kept ``(owners, candidates, weights)`` with weights normalized per
    owner over the kept counts.
    """
    if owners.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)
    # Sort by (owner asc, count desc, candidate asc) and rank within owner.
    order = np.lexsort((candidates, -counts, owners))
    owners_s = owners[order]
    change = np.flatnonzero(np.diff(owners_s, prepend=owners_s[0] - 1))
    group_start = np.zeros(owners_s.size, dtype=np.int64)
    group_start[change] = change
    group_start = np.maximum.accumulate(group_start)
    rank = np.arange(owners_s.size) - group_start
    keep = order[rank < k]
    keep.sort()  # preserve original (owner-major) ordering
    kept_owner = owners[keep]
    kept_counts = counts[keep].astype(np.float64)
    sums = np.bincount(kept_owner, weights=kept_counts)
    return kept_owner, candidates[keep], kept_counts / sums[kept_owner]
