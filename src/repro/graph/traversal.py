"""Graph traversal primitives: BFS, k-hop neighborhoods, shortest paths.

These back several pieces of the reproduction: full k-hop neighborhood
expansion for the mini-batch baseline (Euler/DistDGL), BFS-ordered
migration-candidate growth in the ADB balancer (Section 5), and
shortest-path rings for JK-Net's neighbor definition.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "bfs_levels",
    "bfs_order",
    "k_hop_neighbors",
    "shortest_path_lengths",
    "connected_components",
    "largest_connected_component",
]


def bfs_levels(graph: Graph, source: int, direction: str = "out") -> np.ndarray:
    """BFS levels from ``source``; unreachable vertices get ``-1``.

    ``direction`` selects out-edges, in-edges, or both (``"both"`` treats
    the graph as undirected).
    """
    if direction not in ("out", "in", "both"):
        raise ValueError(f"invalid direction {direction!r}")
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        nexts = _expand(graph, frontier, direction)
        nexts = nexts[levels[nexts] < 0]
        nexts = np.unique(nexts)
        levels[nexts] = depth
        frontier = nexts
    return levels


def _expand(graph: Graph, frontier: np.ndarray, direction: str) -> np.ndarray:
    parts = []
    if direction in ("out", "both"):
        indptr, indices = graph.csr
        counts = indptr[frontier + 1] - indptr[frontier]
        if counts.sum():
            starts = indptr[frontier]
            parts.append(_gather_ranges(indices, starts, counts))
    if direction in ("in", "both"):
        indptr, indices = graph.csc
        counts = indptr[frontier + 1] - indptr[frontier]
        if counts.sum():
            starts = indptr[frontier]
            parts.append(_gather_ranges(indices, starts, counts))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def _gather_ranges(indices: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``indices[starts[i]:starts[i]+counts[i]]`` for all i."""
    total = int(counts.sum())
    out = np.empty(total, dtype=np.int64)
    # Build a flat index: for each range, positions start..start+count.
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    flat = np.arange(total) - np.repeat(offsets, counts) + np.repeat(starts, counts)
    out[:] = indices[flat]
    return out


def bfs_order(graph: Graph, source: int, direction: str = "both") -> np.ndarray:
    """Vertices reachable from ``source`` in BFS visitation order."""
    levels = bfs_levels(graph, source, direction)
    reachable = np.flatnonzero(levels >= 0)
    return reachable[np.argsort(levels[reachable], kind="stable")]


def k_hop_neighbors(graph: Graph, source: int, k: int, direction: str = "both") -> np.ndarray:
    """All vertices within ``k`` hops of ``source`` (excluding it).

    This is the neighborhood the mini-batch baselines must expand for a
    k-layer GNN — the operation the paper blames for their blow-up on
    dense / power-law graphs (Section 7.1).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    levels = bfs_levels(graph, source, direction)
    return np.flatnonzero((levels > 0) & (levels <= k))


def shortest_path_lengths(graph: Graph, source: int, direction: str = "both") -> np.ndarray:
    """Unweighted shortest-path distance from ``source`` (−1 if unreachable).

    JK-Net's i-th "neighbor" of v is the ring of vertices at distance i.
    """
    return bfs_levels(graph, source, direction)


def largest_connected_component(graph: Graph) -> np.ndarray:
    """Vertex ids of the largest (undirected) connected component.

    Real datasets are usually restricted to their giant component before
    training; combine with :meth:`Graph.subgraph`.
    """
    comp = connected_components(graph)
    sizes = np.bincount(comp)
    return np.flatnonzero(comp == sizes.argmax())


def connected_components(graph: Graph) -> np.ndarray:
    """Component id per vertex, treating edges as undirected."""
    comp = np.full(graph.num_vertices, -1, dtype=np.int64)
    next_id = 0
    for v in range(graph.num_vertices):
        if comp[v] >= 0:
            continue
        levels = bfs_levels(graph, v, "both")
        comp[levels >= 0] = next_id
        next_id += 1
    return comp
