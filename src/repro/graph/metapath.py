"""Metapath definition and instance matching (MAGNN's neighbor definition).

A metapath is an ordered sequence of vertex types, e.g. ``Movie-Actor-
Movie``.  A metapath *instance* rooted at vertex ``v`` is a path in the
graph whose vertex types match the sequence, starting at ``v`` (so ``v``'s
type must equal the first type).  MAGNN's "neighbors" of ``v`` are all
instances of the model's metapaths rooted at ``v`` (Section 2.2,
Figure 2c).

Matching is a type-constrained DFS over out-edges, the graph-engine
operation the paper says consumes >95% of MAGNN's time when done with
tensor ops (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = [
    "Metapath",
    "MetapathInstance",
    "find_metapath_instances",
    "count_metapath_instances",
    "match_length3_metapath",
    "count_length3_instances",
    "infer_metapaths",
]


@dataclass(frozen=True)
class Metapath:
    """An ordered sequence of vertex type ids with an optional name."""

    types: tuple[int, ...]
    name: str = ""

    def __post_init__(self):
        if len(self.types) < 2:
            raise ValueError("a metapath needs at least two vertex types")
        object.__setattr__(self, "types", tuple(int(t) for t in self.types))

    @property
    def length(self) -> int:
        """Number of vertices in a matching instance."""
        return len(self.types)


@dataclass
class MetapathInstance:
    """One matched path: its root, its vertices, and its metapath index."""

    root: int
    vertices: tuple[int, ...]
    metapath_index: int


def find_metapath_instances(
    graph: Graph,
    metapaths: list[Metapath],
    roots: np.ndarray | None = None,
    max_instances_per_root: int | None = None,
) -> list[MetapathInstance]:
    """All instances of ``metapaths`` rooted at ``roots``.

    Parameters
    ----------
    graph:
        A typed graph (``graph.vertex_types`` drives the matching).
    metapaths:
        Patterns to match; each instance records the index of its pattern.
    roots:
        Root vertices to match from (default: every vertex).
    max_instances_per_root:
        Optional cap per (root, metapath) pair to bound HDG size on dense
        graphs, applied deterministically in DFS order.
    """
    if roots is None:
        roots = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        roots = np.asarray(roots, dtype=np.int64)
    types = graph.vertex_types
    instances: list[MetapathInstance] = []
    for mp_idx, mp in enumerate(metapaths):
        starts = roots[types[roots] == mp.types[0]]
        for root in starts:
            found = _match_from(graph, types, int(root), mp.types, max_instances_per_root)
            instances.extend(
                MetapathInstance(int(root), tuple(path), mp_idx) for path in found
            )
    return instances


def _match_from(
    graph: Graph,
    types: np.ndarray,
    root: int,
    pattern: tuple[int, ...],
    cap: int | None,
) -> list[list[int]]:
    """DFS enumeration of paths from ``root`` matching ``pattern``."""
    results: list[list[int]] = []
    # Stack holds (vertex, depth); path reconstructed incrementally.
    path = [root]
    stack: list[tuple[int, int]] = [(root, 0)]
    # Iterative DFS with explicit child iterators to keep paths cheap.
    iters = {0: iter(())}
    frames: list[tuple[int, "object"]] = [(root, iter(graph.out_neighbors(root)))]
    del stack, iters
    while frames:
        if cap is not None and len(results) >= cap:
            break
        vertex, children = frames[-1]
        depth = len(frames) - 1
        advanced = False
        for child in children:
            child = int(child)
            if types[child] != pattern[depth + 1]:
                continue
            if child in path:  # simple paths only: no repeated vertices
                continue
            path.append(child)
            if depth + 1 == len(pattern) - 1:
                results.append(path.copy())
                path.pop()
                continue
            frames.append((child, iter(graph.out_neighbors(child))))
            advanced = True
            break
        if not advanced:
            frames.pop()
            path.pop()
    return results


def match_length3_metapath(
    graph: Graph,
    metapath: Metapath,
    max_instances_per_root: int | None = None,
) -> np.ndarray:
    """All instances of a 3-vertex metapath as an ``(count, 3)`` array.

    Fully vectorized edge-join: instances ``a -> b -> c`` arise from edge
    pairs grouped on the middle vertex ``b``, with the simple-path
    constraint ``a != c``.  This is the bulk matcher the FlexGraph graph
    engine would run in parallel; the DFS in
    :func:`find_metapath_instances` is the reference semantics.
    """
    if metapath.length != 3:
        raise ValueError("match_length3_metapath handles 3-vertex metapaths only")
    t0, t1, t2 = metapath.types
    types = graph.vertex_types
    src, dst = graph.edges()
    first = (types[src] == t0) & (types[dst] == t1)
    a, b1 = src[first], dst[first]
    second = (types[src] == t1) & (types[dst] == t2)
    b2, c = src[second], dst[second]
    if a.size == 0 or b2.size == 0:
        return np.empty((0, 3), dtype=np.int64)

    # Group both edge lists by the middle vertex and emit cross products.
    o1 = np.argsort(b1, kind="stable")
    a, b1 = a[o1], b1[o1]
    o2 = np.argsort(b2, kind="stable")
    b2, c = b2[o2], c[o2]
    n = graph.num_vertices
    cnt1 = np.bincount(b1, minlength=n)
    cnt2 = np.bincount(b2, minlength=n)
    pair_counts = cnt1 * cnt2
    total = int(pair_counts.sum())
    if total == 0:
        return np.empty((0, 3), dtype=np.int64)

    start2 = np.concatenate([[0], np.cumsum(cnt2)[:-1]])
    # For each middle vertex b: repeat each of its first-edges cnt2[b]
    # times (block-wise), and tile its second-edges cnt1[b] times.
    rep_first = np.repeat(np.arange(b1.size, dtype=np.int64), cnt2[b1])
    out_a = a[rep_first]
    out_b = b1[rep_first]
    # Tile second-edge indices: position within each output block.
    per_b_out = pair_counts
    block_owner = np.repeat(np.arange(n, dtype=np.int64), per_b_out)
    out_starts = np.concatenate([[0], np.cumsum(per_b_out)[:-1]])
    pos_in_block = np.arange(total, dtype=np.int64) - out_starts[block_owner]
    safe_cnt2 = np.maximum(cnt2, 1)
    second_idx = start2[block_owner] + pos_in_block % safe_cnt2[block_owner]
    out_c = c[second_idx]
    # rep_first orders output by (b, first-edge, second-edge); pos_in_block
    # ordering is by (b, output position) — both enumerate per-b cross
    # products, and pos_in_block % cnt2 cycles second edges while
    # rep_first advances first edges every cnt2 positions, so they align.
    keep = out_a != out_c
    result = np.stack([out_a[keep], out_b[keep], out_c[keep]], axis=1)
    if max_instances_per_root is not None:
        result = _cap_per_root(result, max_instances_per_root)
    return result


def count_length3_instances(graph: Graph, metapath: Metapath) -> int:
    """Instance count of a 3-vertex metapath without materializing them.

    Used by baseline engines to project the size of the intermediate
    tensors a naive implementation would allocate (the OOM check).
    """
    if metapath.length != 3:
        raise ValueError("count_length3_instances handles 3-vertex metapaths only")
    t0, t1, t2 = metapath.types
    types = graph.vertex_types
    src, dst = graph.edges()
    first = (types[src] == t0) & (types[dst] == t1)
    second = (types[src] == t1) & (types[dst] == t2)
    n = graph.num_vertices
    cnt1 = np.bincount(dst[first], minlength=n)
    cnt2 = np.bincount(src[second], minlength=n)
    return int((cnt1 * cnt2).sum())


def _cap_per_root(instances: np.ndarray, cap: int) -> np.ndarray:
    """Keep at most ``cap`` instances per root (column 0), deterministically."""
    order = np.argsort(instances[:, 0], kind="stable")
    inst = instances[order]
    roots = inst[:, 0]
    # Rank within each root group.
    change = np.flatnonzero(np.diff(roots, prepend=roots[0] - 1))
    group_start = np.zeros(roots.size, dtype=np.int64)
    group_start[change] = change
    group_start = np.maximum.accumulate(group_start)
    rank = np.arange(roots.size) - group_start
    return inst[rank < cap]


def infer_metapaths(
    graph: Graph,
    length: int = 3,
    root_type: int | None = None,
    min_instances: int = 1,
) -> list[Metapath]:
    """Enumerate the metapaths a typed graph actually supports.

    Walks the *type-level* schema graph (which type pairs have edges) to
    list all type sequences of the given length, keeping those with at
    least ``min_instances`` matched instances.  A practical MAGNN helper:
    users rarely know a new dataset's viable metapaths up front.
    """
    if length < 2:
        raise ValueError("metapaths need at least 2 vertex types")
    types = graph.vertex_types
    src, dst = graph.edges()
    # Type-level adjacency: which (t_a -> t_b) edges exist at all.
    pairs = np.unique(types[src] * graph.num_types + types[dst])
    type_adj: dict[int, list[int]] = {}
    for key in pairs:
        type_adj.setdefault(int(key) // graph.num_types, []).append(
            int(key) % graph.num_types
        )
    roots = [root_type] if root_type is not None else list(range(graph.num_types))
    sequences: list[tuple[int, ...]] = []

    def extend(seq: tuple[int, ...]) -> None:
        if len(seq) == length:
            sequences.append(seq)
            return
        for nxt in type_adj.get(seq[-1], ()):  # type: ignore[arg-type]
            extend(seq + (nxt,))

    for t in roots:
        extend((t,))

    result = []
    for i, seq in enumerate(sequences):
        mp = Metapath(seq, name="-".join(str(t) for t in seq))
        if length == 3:
            count = match_length3_metapath(graph, mp).shape[0]
        else:
            count = len(find_metapath_instances(graph, [mp]))
        if count >= min_instances:
            result.append(mp)
    return result


def count_metapath_instances(
    graph: Graph, metapaths: list[Metapath], roots: np.ndarray | None = None
) -> dict[int, np.ndarray]:
    """Per-root instance counts for each metapath (cost-model features).

    Returns a dict mapping metapath index to an array of counts indexed by
    vertex id — these are the ``n_1 .. n_k`` variables of the ADB cost
    function (Section 5).
    """
    counts = {i: np.zeros(graph.num_vertices, dtype=np.int64) for i in range(len(metapaths))}
    for inst in find_metapath_instances(graph, metapaths, roots):
        counts[inst.metapath_index][inst.root] += 1
    return counts
