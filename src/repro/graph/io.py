"""Plain-text graph I/O: edge lists and typed vertex files.

The adoption path for real data: load a whitespace/comma-separated edge
list (the format SNAP, LDBC dumps and most academic datasets ship),
optionally with a vertex-type file for heterogeneous graphs.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["load_edge_list", "save_edge_list", "load_vertex_types"]


def load_edge_list(path: str, num_vertices: int | None = None,
                   comments: str = "#", make_undirected: bool = False,
                   vertex_types: np.ndarray | None = None) -> Graph:
    """Load a graph from a 2-column edge-list file.

    Separators (whitespace or commas) are auto-detected; lines starting
    with ``comments`` are skipped.  ``num_vertices`` defaults to
    ``max id + 1``.
    """
    src_list: list[int] = []
    dst_list: list[int] = []
    with open(path) as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected two vertex ids, got {raw!r}")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
    if not src_list:
        raise ValueError(f"{path}: no edges found")
    src = np.array(src_list, dtype=np.int64)
    dst = np.array(dst_list, dtype=np.int64)
    n = num_vertices if num_vertices is not None else int(max(src.max(), dst.max())) + 1
    edges = np.stack([src, dst], axis=1)
    return Graph.from_edges(n, edges, vertex_types=vertex_types,
                            make_undirected=make_undirected)


def save_edge_list(graph: Graph, path: str, header: bool = True) -> None:
    """Write the graph's edges as ``src dst`` lines."""
    src, dst = graph.edges()
    with open(path, "w") as handle:
        if header:
            handle.write(f"# {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for a, b in zip(src, dst):
            handle.write(f"{a} {b}\n")


def load_vertex_types(path: str, num_vertices: int,
                      comments: str = "#") -> np.ndarray:
    """Load a ``vertex_id type_id`` file into a dense type array.

    Vertices missing from the file default to type 0.
    """
    types = np.zeros(num_vertices, dtype=np.int64)
    with open(path) as handle:
        for line_no, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected 'vertex type', got {raw!r}")
            vertex, type_id = int(parts[0]), int(parts[1])
            if not 0 <= vertex < num_vertices:
                raise ValueError(f"{path}:{line_no}: vertex {vertex} out of range")
            types[vertex] = type_id
    return types
