"""``repro.graph`` — the graph-engine substrate (libgrape-lite substitute).

CSR/CSC graph storage with typed vertices, traversal (BFS, k-hop,
shortest paths), random walks, metapath matching, partitioners, and
synthetic graph generators standing in for the paper's datasets.
"""

from .generators import (
    community_graph,
    erdos_renyi_graph,
    heterogeneous_graph,
    power_law_graph,
)
from .graph import Graph
from .io import load_edge_list, load_vertex_types, save_edge_list
from .metrics import (
    clustering_coefficient,
    degree_histogram,
    degree_skew,
    graph_summary,
    label_homophily,
)
from .metapath import (
    Metapath,
    MetapathInstance,
    count_metapath_instances,
    find_metapath_instances,
    infer_metapaths,
    match_length3_metapath,
)
from .pagerank import pagerank, personalized_pagerank, top_k_ppr_neighbors
from .partition import (
    balance_factor,
    edge_cut,
    hash_partition,
    pulp_partition,
    random_partition,
    spectral_partition,
)
from .random_walk import (
    random_walks,
    select_top_k_per_owner,
    top_k_visited,
    visit_counts,
)
from .traversal import (
    bfs_levels,
    bfs_order,
    connected_components,
    k_hop_neighbors,
    largest_connected_component,
    shortest_path_lengths,
)

__all__ = [
    "Graph",
    "bfs_levels", "bfs_order", "k_hop_neighbors", "shortest_path_lengths",
    "connected_components", "largest_connected_component",
    "random_walks", "visit_counts", "top_k_visited", "select_top_k_per_owner",
    "Metapath", "MetapathInstance", "find_metapath_instances",
    "count_metapath_instances", "infer_metapaths", "match_length3_metapath",
    "load_edge_list", "save_edge_list", "load_vertex_types",
    "degree_histogram", "degree_skew", "clustering_coefficient",
    "label_homophily", "graph_summary",
    "pagerank", "personalized_pagerank", "top_k_ppr_neighbors",
    "hash_partition", "pulp_partition", "random_partition",
    "spectral_partition",
    "edge_cut", "balance_factor",
    "community_graph", "power_law_graph", "heterogeneous_graph",
    "erdos_renyi_graph",
]
