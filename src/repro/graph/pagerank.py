"""PageRank and personalized PageRank over the graph engine.

PinSage's importance-based neighborhoods are, in the limit of many
walks, personalized-PageRank neighborhoods; this module provides the
closed-form counterpart (power iteration over the transition matrix) as
an alternative NeighborSelection signal and a general graph-engine
utility.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["pagerank", "personalized_pagerank", "top_k_ppr_neighbors"]


def _transition_matrix(graph: Graph) -> sp.csr_matrix:
    """Column-stochastic transition matrix over out-edges (dangling
    vertices get a self-loop so mass is conserved)."""
    src, dst = graph.edges()
    out_deg = graph.out_degree().astype(np.float64)
    dangling = np.flatnonzero(out_deg == 0)
    if dangling.size:
        src = np.concatenate([src, dangling])
        dst = np.concatenate([dst, dangling])
        out_deg = out_deg.copy()
        out_deg[dangling] = 1.0
    data = 1.0 / out_deg[src]
    n = graph.num_vertices
    return sp.csr_matrix((data, (dst, src)), shape=(n, n))


def pagerank(graph: Graph, damping: float = 0.85, tol: float = 1e-10,
             max_iter: int = 200) -> np.ndarray:
    """Global PageRank via power iteration; returns a probability vector."""
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.num_vertices
    matrix = _transition_matrix(graph)
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iter):
        nxt = damping * (matrix @ rank) + teleport
        if np.abs(nxt - rank).sum() < tol:
            return nxt
        rank = nxt
    return rank


def personalized_pagerank(graph: Graph, sources: np.ndarray,
                          damping: float = 0.85, tol: float = 1e-8,
                          max_iter: int = 100) -> np.ndarray:
    """PPR vectors for a batch of sources — ``(len(sources), n)``.

    Power iteration on a stacked restart matrix; intended for modest
    batches (the dense result is ``batch x n``).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    sources = np.asarray(sources, dtype=np.int64)
    n = graph.num_vertices
    matrix = _transition_matrix(graph)
    restart = np.zeros((sources.size, n))
    restart[np.arange(sources.size), sources] = 1.0
    rank = restart.copy()
    for _ in range(max_iter):
        nxt = damping * (matrix @ rank.T).T + (1.0 - damping) * restart
        if np.abs(nxt - rank).sum() < tol * sources.size:
            return nxt
        rank = nxt
    return rank


def top_k_ppr_neighbors(graph: Graph, roots: np.ndarray, k: int,
                        damping: float = 0.85,
                        batch_size: int = 256) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-k personalized-PageRank neighbors per root (excluding the root).

    The deterministic counterpart of PinSage's random-walk top-k: returns
    ``(owners, neighbors, weights)`` with weights normalized per owner.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    roots = np.asarray(roots, dtype=np.int64)
    owners_out, nbrs_out, weights_out = [], [], []
    for start in range(0, roots.size, batch_size):
        batch = roots[start : start + batch_size]
        ppr = personalized_pagerank(graph, batch, damping)
        ppr[np.arange(batch.size), batch] = 0.0
        take = min(k, graph.num_vertices - 1)
        idx = np.argpartition(-ppr, take - 1, axis=1)[:, :take]
        scores = np.take_along_axis(ppr, idx, axis=1)
        valid = scores > 0
        for i, root in enumerate(batch):
            cols = idx[i][valid[i]]
            vals = scores[i][valid[i]]
            if cols.size == 0:
                continue
            owners_out.append(np.full(cols.size, root, dtype=np.int64))
            nbrs_out.append(cols.astype(np.int64))
            weights_out.append(vals / vals.sum())
    if not owners_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)
    return (
        np.concatenate(owners_out),
        np.concatenate(nbrs_out),
        np.concatenate(weights_out),
    )
