"""Graph partitioners and partition-quality metrics.

FlexGraph partitions the vertex set into ``k`` disjoint sets before
distributed training (Section 5).  ADB (the application-driven balancer)
starts from a conventional partitioner — the paper uses Hash or PuLP — and
then rebalances by the learned cost model.  This module provides:

* :func:`hash_partition` — the classic modulo assignment;
* :func:`pulp_partition` — a PuLP-style balanced label-propagation
  partitioner (PuLP = "partitioning using label propagation", Slota et
  al., IPDPS'16): vertices iteratively adopt the most common label among
  their neighbors subject to a vertex-count balance constraint.  Like the
  real PuLP it optimizes edge cut over *static* metrics, so its output can
  be skewed w.r.t. GNN training cost — exactly the behaviour Figure 15a
  relies on;
* metrics: edge cut and balance factors.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "hash_partition",
    "pulp_partition",
    "random_partition",
    "spectral_partition",
    "edge_cut",
    "balance_factor",
]


def hash_partition(num_vertices: int, k: int) -> np.ndarray:
    """Assign vertex ``v`` to partition ``v mod k``."""
    if k <= 0:
        raise ValueError("k must be positive")
    return np.arange(num_vertices, dtype=np.int64) % k


def random_partition(num_vertices: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random assignment."""
    if k <= 0:
        raise ValueError("k must be positive")
    return rng.integers(0, k, size=num_vertices, dtype=np.int64)


def pulp_partition(
    graph: Graph,
    k: int,
    num_iters: int = 10,
    imbalance: float = 0.15,
    seed: int = 0,
) -> np.ndarray:
    """Balanced label propagation in the style of PuLP.

    Starts from a contiguous block assignment and sweeps vertices in
    random order; each vertex moves to the label most common among its
    (undirected) neighbors, unless that would push the target partition
    above ``(1 + imbalance) * n / k`` vertices.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    # Contiguous blocks: the typical PuLP seeding.
    labels = np.minimum(np.arange(n, dtype=np.int64) * k // max(n, 1), k - 1)
    sizes = np.bincount(labels, minlength=k)
    cap = int((1.0 + imbalance) * n / k) + 1
    for _ in range(num_iters):
        moved = 0
        for v in rng.permutation(n):
            nbrs = np.concatenate([graph.out_neighbors(v), graph.in_neighbors(v)])
            if nbrs.size == 0:
                continue
            counts = np.bincount(labels[nbrs], minlength=k)
            best = int(np.argmax(counts))
            cur = labels[v]
            if best != cur and counts[best] > counts[cur] and sizes[best] < cap:
                labels[v] = best
                sizes[cur] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break
    return labels


def spectral_partition(graph: Graph, k: int, seed: int = 0) -> np.ndarray:
    """Spectral partitioning: k-means over Laplacian eigenvectors.

    Builds the symmetric normalized Laplacian of the undirected view,
    takes its ``k`` smallest-eigenvalue eigenvectors (scipy ``eigsh``)
    and clusters the spectral embedding.  Classic quality partitioner —
    slower than PuLP/Hash but cuts fewer edges on community-structured
    graphs; another static baseline for the ADB comparison.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if k == 1:
        return np.zeros(graph.num_vertices, dtype=np.int64)
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    n = graph.num_vertices
    src, dst = graph.edges()
    both_src = np.concatenate([src, dst])
    both_dst = np.concatenate([dst, src])
    adj = sp.csr_matrix(
        (np.ones(both_src.size), (both_src, both_dst)), shape=(n, n)
    )
    adj.data[:] = 1.0  # binarize multi-edges
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)
    d_half = sp.diags(inv_sqrt)
    laplacian = sp.identity(n) - d_half @ adj @ d_half
    num_vecs = min(k, n - 1)
    # Smallest eigenvectors via shift-invert-free eigsh on the PSD matrix.
    _vals, vecs = spla.eigsh(laplacian, k=num_vecs, which="SM", tol=1e-4)
    # Row-normalize the spectral embedding before clustering.
    norms = np.linalg.norm(vecs, axis=1, keepdims=True)
    embedding = vecs / np.maximum(norms, 1e-12)
    from ..tasks.clustering import kmeans

    labels, _ = kmeans(embedding, k, rng=np.random.default_rng(seed))
    return labels.astype(np.int64)


def edge_cut(graph: Graph, labels: np.ndarray) -> int:
    """Number of edges whose endpoints lie in different partitions."""
    labels = np.asarray(labels)
    src, dst = graph.edges()
    return int(np.count_nonzero(labels[src] != labels[dst]))


def balance_factor(costs: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Max partition cost over mean partition cost (1.0 = perfectly even).

    ``costs`` is a per-vertex workload estimate; with all-ones it reduces
    to vertex-count balance.
    """
    costs = np.asarray(costs, dtype=np.float64)
    labels = np.asarray(labels)
    per_part = np.zeros(k, dtype=np.float64)
    np.add.at(per_part, labels, costs)
    mean = per_part.mean()
    if mean == 0:
        return 1.0
    return float(per_part.max() / mean)
