"""Immutable directed graph in CSR/CSC form — the graph-engine substrate.

FlexGraph integrates libgrape-lite (a C++ parallel graph-processing
library) for storing graphs and running graph-related operations (random
walks, metapath matching, BFS).  This module is the Python/numpy
equivalent: a compact adjacency structure with both out-edge (CSR) and
in-edge (CSC) indexes, typed vertices for heterogeneous graphs, and the
memory accounting needed by the HDG-footprint experiment (Table 5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Graph"]


class Graph:
    """A directed graph over vertices ``0..n-1`` stored as CSR + CSC.

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    src, dst:
        Parallel int arrays of edge endpoints (edge ``i`` is
        ``src[i] -> dst[i]``).
    vertex_types:
        Optional ``(num_vertices,)`` int array of type ids for
        heterogeneous graphs (MAGNN); defaults to a single type ``0``.
    type_names:
        Optional human-readable names aligned with type ids.
    """

    def __init__(
        self,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        vertex_types: np.ndarray | None = None,
        type_names: list[str] | None = None,
    ):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if num_vertices <= 0:
            raise ValueError("graph must have at least one vertex")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("src vertex id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("dst vertex id out of range")

        self.num_vertices = int(num_vertices)
        self.num_edges = int(src.size)

        # CSR (out-edges): sort edges by src.
        order = np.argsort(src, kind="stable")
        self._csr_indices = dst[order]
        self._csr_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_vertices), out=self._csr_indptr[1:])
        self._csr_eid = order  # original edge id per CSR slot

        # CSC (in-edges): sort edges by dst.
        order_in = np.argsort(dst, kind="stable")
        self._csc_indices = src[order_in]
        self._csc_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(dst, minlength=num_vertices), out=self._csc_indptr[1:])
        self._csc_eid = order_in

        if vertex_types is None:
            self.vertex_types = np.zeros(num_vertices, dtype=np.int64)
        else:
            self.vertex_types = np.asarray(vertex_types, dtype=np.int64)
            if self.vertex_types.shape != (num_vertices,):
                raise ValueError("vertex_types must have shape (num_vertices,)")
            if self.vertex_types.size and self.vertex_types.min() < 0:
                raise ValueError("vertex types must be non-negative")
        self.num_types = int(self.vertex_types.max()) + 1 if num_vertices else 1
        self.type_names = type_names or [f"type{i}" for i in range(self.num_types)]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges,
        vertex_types: np.ndarray | None = None,
        type_names: list[str] | None = None,
        make_undirected: bool = False,
    ) -> "Graph":
        """Build a graph from an ``(m, 2)`` edge array or list of pairs.

        ``make_undirected`` adds the reverse of every edge (GCN and PinSage
        treat their input graphs as undirected).
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        src, dst = edges[:, 0], edges[:, 1]
        if make_undirected:
            src = np.concatenate([src, dst])
            dst = np.concatenate([dst, edges[:, 0]])
        return cls(num_vertices, src, dst, vertex_types, type_names)

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighborhood of ``v`` as an int array (a view, do not mutate)."""
        return self._csr_indices[self._csr_indptr[v] : self._csr_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighborhood of ``v`` as an int array (a view, do not mutate)."""
        return self._csc_indices[self._csc_indptr[v] : self._csc_indptr[v + 1]]

    def out_degree(self, v: int | None = None):
        """Out-degree of ``v``, or the full out-degree array when ``v`` is None."""
        if v is None:
            return np.diff(self._csr_indptr)
        return int(self._csr_indptr[v + 1] - self._csr_indptr[v])

    def in_degree(self, v: int | None = None):
        """In-degree of ``v``, or the full in-degree array when ``v`` is None."""
        if v is None:
            return np.diff(self._csc_indptr)
        return int(self._csc_indptr[v + 1] - self._csc_indptr[v])

    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) over out-edges."""
        return self._csr_indptr, self._csr_indices

    @property
    def csc(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) over in-edges."""
        return self._csc_indptr, self._csc_indices

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (src, dst) arrays in CSR order."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degree())
        return src, self._csr_indices.copy()

    def coo(self) -> tuple[np.ndarray, np.ndarray]:
        """COO (dst_ids, src_ids) in CSC order — the layout Figure 7 uses."""
        dst = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.in_degree())
        return dst, self._csc_indices.copy()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        return bool(np.isin(v, self.out_neighbors(u)).any())

    def edge_multiplicity(self, pairs) -> np.ndarray:
        """Parallel-edge count for each directed ``(u, v)`` pair.

        Vectorized over an ``(m, 2)`` array: a searchsorted range query
        against the sorted edge-key multiset, so multigraph-aware callers
        (incremental metapath maintenance) get exact multiplicities in
        ``O(m log E)``.
        """
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        src, dst = self.edges()
        keys = np.sort(src * np.int64(self.num_vertices) + dst)
        query = pairs[:, 0] * np.int64(self.num_vertices) + pairs[:, 1]
        lo = np.searchsorted(keys, query, side="left")
        hi = np.searchsorted(keys, query, side="right")
        return (hi - lo).astype(np.int64)

    def vertices_of_type(self, type_id: int) -> np.ndarray:
        """All vertex ids of the given type."""
        return np.flatnonzero(self.vertex_types == type_id)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices relabeled ``0..k-1`` in the
        order given) and the original-id array so callers can map back.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size != np.unique(vertices).size:
            raise ValueError("subgraph vertices must be unique")
        local = np.full(self.num_vertices, -1, dtype=np.int64)
        local[vertices] = np.arange(vertices.size)
        src, dst = self.edges()
        keep = (local[src] >= 0) & (local[dst] >= 0)
        sub = Graph(
            max(int(vertices.size), 1),
            local[src[keep]],
            local[dst[keep]],
            self.vertex_types[vertices] if vertices.size else None,
            self.type_names,
        )
        return sub, vertices

    def with_vertex_types(self, vertex_types: np.ndarray,
                          type_names: list[str] | None = None) -> "Graph":
        """A copy of this graph with new vertex types (shares adjacency).

        The evaluation runs MAGNN on homogeneous graphs by assigning 3
        vertex types (Section 7, "the input graph consists of 3 types of
        vertices"); this is the hook for that retyping.
        """
        import copy as _copy

        vertex_types = np.asarray(vertex_types, dtype=np.int64)
        if vertex_types.shape != (self.num_vertices,):
            raise ValueError("vertex_types must have shape (num_vertices,)")
        if vertex_types.size and vertex_types.min() < 0:
            raise ValueError("vertex types must be non-negative")
        clone = _copy.copy(self)
        clone.vertex_types = vertex_types
        clone.num_types = int(vertex_types.max()) + 1 if vertex_types.size else 1
        clone.type_names = type_names or [f"type{i}" for i in range(clone.num_types)]
        return clone

    def reverse(self) -> "Graph":
        """Graph with all edges flipped."""
        src, dst = self.edges()
        return Graph(self.num_vertices, dst, src, self.vertex_types, self.type_names)

    def with_edges_added(self, edges) -> "Graph":
        """A new graph with extra edges (dynamic-graph evolution step).

        Adjacency indexes are rebuilt (CSR/CSC are immutable); vertex
        types carry over.  Edge endpoints must already be valid ids.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src, dst = self.edges()
        return Graph(
            self.num_vertices,
            np.concatenate([src, edges[:, 0]]),
            np.concatenate([dst, edges[:, 1]]),
            self.vertex_types,
            self.type_names,
        )

    def with_edges_removed(self, edges) -> "Graph":
        """A new graph with the given directed edges removed.

        Each listed ``(u, v)`` removes *one* occurrence of that edge
        (multi-edges lose one copy per mention); absent edges are
        ignored.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src, dst = self.edges()
        key = src * self.num_vertices + dst
        remove_key = edges[:, 0] * self.num_vertices + edges[:, 1]
        remove_counts: dict[int, int] = {}
        for k in remove_key:
            remove_counts[int(k)] = remove_counts.get(int(k), 0) + 1
        keep = np.ones(key.size, dtype=bool)
        for i, k in enumerate(key):
            k = int(k)
            if remove_counts.get(k, 0) > 0:
                keep[i] = False
                remove_counts[k] -= 1
        return Graph(
            self.num_vertices, src[keep], dst[keep],
            self.vertex_types, self.type_names,
        )

    def fingerprint(self) -> str:
        """Stable hex digest of the graph's structure.

        Covers vertex count, the *sorted* edge multiset and vertex types
        — independent of the order edges were supplied in — so a
        checkpoint stamped with a fingerprint can later verify it is
        being served against the same graph (``repro.serve``).
        """
        import hashlib

        src, dst = self.edges()
        edge_keys = np.sort(src * np.int64(self.num_vertices) + dst)
        h = hashlib.sha256()
        h.update(np.int64(self.num_vertices).tobytes())
        h.update(edge_keys.tobytes())
        h.update(self.vertex_types.tobytes())
        return h.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes of the adjacency structure (CSR + CSC + types)."""
        return int(
            self._csr_indptr.nbytes
            + self._csr_indices.nbytes
            + self._csc_indptr.nbytes
            + self._csc_indices.nbytes
            + self.vertex_types.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges}, "
            f"num_types={self.num_types})"
        )
