"""Synthetic graph generators standing in for the paper's datasets.

The evaluation uses Reddit (dense discussion graph), FB91 (LDBC synthetic,
power-law), Twitter (social network, power-law) and IMDB (small
heterogeneous movie graph).  None are available offline, so each generator
reproduces the *structural property the paper's analysis depends on*:

* :func:`community_graph` (Reddit-like) — high average degree with
  community structure; dense enough that full 2-hop expansion explodes,
  which is what breaks the mini-batch baselines in Table 2.
* :func:`power_law_graph` (FB91/Twitter-like) — heavy-tailed degrees via
  preferential attachment, so hub vertices skew per-vertex GNN cost
  (the premise of the ADB balancer experiment, Figure 15a).
* :func:`heterogeneous_graph` (IMDB-like) — three vertex types wired
  bipartitely (movie-director, movie-actor), giving MAGNN's metapaths
  (e.g. M-D-M, M-A-M) non-trivial instance sets.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["community_graph", "power_law_graph", "heterogeneous_graph", "erdos_renyi_graph"]


def erdos_renyi_graph(num_vertices: int, avg_degree: float, seed: int = 0) -> Graph:
    """Uniform random directed graph with the given average out-degree."""
    rng = np.random.default_rng(seed)
    num_edges = int(num_vertices * avg_degree)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    keep = src != dst
    return Graph(num_vertices, src[keep], dst[keep])


def community_graph(
    num_vertices: int,
    num_communities: int,
    avg_degree: float,
    intra_prob: float = 0.9,
    seed: int = 0,
) -> Graph:
    """Reddit-like dense community graph (undirected, both edge directions).

    Each vertex belongs to one community; each of its ``avg_degree/2``
    undirected edges stays inside the community with probability
    ``intra_prob`` and otherwise lands on a uniform random vertex.
    """
    if num_communities <= 0 or num_vertices < num_communities:
        raise ValueError("need at least one vertex per community")
    rng = np.random.default_rng(seed)
    community = rng.integers(0, num_communities, size=num_vertices)
    num_edges = int(num_vertices * avg_degree / 2)
    src = rng.integers(0, num_vertices, size=num_edges)
    # Intra-community targets: pick a random member of src's community.
    members: list[np.ndarray] = [np.flatnonzero(community == c) for c in range(num_communities)]
    dst = np.empty(num_edges, dtype=np.int64)
    intra = rng.random(num_edges) < intra_prob
    for c in range(num_communities):
        rows = np.flatnonzero(intra & (community[src] == c))
        if rows.size:
            dst[rows] = members[c][rng.integers(0, members[c].size, size=rows.size)]
    inter_rows = np.flatnonzero(~intra)
    dst[inter_rows] = rng.integers(0, num_vertices, size=inter_rows.size)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    graph = Graph.from_edges(num_vertices, edges, make_undirected=True)
    # Stash community labels for dataset construction.
    graph.communities = community  # type: ignore[attr-defined]
    return graph


def power_law_graph(num_vertices: int, avg_degree: float, seed: int = 0) -> Graph:
    """Preferential-attachment graph with heavy-tailed degrees.

    Vectorized Barabási–Albert-style construction: targets of new edges
    are sampled from the endpoint list built so far, so attachment
    probability is proportional to current degree.  Used for the FB91 and
    Twitter stand-ins.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    rng = np.random.default_rng(seed)
    m = max(1, int(round(avg_degree / 2)))
    # Seed clique over the first m+1 vertices.
    seed_n = m + 1
    seed_src, seed_dst = np.meshgrid(np.arange(seed_n), np.arange(seed_n))
    mask = seed_src.ravel() != seed_dst.ravel()
    src_list = [seed_src.ravel()[mask]]
    dst_list = [seed_dst.ravel()[mask]]
    # Endpoint pool for preferential sampling.
    pool = [np.concatenate([src_list[0], dst_list[0]])]
    pool_size = pool[0].size
    # Process remaining vertices in batches for speed; within a batch,
    # attachment uses the pool from previous batches (a standard and
    # faithful-enough approximation at this scale).
    batch = max(256, num_vertices // 50)
    v = seed_n
    while v < num_vertices:
        hi = min(v + batch, num_vertices)
        new_vertices = np.arange(v, hi, dtype=np.int64)
        flat_pool = np.concatenate(pool) if len(pool) > 1 else pool[0]
        pool = [flat_pool]
        targets = flat_pool[rng.integers(0, pool_size, size=new_vertices.size * m)]
        new_src = np.repeat(new_vertices, m)
        src_list.append(new_src)
        dst_list.append(targets)
        pool.append(np.concatenate([new_src, targets]))
        pool_size += new_src.size + targets.size
        v = hi
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)
    return Graph.from_edges(num_vertices, edges, make_undirected=True)


def heterogeneous_graph(
    num_movies: int,
    num_directors: int,
    num_actors: int,
    movies_per_director: float = 3.0,
    actors_per_movie: float = 3.0,
    seed: int = 0,
) -> Graph:
    """IMDB-like heterogeneous graph with types Movie(0)/Director(1)/Actor(2).

    Edges run in both directions between movies and their director(s) and
    actors, so metapaths like ``M-D-M`` and ``M-A-M`` (and longer ones such
    as ``D-M-A``) have instances.
    """
    rng = np.random.default_rng(seed)
    n = num_movies + num_directors + num_actors
    movie_ids = np.arange(num_movies)
    director_ids = num_movies + np.arange(num_directors)
    actor_ids = num_movies + num_directors + np.arange(num_actors)

    # Every movie gets one director; directors with several movies arise
    # naturally from sampling.
    md_dst = director_ids[rng.integers(0, num_directors, size=num_movies)]
    md_edges = np.stack([movie_ids, md_dst], axis=1)

    num_ma = int(num_movies * actors_per_movie)
    ma_src = movie_ids[rng.integers(0, num_movies, size=num_ma)]
    ma_dst = actor_ids[rng.integers(0, num_actors, size=num_ma)]
    ma_edges = np.stack([ma_src, ma_dst], axis=1)

    edges = np.concatenate([md_edges, ma_edges], axis=0)
    types = np.concatenate(
        [
            np.zeros(num_movies, dtype=np.int64),
            np.ones(num_directors, dtype=np.int64),
            np.full(num_actors, 2, dtype=np.int64),
        ]
    )
    return Graph.from_edges(
        n, edges, vertex_types=types,
        type_names=["movie", "director", "actor"],
        make_undirected=True,
    )
