"""Graph characterization metrics — the numbers DESIGN.md's dataset
substitutions are justified with (density, degree skew, clustering,
homophily)."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "degree_histogram",
    "degree_skew",
    "clustering_coefficient",
    "label_homophily",
    "graph_summary",
]


def degree_histogram(graph: Graph, direction: str = "out") -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    if direction == "out":
        degrees = graph.out_degree()
    elif direction == "in":
        degrees = graph.in_degree()
    else:
        raise ValueError("direction must be 'out' or 'in'")
    return np.bincount(degrees)


def degree_skew(graph: Graph) -> float:
    """``E[d^2] / E[d]^2`` — 1.0 for regular graphs, large for power laws.

    This is the size-biased degree ratio that drives the mini-batch
    expansion blow-up and the ADB workload skew.
    """
    degrees = graph.out_degree().astype(np.float64)
    mean = degrees.mean()
    if mean == 0:
        return 1.0
    return float((degrees**2).mean() / mean**2)


def clustering_coefficient(graph: Graph, sample: int | None = 500,
                           seed: int = 0) -> float:
    """Average local clustering coefficient (undirected view).

    Exact when ``sample`` is None, otherwise estimated over a uniform
    vertex sample — triangle counting is the one O(n * d^2) metric here.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    vertices = (
        np.arange(n) if sample is None or sample >= n
        else rng.choice(n, size=sample, replace=False)
    )
    # Undirected neighbor sets.
    coefficients = []
    neighbor_sets: dict[int, frozenset] = {}

    def neighbors_of(v: int) -> frozenset:
        cached = neighbor_sets.get(v)
        if cached is None:
            merged = np.concatenate([graph.out_neighbors(v), graph.in_neighbors(v)])
            cached = frozenset(int(u) for u in merged if u != v)
            neighbor_sets[v] = cached
        return cached

    for v in vertices:
        nbrs = list(neighbors_of(int(v)))
        k = len(nbrs)
        if k < 2:
            coefficients.append(0.0)
            continue
        links = 0
        nbr_set = neighbor_sets[int(v)]
        for u in nbrs:
            links += len(neighbors_of(u) & nbr_set)
        coefficients.append(links / (k * (k - 1)))
    return float(np.mean(coefficients)) if coefficients else 0.0


def label_homophily(graph: Graph, labels: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a label (edge homophily)."""
    labels = np.asarray(labels)
    if labels.shape != (graph.num_vertices,):
        raise ValueError("labels must cover every vertex")
    src, dst = graph.edges()
    if src.size == 0:
        return 0.0
    return float((labels[src] == labels[dst]).mean())


def graph_summary(graph: Graph, labels: np.ndarray | None = None) -> dict:
    """One-call characterization used for dataset documentation."""
    degrees = graph.out_degree()
    summary = {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_types": graph.num_types,
        "mean_degree": float(degrees.mean()),
        "max_degree": int(degrees.max()) if degrees.size else 0,
        "degree_skew": degree_skew(graph),
        "clustering_coefficient": clustering_coefficient(graph),
    }
    if labels is not None:
        summary["label_homophily"] = label_homophily(graph, labels)
    return summary
