"""Dynamic graphs: incremental HDG maintenance (§7.2's closing remark).

The paper notes that Pre+DGL-style simulation breaks down on dynamic
graphs — "the expanded graph cannot be pre-computed in advance.  Instead,
the flexible interfaces of NAU allow users to easily handle such
situation."  This module makes that concrete for MAGNN-style metapath
HDGs: when edges arrive or depart, only the instances *touching the
changed edges* are recomputed, instead of re-matching the whole graph.

:class:`MetapathHDGMaintainer` owns the instance set; after a batch of
edge changes it

1. drops every instance that traverses a removed edge;
2. matches, in the new graph, only the instances that traverse at least
   one added edge (a per-edge join, not a full scan);
3. recompacts the HDG from the updated instance arrays.

The result is always identical to a from-scratch rebuild (tested), at a
cost proportional to the change, not the graph.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.metapath import Metapath, match_length3_metapath
from .hdg import HDG, hdg_from_instance_arrays
from .selection import schema_for_metapaths

__all__ = ["MetapathHDGMaintainer", "instances_through_edges"]


def instances_through_edges(
    graph: Graph, metapath: Metapath, edges: np.ndarray
) -> np.ndarray:
    """Length-3 instances of ``metapath`` in ``graph`` that use at least
    one of the given directed edges, as an ``(m, 3)`` array (deduplicated).

    An instance ``a -> b -> c`` uses edge ``(u, v)`` when
    ``(a, b) == (u, v)`` or ``(b, c) == (u, v)``.
    """
    if metapath.length != 3:
        raise ValueError("incremental maintenance supports 3-vertex metapaths")
    t0, t1, t2 = metapath.types
    types = graph.vertex_types
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    found: list[np.ndarray] = []
    indptr_out, indices_out = graph.csr
    indptr_in, indices_in = graph.csc
    for u, v in edges:
        u, v = int(u), int(v)
        # The listed edge must actually exist in this graph (it may have
        # been removed, or never added): instances only form over real
        # edges.
        if not graph.has_edge(u, v):
            continue
        # Edge in position (0, 1): instances (u, v, c).
        if types[u] == t0 and types[v] == t1:
            cs = indices_out[indptr_out[v] : indptr_out[v + 1]]
            cs = cs[(types[cs] == t2) & (cs != u)]
            if cs.size:
                block = np.empty((cs.size, 3), dtype=np.int64)
                block[:, 0] = u
                block[:, 1] = v
                block[:, 2] = cs
                found.append(block)
        # Edge in position (1, 2): instances (a, u, v).
        if types[u] == t1 and types[v] == t2:
            starts = indices_in[indptr_in[u] : indptr_in[u + 1]]
            starts = starts[(types[starts] == t0) & (starts != v)]
            if starts.size:
                block = np.empty((starts.size, 3), dtype=np.int64)
                block[:, 0] = starts
                block[:, 1] = u
                block[:, 2] = v
                found.append(block)
    if not found:
        return np.empty((0, 3), dtype=np.int64)
    return np.unique(np.concatenate(found, axis=0), axis=0)


class MetapathHDGMaintainer:
    """Owns a metapath HDG over an evolving graph.

    Parameters
    ----------
    graph:
        Initial typed graph.
    metapaths:
        Length-3 metapaths (the evaluation setting).
    """

    def __init__(self, graph: Graph, metapaths: list[Metapath]):
        if not metapaths:
            raise ValueError("need at least one metapath")
        if any(mp.length != 3 for mp in metapaths):
            raise ValueError("incremental maintenance supports 3-vertex metapaths")
        self.graph = graph
        self.metapaths = list(metapaths)
        self.schema = schema_for_metapaths(self.metapaths)
        self._n = graph.num_vertices
        # Per-metapath instance rows kept sorted by row key, with the key
        # array alongside — set operations then cost O(delta log total)
        # instead of re-sorting millions of rows per change batch.  Rows
        # are canonical (deduplicated); parallel-edge multiplicity lives
        # in the aligned ``_counts`` array, so multigraph instance counts
        # match :func:`match_length3_metapath` exactly (an instance
        # ``a -> b -> c`` exists once per (copy of a->b, copy of b->c)
        # pair).
        self._rows: list[np.ndarray] = []
        self._keys: list[np.ndarray] = []
        self._counts: list[np.ndarray] = []
        for mp in self.metapaths:
            rows, counts = _canonical_with_counts(
                match_length3_metapath(graph, mp)
            )
            self._rows.append(rows)
            self._keys.append(_row_keys(rows, self._n))
            self._counts.append(counts)
        #: instances recomputed by the last apply_edge_changes call
        self.last_delta = 0
        #: roots whose instance set the last apply_edge_changes touched —
        #: exactly the vertices whose served layer-1 embeddings went stale
        #: (consumed by repro.serve's cache invalidation)
        self.last_touched_roots: np.ndarray = np.empty(0, dtype=np.int64)

    @property
    def _instances(self) -> list[np.ndarray]:
        """Per-metapath instance arrays (sorted by row key)."""
        return self._rows

    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Total instance count, parallel-edge multiplicity included."""
        return int(sum(int(c.sum()) for c in self._counts))

    def build_hdg(self) -> HDG:
        """Compact the current instance set into an HDG.

        Canonical rows are expanded by their multiplicity so the result
        is row-for-row identical (as a multiset) to
        ``build_metapath_hdg`` on the current graph.
        """
        blocks: list[np.ndarray] = []
        type_id_parts: list[np.ndarray] = []
        for i, (rows, counts) in enumerate(zip(self._rows, self._counts)):
            if rows.size == 0:
                continue
            expanded = np.repeat(rows, counts, axis=0)
            if expanded.size == 0:
                continue
            blocks.append(expanded)
            type_id_parts.append(np.full(expanded.shape[0], i, dtype=np.int64))
        if not blocks:
            empty = np.empty(0, dtype=np.int64)
            return hdg_from_instance_arrays(
                self.schema,
                np.arange(self.graph.num_vertices, dtype=np.int64),
                empty, empty, empty, empty, self.graph.num_vertices,
            )
        instances = np.concatenate(blocks, axis=0)
        type_ids = np.concatenate(type_id_parts)
        return hdg_from_instance_arrays(
            self.schema,
            np.arange(self.graph.num_vertices, dtype=np.int64),
            instances[:, 0],
            type_ids,
            instances.reshape(-1),
            np.full(instances.shape[0], 3, dtype=np.int64),
            self.graph.num_vertices,
        )

    # ------------------------------------------------------------------
    def apply_edge_changes(
        self,
        added: np.ndarray | None = None,
        removed: np.ndarray | None = None,
        build: bool = True,
    ) -> HDG | None:
        """Evolve the graph and incrementally repair the instance set.

        Matching work is proportional to the instances touching the
        changed edges.  With ``build=True`` (default) the repaired
        instance set is also recompacted into an HDG and returned;
        pass ``build=False`` to batch several change rounds and call
        :meth:`build_hdg` once before the next training step.
        """
        added = (
            np.empty((0, 2), dtype=np.int64) if added is None
            else np.asarray(added, dtype=np.int64).reshape(-1, 2)
        )
        removed = (
            np.empty((0, 2), dtype=np.int64) if removed is None
            else np.asarray(removed, dtype=np.int64).reshape(-1, 2)
        )
        old_graph = self.graph
        new_graph = old_graph
        if removed.size:
            new_graph = new_graph.with_edges_removed(removed)
        if added.size:
            new_graph = new_graph.with_edges_added(added)
        delta = 0
        touched: list[np.ndarray] = []
        changed = (
            np.unique(np.concatenate([added, removed], axis=0), axis=0)
            if added.size or removed.size
            else np.empty((0, 2), dtype=np.int64)
        )
        for i, mp in enumerate(self.metapaths):
            rows, keys, counts = self._rows[i], self._keys[i], self._counts[i]
            if changed.size == 0:
                continue
            # Every canonical instance whose multiplicity may have moved:
            # instances traversing a changed edge in either the old graph
            # (a removed copy) or the new one (an added copy).
            affected = _set_union(
                instances_through_edges(old_graph, mp, changed),
                instances_through_edges(new_graph, mp, changed),
            )
            if affected.size == 0:
                self._rows[i], self._keys[i], self._counts[i] = rows, keys, counts
                continue
            # New multiplicity of a -> b -> c is the product of the two
            # parallel-edge counts in the evolved graph — exactly how
            # match_length3_metapath's edge join counts it.
            new_counts = (
                new_graph.edge_multiplicity(affected[:, :2])
                * new_graph.edge_multiplicity(affected[:, 1:])
            )
            affected_keys = _row_keys(affected, self._n)
            pos, found = _positions_of(keys, affected_keys)
            old_counts = np.zeros(affected_keys.size, dtype=np.int64)
            old_counts[found] = counts[pos[found]]
            moved = new_counts != old_counts
            if not moved.any():
                self._rows[i], self._keys[i], self._counts[i] = rows, keys, counts
                continue
            delta += int(np.abs(new_counts - old_counts)[moved].sum())
            touched.append(affected[moved, 0])
            # Update surviving rows' counts in place (positions valid
            # before any removal shifts them).
            update = found & moved & (new_counts > 0)
            if update.any():
                counts = counts.copy()
                counts[pos[update]] = new_counts[update]
            # Drop rows whose last parallel copy disappeared.
            drop = found & (new_counts == 0)
            if drop.any():
                mask = np.ones(keys.size, dtype=bool)
                mask[pos[drop]] = False
                rows, keys, counts = rows[mask], keys[mask], counts[mask]
            # Insert brand-new rows (sorted; _set_union output is
            # lexicographically sorted so the keys are ascending).
            insert = (~found) & (new_counts > 0)
            if insert.any():
                insert_at = np.searchsorted(keys, affected_keys[insert])
                rows = np.insert(rows, insert_at, affected[insert], axis=0)
                keys = np.insert(keys, insert_at, affected_keys[insert])
                counts = np.insert(counts, insert_at, new_counts[insert])
            self._rows[i], self._keys[i], self._counts[i] = rows, keys, counts
        self.graph = new_graph
        self.last_delta = delta
        self.last_touched_roots = (
            np.unique(np.concatenate(touched)) if touched
            else np.empty(0, dtype=np.int64)
        )
        return self.build_hdg() if build else None


def _canonical(instances: np.ndarray) -> np.ndarray:
    """Sorted, deduplicated row set."""
    if instances.size == 0:
        return instances.reshape(0, 3)
    return np.unique(instances, axis=0)


def _canonical_with_counts(instances: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted, deduplicated rows plus per-row multiplicity.

    ``np.unique(axis=0)`` sorts lexicographically, which coincides with
    ``_row_keys`` order (the key is monotone in ``(a, b, c)``), so the
    returned rows align with a sorted key array.
    """
    if instances.size == 0:
        return instances.reshape(0, 3), np.empty(0, dtype=np.int64)
    rows, counts = np.unique(instances, axis=0, return_counts=True)
    return rows, counts.astype(np.int64)


def _row_keys(block: np.ndarray, n: int) -> np.ndarray:
    if block.size == 0:
        return np.empty(0, dtype=np.int64)
    return (block[:, 0] * n + block[:, 1]) * n + block[:, 2]


def _positions_of(sorted_keys: np.ndarray, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(positions, found_mask) of ``query`` keys in a sorted key array."""
    if sorted_keys.size == 0:
        return np.zeros(query.size, dtype=np.int64), np.zeros(query.size, dtype=bool)
    pos = np.searchsorted(sorted_keys, query)
    found = pos < sorted_keys.size
    found[found] = sorted_keys[pos[found]] == query[found]
    return pos, found


def _set_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0 or b.size == 0:
        return a
    n = int(max(a.max(), b.max())) + 1
    keep = ~np.isin(_row_keys(a, n), _row_keys(b, n))
    return a[keep]


def _set_union(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    return np.unique(np.concatenate([a, b], axis=0), axis=0)
