"""Hierarchical dependency graphs (HDGs) with the compact storage of §4.1.

An HDG characterizes, per root vertex, how neighborhood features flow
bottom-up: input-graph *leaf* vertices -> *neighbor instances* -> schema
leaf types -> root.  This module stores the HDGs of **all** roots
collectively, in exactly the layout Figure 9 describes:

* **Subgraph of neighbor instances** (bottom level): CSC as two arrays —
  ``leaf_vertices`` (the paper's ``Dst_max``: leaf ids grouped by their
  instance) and ``leaf_offsets`` (``Offset_max``: one range per instance).
* **Subgraph in-between**: every instance has exactly one outgoing edge,
  so instances are ordered consecutively by their destination
  (root, schema-leaf) slot and the vertex array is *elided*; only
  ``instance_offsets`` (``Offset_2``) is kept.
* **Schema trees**: a single global :class:`~repro.core.schema.SchemaTree`
  shared by all roots; per-root copies are never materialized.

Flat models (GCN, PinSage) use ``depth == 1``: leaves group directly
under roots and the instance level disappears, matching Figure 3a-3b.
"""

from __future__ import annotations

import numpy as np

from .schema import NeighborRecord, SchemaTree

__all__ = [
    "HDG",
    "MemmapHDG",
    "build_hdg",
    "hdg_from_graph",
    "hdg_from_flat_arrays",
    "hdg_from_instance_arrays",
]


class HDG:
    """Collective hierarchical dependency graph for a set of root vertices.

    Use :func:`build_hdg` (or ``HDG.from_records``) rather than the raw
    constructor.

    Attributes
    ----------
    roots:
        Root vertex ids (input-graph ids), in slot order.
    schema:
        The shared global schema tree.
    leaf_vertices, leaf_offsets:
        Bottom-level CSC (``Dst_max`` / ``Offset_max``).  For depth-1 HDGs
        ``leaf_offsets`` is indexed by root order; for depth-3 by
        neighbor-instance id.
    instance_offsets:
        ``Offset_2`` — per-(root, leaf-type) slot offsets into the
        instance id space; ``None`` for depth-1 HDGs.
    leaf_weights:
        Optional per-(leaf edge) weights (PinSage importance).
    """

    def __init__(
        self,
        roots: np.ndarray,
        schema: SchemaTree,
        leaf_vertices: np.ndarray,
        leaf_offsets: np.ndarray,
        instance_offsets: np.ndarray | None = None,
        leaf_weights: np.ndarray | None = None,
        num_input_vertices: int | None = None,
    ):
        self.roots = np.asarray(roots, dtype=np.int64)
        self.schema = schema
        self.leaf_vertices = np.asarray(leaf_vertices, dtype=np.int64)
        self.leaf_offsets = np.asarray(leaf_offsets, dtype=np.int64)
        self.instance_offsets = (
            None if instance_offsets is None else np.asarray(instance_offsets, dtype=np.int64)
        )
        self.leaf_weights = None if leaf_weights is None else np.asarray(leaf_weights, dtype=np.float64)
        self.num_input_vertices = int(
            num_input_vertices
            if num_input_vertices is not None
            else (self.leaf_vertices.max() + 1 if self.leaf_vertices.size else 0)
        )
        self._fingerprint: str | None = None
        self._validate()

    def _validate(self) -> None:
        if self.leaf_offsets.ndim != 1 or self.leaf_offsets.size == 0:
            raise ValueError("leaf_offsets must be a non-empty 1-D array")
        if np.any(np.diff(self.leaf_offsets) < 0):
            raise ValueError("leaf_offsets must be non-decreasing")
        if self.leaf_offsets[-1] != self.leaf_vertices.size:
            raise ValueError("leaf_offsets must cover leaf_vertices exactly")
        if self.leaf_weights is not None and self.leaf_weights.size != self.leaf_vertices.size:
            raise ValueError("leaf_weights must align with leaf_vertices")
        if self.instance_offsets is None:
            if self.leaf_offsets.size != self.roots.size + 1:
                raise ValueError("flat HDG: leaf_offsets must have num_roots + 1 entries")
        else:
            expected_slots = self.roots.size * self.schema.num_leaves + 1
            if self.instance_offsets.size != expected_slots:
                raise ValueError(
                    f"instance_offsets must have num_roots * num_leaf_types + 1 "
                    f"= {expected_slots} entries, got {self.instance_offsets.size}"
                )
            if np.any(np.diff(self.instance_offsets) < 0):
                raise ValueError("instance_offsets must be non-decreasing")
            if self.instance_offsets[-1] != self.num_instances:
                raise ValueError("instance_offsets must cover all neighbor instances")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """1 for flat HDGs (DNFA/INFA), 3 for hierarchical (INHA)."""
        return 1 if self.instance_offsets is None else 3

    @property
    def max_level(self) -> int:
        """The bottom (leaf) level index, as in Figure 3."""
        return self.depth

    @property
    def num_roots(self) -> int:
        return int(self.roots.size)

    @property
    def num_instances(self) -> int:
        """Number of neighbor-instance vertices (== records)."""
        return int(self.leaf_offsets.size - 1) if self.depth == 3 else int(self.leaf_vertices.size)

    @property
    def num_slots(self) -> int:
        """(root, schema-leaf) pairs — the destinations of the in-between level."""
        return self.num_roots * self.schema.num_leaves

    def instance_types(self) -> np.ndarray:
        """Schema-leaf type id per neighbor instance (depth-3 only)."""
        if self.depth != 3:
            raise ValueError("flat HDGs have no instance level")
        counts = np.diff(self.instance_offsets)
        slot_ids = np.repeat(np.arange(self.num_slots, dtype=np.int64), counts)
        return slot_ids % self.schema.num_leaves

    def instance_roots(self) -> np.ndarray:
        """Root order index per neighbor instance (depth-3 only)."""
        if self.depth != 3:
            raise ValueError("flat HDGs have no instance level")
        counts = np.diff(self.instance_offsets)
        slot_ids = np.repeat(np.arange(self.num_slots, dtype=np.int64), counts)
        return slot_ids // self.schema.num_leaves

    # ------------------------------------------------------------------
    # Level subgraphs (the `HDG.sub_graph(level=i)` of Figures 6-7)
    # ------------------------------------------------------------------
    def sub_graph(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """COO ``(dst_ids, src_ids)`` of the subgraph between ``level`` and
        ``level - 1``.

        Level numbering follows Figure 3: for a depth-3 HDG, level 3 are
        input-graph leaves (src ids are global vertex ids), level 2
        neighbor instances, level 1 schema-leaf slots, level 0 roots.
        For a depth-1 HDG only ``level == 1`` exists (leaves -> roots).
        """
        if self.depth == 1:
            if level != 1:
                raise ValueError(f"flat HDG has only level 1, got {level}")
            counts = np.diff(self.leaf_offsets)
            dst = np.repeat(np.arange(self.num_roots, dtype=np.int64), counts)
            return dst, self.leaf_vertices.copy()
        if level == 3:
            counts = np.diff(self.leaf_offsets)
            dst = np.repeat(np.arange(self.num_instances, dtype=np.int64), counts)
            return dst, self.leaf_vertices.copy()
        if level == 2:
            counts = np.diff(self.instance_offsets)
            dst = np.repeat(np.arange(self.num_slots, dtype=np.int64), counts)
            # The elided Dst array: sources are consecutive instance ids.
            return dst, np.arange(self.num_instances, dtype=np.int64)
        if level == 1:
            src = np.arange(self.num_slots, dtype=np.int64)
            return src // self.schema.num_leaves, src
        raise ValueError(f"depth-3 HDG has levels 1..3, got {level}")

    def leaf_counts(self) -> np.ndarray:
        """Leaf-vertex count per instance (depth 3) or per root (depth 1)."""
        return np.diff(self.leaf_offsets)

    def instance_counts_per_type(self) -> np.ndarray:
        """(num_roots, num_leaf_types) instance counts — the cost-model
        ``n_1..n_k`` variables of Section 5."""
        if self.depth == 1:
            return np.diff(self.leaf_offsets).reshape(-1, 1)
        counts = np.diff(self.instance_offsets)
        return counts.reshape(self.num_roots, self.schema.num_leaves)

    def dependency_leaves(self, root_order: int) -> np.ndarray:
        """All input-graph leaf ids a root depends on (induced-graph edges
        used by the ADB balancer, Figure 11b)."""
        if self.depth == 1:
            lo, hi = self.leaf_offsets[root_order], self.leaf_offsets[root_order + 1]
            return np.unique(self.leaf_vertices[lo:hi])
        slot_lo = root_order * self.schema.num_leaves
        slot_hi = slot_lo + self.schema.num_leaves
        inst_lo = self.instance_offsets[slot_lo]
        inst_hi = self.instance_offsets[slot_hi]
        lo, hi = self.leaf_offsets[inst_lo], self.leaf_offsets[inst_hi]
        return np.unique(self.leaf_vertices[lo:hi])

    def restrict_to_roots(self, root_orders: np.ndarray) -> "HDG":
        """The sub-HDG owned by a subset of roots (given by root order).

        Used by distributed training: each shared-nothing worker holds the
        HDGs of its partition's root vertices (§5).  Leaf ids stay global
        — leaves may live on other workers, which is exactly what the
        synchronization accounting measures.
        """
        root_orders = np.asarray(root_orders, dtype=np.int64)
        sub_roots = self.roots[root_orders]
        if self.depth == 1:
            counts = np.diff(self.leaf_offsets)[root_orders]
            starts = self.leaf_offsets[root_orders]
            gather = _ranges_gather(starts, counts)
            new_offsets = np.zeros(root_orders.size + 1, dtype=np.int64)
            np.cumsum(counts, out=new_offsets[1:])
            return HDG(
                sub_roots, self.schema, self.leaf_vertices[gather], new_offsets,
                instance_offsets=None,
                leaf_weights=None if self.leaf_weights is None else self.leaf_weights[gather],
                num_input_vertices=self.num_input_vertices,
            )
        num_leaves = self.schema.num_leaves
        # Slot ranges for the selected roots (contiguous per root).
        slot_starts = root_orders * num_leaves
        slot_gather = _ranges_gather(slot_starts, np.full(root_orders.size, num_leaves, dtype=np.int64))
        slot_counts = np.diff(self.instance_offsets)[slot_gather]
        new_instance_offsets = np.zeros(slot_gather.size + 1, dtype=np.int64)
        np.cumsum(slot_counts, out=new_instance_offsets[1:])
        # Instance ranges per selected slot.
        inst_starts = self.instance_offsets[slot_gather]
        inst_gather = _ranges_gather(inst_starts, slot_counts)
        leaf_counts = np.diff(self.leaf_offsets)[inst_gather]
        new_leaf_offsets = np.zeros(inst_gather.size + 1, dtype=np.int64)
        np.cumsum(leaf_counts, out=new_leaf_offsets[1:])
        leaf_starts = self.leaf_offsets[inst_gather]
        leaf_gather = _ranges_gather(leaf_starts, leaf_counts)
        return HDG(
            sub_roots, self.schema, self.leaf_vertices[leaf_gather], new_leaf_offsets,
            instance_offsets=new_instance_offsets,
            leaf_weights=None if self.leaf_weights is None else self.leaf_weights[leaf_gather],
            num_input_vertices=self.num_input_vertices,
        )

    def root_of_leaf_edges(self) -> np.ndarray:
        """Root order index per bottom-level edge slot (dependency map)."""
        if self.depth == 1:
            return np.repeat(
                np.arange(self.num_roots, dtype=np.int64), np.diff(self.leaf_offsets)
            )
        inst_root = self.instance_roots()
        return np.repeat(inst_root, np.diff(self.leaf_offsets))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hex digest of the HDG's reduction *structure*.

        Covers every array that shapes an aggregation (leaf CSC, instance
        offsets, weights, leaf id space, schema width) but not the root
        ids themselves — two HDGs with identical structure reduce
        identically.  HDG arrays are never mutated after construction
        (edits build a new HDG), so the digest is computed once and
        memoized; :mod:`repro.tensor.plans` keys cached reduction plans
        on it, which makes stale plans unreachable after a graph edit.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(np.int64(self.num_input_vertices).tobytes())
            h.update(np.int64(self.schema.num_leaves).tobytes())
            h.update(self.leaf_vertices.tobytes())
            h.update(self.leaf_offsets.tobytes())
            if self.instance_offsets is not None:
                h.update(b"inst")
                h.update(self.instance_offsets.tobytes())
            if self.leaf_weights is not None:
                h.update(b"wts")
                h.update(self.leaf_weights.tobytes())
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    # ------------------------------------------------------------------
    # Memory accounting (Table 5 and the storage ablation)
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes of the optimized storage actually kept."""
        total = self.leaf_vertices.nbytes + self.leaf_offsets.nbytes + self.roots.nbytes
        if self.instance_offsets is not None:
            total += self.instance_offsets.nbytes
        if self.leaf_weights is not None:
            total += self.leaf_weights.nbytes
        total += self.schema.nbytes  # single global tree
        return int(total)

    @property
    def nbytes_unoptimized(self) -> int:
        """Bytes a naive CSC-per-level store would need: an explicit Dst
        array for the in-between level plus one schema-tree copy per root."""
        total = self.nbytes
        if self.depth == 3:
            total += 8 * self.num_instances  # the elided Dst_2
            total += self.schema.nbytes * (self.num_roots - 1)  # per-root copies
        return int(total)

    def __repr__(self) -> str:
        return (
            f"HDG(depth={self.depth}, num_roots={self.num_roots}, "
            f"num_instances={self.num_instances}, "
            f"num_leaf_edges={self.leaf_vertices.size}, schema={self.schema.leaf_types})"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: list[NeighborRecord],
        schema: SchemaTree,
        roots: np.ndarray,
        num_input_vertices: int,
        flat: bool | None = None,
    ) -> "HDG":
        """Build the compact HDG from NeighborSelection's formatted records.

        This is the top-down construction of Section 4.1: records are
        grouped by (root, type) slot, instances ordered consecutively per
        slot (which is what lets the in-between Dst array be elided), and
        leaves concatenated per instance.

        Parameters
        ----------
        records:
            One record per neighbor instance.
        schema:
            The model's global schema tree.
        roots:
            All root vertex ids the HDG should cover (roots with no
            records get empty neighborhoods).
        num_input_vertices:
            Vertex count of the input graph (leaf id space).
        flat:
            Force flat/hierarchical layout; default auto-detects (flat iff
            the schema is trivial and every record has exactly one leaf).
        """
        roots = np.asarray(roots, dtype=np.int64)
        root_order = {int(r): i for i, r in enumerate(roots)}
        if flat is None:
            flat = schema.is_trivial and all(len(r.leaves) == 1 for r in records)

        for rec in records:
            if rec.nei_type >= schema.num_leaves:
                raise ValueError(
                    f"record type {rec.nei_type} out of range for schema with "
                    f"{schema.num_leaves} leaf types"
                )
            if rec.root not in root_order:
                raise ValueError(f"record root {rec.root} not in the HDG root set")

        if flat:
            return cls._build_flat(records, schema, roots, root_order, num_input_vertices)
        return cls._build_hierarchical(records, schema, roots, root_order, num_input_vertices)

    @classmethod
    def _build_flat(cls, records, schema, roots, root_order, num_input_vertices) -> "HDG":
        num_roots = roots.size
        owners = np.fromiter((root_order[r.root] for r in records), dtype=np.int64, count=len(records))
        order = np.argsort(owners, kind="stable")
        leaf_vertices = np.fromiter(
            (records[i].leaves[0] for i in order), dtype=np.int64, count=len(records)
        )
        weights = None
        if records and records[0].weight is not None:
            weights = np.fromiter(
                (records[i].weight if records[i].weight is not None else 1.0 for i in order),
                dtype=np.float64,
                count=len(records),
            )
        counts = np.bincount(owners, minlength=num_roots)
        leaf_offsets = np.zeros(num_roots + 1, dtype=np.int64)
        np.cumsum(counts, out=leaf_offsets[1:])
        return cls(
            roots, schema, leaf_vertices, leaf_offsets,
            instance_offsets=None, leaf_weights=weights,
            num_input_vertices=num_input_vertices,
        )

    @classmethod
    def _build_hierarchical(cls, records, schema, roots, root_order, num_input_vertices) -> "HDG":
        num_roots = roots.size
        num_leaves = schema.num_leaves
        slots = np.fromiter(
            (root_order[r.root] * num_leaves + r.nei_type for r in records),
            dtype=np.int64,
            count=len(records),
        )
        order = np.argsort(slots, kind="stable")
        # Instances in slot order; leaves concatenated per instance.
        leaf_counts = np.fromiter((len(records[i].leaves) for i in order), dtype=np.int64, count=len(records))
        leaf_offsets = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(leaf_counts, out=leaf_offsets[1:])
        leaf_vertices = np.empty(int(leaf_counts.sum()), dtype=np.int64)
        pos = 0
        for i in order:
            leaves = records[i].leaves
            leaf_vertices[pos : pos + len(leaves)] = leaves
            pos += len(leaves)
        weights = None
        if records and records[0].weight is not None:
            weights = np.empty(leaf_vertices.size, dtype=np.float64)
            pos = 0
            for i in order:
                w = records[i].weight if records[i].weight is not None else 1.0
                span = len(records[i].leaves)
                weights[pos : pos + span] = w
                pos += span
        slot_counts = np.bincount(slots, minlength=num_roots * num_leaves)
        instance_offsets = np.zeros(num_roots * num_leaves + 1, dtype=np.int64)
        np.cumsum(slot_counts, out=instance_offsets[1:])
        return cls(
            roots, schema, leaf_vertices, leaf_offsets,
            instance_offsets=instance_offsets, leaf_weights=weights,
            num_input_vertices=num_input_vertices,
        )


class MemmapHDG(HDG):
    """A flat HDG whose CSC arrays are memory-mapped files.

    The out-of-core path (:mod:`repro.storage.ondisk`) exposes a graph's
    topology as ``np.memmap`` arrays; wrapping them in a regular
    :class:`HDG` would defeat the point — ``np.asarray`` copies nothing,
    but ``_validate`` scans every offset and ``restrict_to_roots`` runs
    ``np.diff`` over the *whole* offset array per batch.  This subclass
    keeps the memmaps as-is (no validation pass, the manifest already
    vouches for the files) and restricts by touching only the selected
    roots' pages, so per-batch sampling cost is O(batch neighborhoods),
    independent of graph size.

    Only depth-1 (flat) HDGs can be memmap-backed; that is the layout
    DNFA models (GCN/SAGE) build via :func:`hdg_from_graph`.
    """

    def __init__(self, roots: np.ndarray, schema: SchemaTree,
                 leaf_vertices: np.ndarray, leaf_offsets: np.ndarray,
                 num_input_vertices: int,
                 source_files: list[str] | None = None):
        # Deliberately skip HDG.__init__: its asarray calls would drop
        # the memmap subclass and its validation reads every page.
        self.roots = np.asarray(roots, dtype=np.int64)
        self.schema = schema
        self.leaf_vertices = leaf_vertices
        self.leaf_offsets = leaf_offsets
        self.instance_offsets = None
        self.leaf_weights = None
        self.num_input_vertices = int(num_input_vertices)
        self._fingerprint: str | None = None
        self._source_files = list(source_files or [])

    def restrict_to_roots(self, root_orders: np.ndarray) -> HDG:
        """Materialize the selected roots' sub-HDG as a regular in-RAM
        HDG, reading only the pages those roots' ranges touch."""
        root_orders = np.asarray(root_orders, dtype=np.int64)
        starts = np.asarray(self.leaf_offsets[root_orders], dtype=np.int64)
        ends = np.asarray(self.leaf_offsets[root_orders + 1], dtype=np.int64)
        counts = ends - starts
        gather = _ranges_gather(starts, counts)
        new_offsets = np.zeros(root_orders.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_offsets[1:])
        return HDG(
            self.roots[root_orders], self.schema,
            np.asarray(self.leaf_vertices[gather], dtype=np.int64),
            new_offsets, instance_offsets=None, leaf_weights=None,
            num_input_vertices=self.num_input_vertices,
        )

    def fingerprint(self) -> str:
        """Content-addressing without reading the files: hash the backing
        paths plus size/mtime.  Falls back to a per-object token when the
        arrays carry no filename (anonymous memmaps)."""
        if self._fingerprint is None:
            import hashlib
            import os

            h = hashlib.sha256()
            h.update(np.int64(self.num_input_vertices).tobytes())
            names = self._source_files or [
                getattr(arr, "filename", None)
                for arr in (self.leaf_offsets, self.leaf_vertices)
            ]
            stamped = False
            for name in names:
                if not name:
                    continue
                st = os.stat(name)
                h.update(str(name).encode())
                h.update(np.int64(st.st_size).tobytes())
                h.update(np.float64(st.st_mtime).tobytes())
                stamped = True
            if not stamped:
                import secrets

                h.update(secrets.token_bytes(16))
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint


def _ranges_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat index array covering ``starts[i]..starts[i]+counts[i]`` for all i."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )


def _order_of(roots: np.ndarray, num_input_vertices: int) -> np.ndarray:
    order = np.full(num_input_vertices, -1, dtype=np.int64)
    order[roots] = np.arange(roots.size)
    return order


def hdg_from_flat_arrays(
    schema: SchemaTree,
    roots: np.ndarray,
    owner_roots: np.ndarray,
    leaf_ids: np.ndarray,
    weights: np.ndarray | None,
    num_input_vertices: int,
) -> HDG:
    """Vectorized flat-HDG construction from parallel arrays.

    ``owner_roots[i]`` owns neighbor ``leaf_ids[i]`` (optionally weighted).
    This is the bulk path the PinSage NeighborSelection uses — equivalent
    to :meth:`HDG.from_records` over single-leaf records, but without
    constructing per-record Python objects.
    """
    roots = np.asarray(roots, dtype=np.int64)
    owner_roots = np.asarray(owner_roots, dtype=np.int64)
    leaf_ids = np.asarray(leaf_ids, dtype=np.int64)
    order = _order_of(roots, num_input_vertices)
    owner_order = order[owner_roots]
    if owner_order.size and owner_order.min() < 0:
        raise ValueError("owner root not in the HDG root set")
    perm = np.argsort(owner_order, kind="stable")
    counts = np.bincount(owner_order, minlength=roots.size)
    leaf_offsets = np.zeros(roots.size + 1, dtype=np.int64)
    np.cumsum(counts, out=leaf_offsets[1:])
    return HDG(
        roots, schema, leaf_ids[perm], leaf_offsets,
        instance_offsets=None,
        leaf_weights=None if weights is None else np.asarray(weights, dtype=np.float64)[perm],
        num_input_vertices=num_input_vertices,
    )


def hdg_from_instance_arrays(
    schema: SchemaTree,
    roots: np.ndarray,
    instance_roots: np.ndarray,
    instance_types: np.ndarray,
    leaf_flat: np.ndarray,
    leaf_counts: np.ndarray,
    num_input_vertices: int,
    weights: np.ndarray | None = None,
) -> HDG:
    """Vectorized depth-3 HDG construction from instance arrays.

    ``instance_roots``/``instance_types`` describe one neighbor instance
    per entry; instance ``i`` owns ``leaf_counts[i]`` consecutive vertices
    in ``leaf_flat``.  This is the bulk path MAGNN's metapath matcher
    uses — semantically identical to :meth:`HDG.from_records`.
    """
    roots = np.asarray(roots, dtype=np.int64)
    instance_roots = np.asarray(instance_roots, dtype=np.int64)
    instance_types = np.asarray(instance_types, dtype=np.int64)
    leaf_flat = np.asarray(leaf_flat, dtype=np.int64)
    leaf_counts = np.asarray(leaf_counts, dtype=np.int64)
    if instance_types.size and instance_types.max() >= schema.num_leaves:
        raise ValueError("instance type out of schema range")
    order = _order_of(roots, num_input_vertices)
    owner_order = order[instance_roots]
    if owner_order.size and owner_order.min() < 0:
        raise ValueError("instance root not in the HDG root set")
    num_leaves = schema.num_leaves
    slots = owner_order * num_leaves + instance_types
    perm = np.argsort(slots, kind="stable")

    # Permute ragged leaf groups into slot order.
    src_offsets = np.zeros(leaf_counts.size + 1, dtype=np.int64)
    np.cumsum(leaf_counts, out=src_offsets[1:])
    new_counts = leaf_counts[perm]
    leaf_offsets = np.zeros(leaf_counts.size + 1, dtype=np.int64)
    np.cumsum(new_counts, out=leaf_offsets[1:])
    total = int(new_counts.sum())
    gather = np.empty(total, dtype=np.int64)
    # gather[j] = position in leaf_flat of the j-th leaf after permutation
    group_starts = src_offsets[perm]
    gather = (
        np.arange(total, dtype=np.int64)
        - np.repeat(leaf_offsets[:-1], new_counts)
        + np.repeat(group_starts, new_counts)
    )
    leaf_vertices = leaf_flat[gather]
    slot_counts = np.bincount(slots, minlength=roots.size * num_leaves)
    instance_offsets = np.zeros(roots.size * num_leaves + 1, dtype=np.int64)
    np.cumsum(slot_counts, out=instance_offsets[1:])
    return HDG(
        roots, schema, leaf_vertices, leaf_offsets,
        instance_offsets=instance_offsets,
        leaf_weights=None if weights is None else np.asarray(weights, dtype=np.float64)[gather],
        num_input_vertices=num_input_vertices,
    )


def hdg_from_graph(graph, weights: np.ndarray | None = None) -> HDG:
    """Flat HDG directly from a graph's CSC arrays (zero extra work).

    This is the DNFA fast path: "FlexGraph does not construct extra HDGs
    for GCN, since the input graph serves the desired purpose" (§7.8).
    Each vertex's neighbors are its in-neighbors; ``weights`` optionally
    attaches a per-in-edge weight in CSC order.
    """
    indptr, indices = graph.csc
    roots = np.arange(graph.num_vertices, dtype=np.int64)
    if isinstance(indices, np.memmap) or isinstance(indptr, np.memmap):
        # Out-of-core topology (repro.storage.ondisk): keep the memmaps,
        # never copy the edge array into RAM.
        if weights is not None:
            raise ValueError("memmap-backed graphs do not support edge weights")
        files = [
            name for name in (
                getattr(indptr, "filename", None),
                getattr(indices, "filename", None),
            ) if name
        ]
        return MemmapHDG(
            roots, SchemaTree(), indices, indptr,
            num_input_vertices=graph.num_vertices, source_files=files,
        )
    return HDG(
        roots,
        SchemaTree(),
        indices.copy(),
        indptr.copy(),
        instance_offsets=None,
        leaf_weights=weights,
        num_input_vertices=graph.num_vertices,
    )


def build_hdg(
    records: list[NeighborRecord],
    schema: SchemaTree,
    roots: np.ndarray,
    num_input_vertices: int,
    flat: bool | None = None,
) -> HDG:
    """Functional alias of :meth:`HDG.from_records`."""
    return HDG.from_records(records, schema, roots, num_input_vertices, flat)
