"""Single-machine GNN execution engine (the core of Figure 12).

The engine owns HDG construction/caching, runs each layer's stages under
:mod:`repro.obs` spans (the per-stage breakdown of Table 4), and drives
the training loop (forward, loss, backward, optimizer step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .. import obs
from ..graph.graph import Graph
from ..tensor.loss import accuracy, cross_entropy
from ..tensor.optim import Optimizer
from ..tensor.plans import get_plan_cache
from ..tensor.scatter import MATERIALIZED_BYTES_COUNTER
from ..tensor.tensor import Tensor, no_grad
from .hdg import HDG
from .hybrid import ExecutionStrategy
from .nau import NAUModel, SelectionScope

__all__ = ["StageTimes", "EpochStats", "FlexGraphEngine", "STAGE_SPANS"]

#: obs span names for the four NAU stages (Table 4's columns).
STAGE_SPANS = {
    "neighbor_selection": "stage.neighbor_selection",
    "aggregation": "stage.aggregation",
    "update": "stage.update",
    "backward": "stage.backward",
}


@dataclass
class StageTimes:
    """Wall-clock seconds per NAU stage (Table 4's columns).

    This is now a thin *view* over ``repro.obs`` span data: the engine
    emits one ``stage.*`` span per layer per stage and sums their
    durations here, so ``EpochStats.times`` and an exported trace always
    agree exactly.  :meth:`from_spans` rebuilds the same view from any
    span collection (live records or an exported JSON trace).
    """

    neighbor_selection: float = 0.0
    aggregation: float = 0.0
    update: float = 0.0
    backward: float = 0.0

    @property
    def total(self) -> float:
        return self.neighbor_selection + self.aggregation + self.update + self.backward

    @property
    def forward_total(self) -> float:
        return self.neighbor_selection + self.aggregation + self.update

    def __iadd__(self, other: "StageTimes") -> "StageTimes":
        self.neighbor_selection += other.neighbor_selection
        self.aggregation += other.aggregation
        self.update += other.update
        self.backward += other.backward
        return self

    @classmethod
    def from_spans(cls, spans: Iterable) -> "StageTimes":
        """Aggregate ``stage.*`` spans (records or trace dicts) by stage."""
        by_span_name = {v: k for k, v in STAGE_SPANS.items()}
        times = cls()
        for s in spans:
            name = s["name"] if isinstance(s, dict) else s.name
            duration = s["duration"] if isinstance(s, dict) else s.duration
            stage = by_span_name.get(name)
            if stage is not None:
                setattr(times, stage, getattr(times, stage) + float(duration))
        return times


@dataclass
class EpochStats:
    """Result of one training epoch."""

    epoch: int
    loss: float
    times: StageTimes = field(default_factory=StageTimes)
    train_accuracy: float | None = None


class FlexGraphEngine:
    """Translate a :class:`NAUModel` into an execution plan and run it.

    Parameters
    ----------
    model:
        The NAU program to execute.
    graph:
        Input graph.
    strategy:
        Aggregation execution strategy (Figure 14); default HA.
    seed:
        Seed for NeighborSelection randomness (PinSage's walks).
    """

    def __init__(self, model: NAUModel, graph: Graph,
                 strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
                 seed: int = 0):
        self.model = model
        self.graph = graph
        self.strategy = ExecutionStrategy.parse(strategy)
        self._rng = np.random.default_rng(seed)
        self._model_hdg: HDG | None = None
        self._layer_hdgs: dict[int, HDG] = {}
        self._hdg_epoch = -1
        # PER_LAYER scope: the model-level fallback HDG is shared by every
        # layer of one forward pass instead of being rebuilt per layer.
        self._forward_pass = 0
        self._per_layer_fallback: tuple[int, HDG] | None = None
        self.last_times = StageTimes()

    # ------------------------------------------------------------------
    # HDG lifecycle (NAU's caching discussion, Section 3.2)
    # ------------------------------------------------------------------
    def hdg_for_layer(self, layer_index: int, epoch: int = 0) -> HDG:
        """HDG for a layer, honoring the model's selection scope."""
        layer = self.model.layers[layer_index]
        scope = self.model.selection_scope
        if scope is SelectionScope.PER_LAYER:
            own = layer.neighbor_selection(self.graph, self._rng)
            if own is not None:
                return own
            # Layers without their own selection share one model-level HDG
            # per forward pass; rebuilding it for every layer repeated the
            # same (possibly expensive) construction L times per forward.
            cached = self._per_layer_fallback
            if cached is None or cached[0] != self._forward_pass:
                hdg = self.model.neighbor_selection(self.graph, self._rng)
                self._per_layer_fallback = (self._forward_pass, hdg)
                return hdg
            return cached[1]
        if scope is SelectionScope.PER_EPOCH and self._hdg_epoch != epoch:
            self.invalidate_hdgs()
            self._hdg_epoch = epoch
        if layer_index in self._layer_hdgs:
            return self._layer_hdgs[layer_index]
        own = layer.neighbor_selection(self.graph, self._rng)
        if own is not None:
            self._layer_hdgs[layer_index] = own
            return own
        if self._model_hdg is None:
            self._model_hdg = self.model.neighbor_selection(self.graph, self._rng)
            self._hdg_epoch = epoch
        return self._model_hdg

    def invalidate_hdgs(self) -> None:
        """Drop all cached HDGs (e.g. after the graph changed)."""
        self._model_hdg = None
        self._layer_hdgs.clear()
        self._hdg_epoch = -1
        self._per_layer_fallback = None

    # ------------------------------------------------------------------
    # Forward / training
    # ------------------------------------------------------------------
    def forward(self, feats: Tensor, epoch: int = 0) -> Tensor:
        """Run all layers, accumulating per-stage times in ``last_times``.

        Each stage runs under a ``stage.*`` obs span; ``last_times`` is
        the per-stage sum of those spans' durations.
        """
        times = StageTimes()
        self._forward_pass += 1
        h = feats
        for i, layer in enumerate(self.model.layers):
            with obs.span(STAGE_SPANS["neighbor_selection"],
                          layer=i, epoch=epoch) as s_sel:
                hdg = self.hdg_for_layer(i, epoch)
                # The selection stage's work is structural, not FLOPs: it
                # hands the HDG (offsets, leaves, schema) to aggregation.
                obs.record_op("neighbor_selection.hdg",
                              bytes_read=hdg.nbytes)
            with obs.span(STAGE_SPANS["aggregation"],
                          layer=i, epoch=epoch,
                          strategy=self.strategy.value) as s_agg:
                nbr = layer.aggregation(h, hdg, self.strategy)
            with obs.span(STAGE_SPANS["update"], layer=i, epoch=epoch) as s_upd:
                h = layer.update(h, nbr)
            times.neighbor_selection += s_sel.duration
            times.aggregation += s_agg.duration
            times.update += s_upd.duration
        self.last_times = times
        return h

    def train_epoch(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        mask: np.ndarray | None = None,
        epoch: int = 0,
    ) -> EpochStats:
        """One full-batch training epoch: forward, loss, backward, step."""
        self.model.train()
        mat = obs.counter(MATERIALIZED_BYTES_COUNTER)
        mat_mark = mat.current
        work_mark = obs.work_snapshot()
        plan_cache = get_plan_cache()
        plan_mark = (plan_cache.hits, plan_cache.misses)
        with obs.span("engine.train_epoch", epoch=epoch):
            logits = self.forward(feats, epoch)
            loss = cross_entropy(logits, labels, mask)
            with obs.span(STAGE_SPANS["backward"], epoch=epoch) as s_back:
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            self.last_times.backward = s_back.duration
        # Per-edge intermediates die with the tape after backward; release
        # them so the counter's peak tracks per-epoch concurrent bytes
        # while its total keeps accumulating across the run.
        mat.release(mat.current - mat_mark)
        train_acc = accuracy(logits, labels, mask)
        seconds = self.last_times.total
        work = obs.work_since(work_mark)
        obs.epoch_log().log(
            epoch,
            loss=loss.item(),
            seconds=seconds,
            train_accuracy=train_acc,
            vertices_per_sec=(
                self.graph.num_vertices / seconds if seconds > 0 else 0.0
            ),
            flops=work["flops"],
            work_bytes=work["bytes_read"] + work["bytes_written"],
            plan_hits=plan_cache.hits - plan_mark[0],
            plan_misses=plan_cache.misses - plan_mark[1],
        )
        return EpochStats(
            epoch=epoch,
            loss=loss.item(),
            times=self.last_times,
            train_accuracy=train_acc,
        )

    def fit(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        num_epochs: int,
        mask: np.ndarray | None = None,
        verbose: bool = False,
        scheduler=None,
        early_stopping=None,
        val_mask: np.ndarray | None = None,
    ) -> list[EpochStats]:
        """Train for up to ``num_epochs`` epochs and return per-epoch stats.

        ``scheduler`` (an ``repro.tensor.schedulers.LRScheduler``) steps
        once per epoch; ``early_stopping`` monitors validation accuracy
        when ``val_mask`` is given, else training loss.
        """
        history = []
        for epoch in range(num_epochs):
            if scheduler is not None:
                scheduler.step()
            stats = self.train_epoch(feats, labels, optimizer, mask, epoch)
            history.append(stats)
            if verbose:
                print(
                    f"epoch {epoch:3d}  loss={stats.loss:.4f}  "
                    f"acc={stats.train_accuracy:.3f}  time={stats.times.total:.3f}s"
                )
            if early_stopping is not None:
                if val_mask is not None:
                    monitored = self.evaluate(feats, labels, val_mask)
                else:
                    monitored = stats.loss
                if early_stopping.update(monitored):
                    if verbose:
                        print(f"early stop at epoch {epoch} "
                              f"(best epoch {early_stopping.best_epoch})")
                    break
        return history

    def _inference_forward(self, feats: Tensor) -> Tensor:
        """Full forward in eval mode with gradients off; restores the
        model's training flag afterwards (shared by :meth:`predict`,
        :meth:`embed` and :meth:`evaluate`)."""
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                return self.forward(feats)
        finally:
            self.model.train(was_training)

    def predict(self, feats: Tensor,
                vertices: np.ndarray | None = None) -> np.ndarray:
        """Argmax class predictions (no gradients).

        ``vertices`` restricts the returned predictions to a seed subset
        (the forward still covers the whole graph; seed-restricted
        *compute* lives in :mod:`repro.serve`).
        """
        logits = self._inference_forward(feats).numpy()
        if vertices is not None:
            logits = logits[np.asarray(vertices, dtype=np.int64)]
        return logits.argmax(axis=1)

    def embed(self, feats: Tensor,
              vertices: np.ndarray | None = None) -> np.ndarray:
        """Final-layer representations (no gradients) — the
        low-dimensional features §2.1's downstream tasks consume.
        ``vertices`` restricts the returned rows to a seed subset."""
        out = self._inference_forward(feats).numpy()
        if vertices is not None:
            return out[np.asarray(vertices, dtype=np.int64)].copy()
        return out.copy()

    def evaluate(self, feats: Tensor, labels: np.ndarray,
                 mask: np.ndarray | None = None) -> float:
        """Accuracy of the current model on ``mask`` (no gradients)."""
        return accuracy(self._inference_forward(feats), labels, mask)

    # ------------------------------------------------------------------
    # Fault tolerance (Figure 12's fault-tolerance module)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Snapshot model parameters for recovery."""
        return {"model_state": self.model.state_dict()}

    def restore(self, snapshot: dict) -> None:
        """Restore parameters from :meth:`checkpoint` output."""
        self.model.load_state_dict(snapshot["model_state"])
