"""Single-machine GNN execution engine (the core of Figure 12).

The engine owns HDG construction/caching, runs each layer's stages with
per-stage wall-clock accounting (the breakdown of Table 4), and drives the
training loop (forward, loss, backward, optimizer step).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.graph import Graph
from ..tensor.loss import accuracy, cross_entropy
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor, no_grad
from .hdg import HDG
from .hybrid import ExecutionStrategy
from .nau import NAUModel, SelectionScope

__all__ = ["StageTimes", "EpochStats", "FlexGraphEngine"]


@dataclass
class StageTimes:
    """Wall-clock seconds per NAU stage (Table 4's columns)."""

    neighbor_selection: float = 0.0
    aggregation: float = 0.0
    update: float = 0.0
    backward: float = 0.0

    @property
    def total(self) -> float:
        return self.neighbor_selection + self.aggregation + self.update + self.backward

    @property
    def forward_total(self) -> float:
        return self.neighbor_selection + self.aggregation + self.update

    def __iadd__(self, other: "StageTimes") -> "StageTimes":
        self.neighbor_selection += other.neighbor_selection
        self.aggregation += other.aggregation
        self.update += other.update
        self.backward += other.backward
        return self


@dataclass
class EpochStats:
    """Result of one training epoch."""

    epoch: int
    loss: float
    times: StageTimes = field(default_factory=StageTimes)
    train_accuracy: float | None = None


class FlexGraphEngine:
    """Translate a :class:`NAUModel` into an execution plan and run it.

    Parameters
    ----------
    model:
        The NAU program to execute.
    graph:
        Input graph.
    strategy:
        Aggregation execution strategy (Figure 14); default HA.
    seed:
        Seed for NeighborSelection randomness (PinSage's walks).
    """

    def __init__(self, model: NAUModel, graph: Graph,
                 strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
                 seed: int = 0):
        self.model = model
        self.graph = graph
        self.strategy = ExecutionStrategy.parse(strategy)
        self._rng = np.random.default_rng(seed)
        self._model_hdg: HDG | None = None
        self._layer_hdgs: dict[int, HDG] = {}
        self._hdg_epoch = -1
        self.last_times = StageTimes()

    # ------------------------------------------------------------------
    # HDG lifecycle (NAU's caching discussion, Section 3.2)
    # ------------------------------------------------------------------
    def hdg_for_layer(self, layer_index: int, epoch: int = 0) -> HDG:
        """HDG for a layer, honoring the model's selection scope."""
        layer = self.model.layers[layer_index]
        scope = self.model.selection_scope
        if scope is SelectionScope.PER_LAYER:
            own = layer.neighbor_selection(self.graph, self._rng)
            if own is not None:
                return own
            return self.model.neighbor_selection(self.graph, self._rng)
        if scope is SelectionScope.PER_EPOCH and self._hdg_epoch != epoch:
            self.invalidate_hdgs()
            self._hdg_epoch = epoch
        if layer_index in self._layer_hdgs:
            return self._layer_hdgs[layer_index]
        own = layer.neighbor_selection(self.graph, self._rng)
        if own is not None:
            self._layer_hdgs[layer_index] = own
            return own
        if self._model_hdg is None:
            self._model_hdg = self.model.neighbor_selection(self.graph, self._rng)
            self._hdg_epoch = epoch
        return self._model_hdg

    def invalidate_hdgs(self) -> None:
        """Drop all cached HDGs (e.g. after the graph changed)."""
        self._model_hdg = None
        self._layer_hdgs.clear()
        self._hdg_epoch = -1

    # ------------------------------------------------------------------
    # Forward / training
    # ------------------------------------------------------------------
    def forward(self, feats: Tensor, epoch: int = 0) -> Tensor:
        """Run all layers, accumulating per-stage times in ``last_times``."""
        times = StageTimes()
        h = feats
        for i, layer in enumerate(self.model.layers):
            t0 = time.perf_counter()
            hdg = self.hdg_for_layer(i, epoch)
            t1 = time.perf_counter()
            nbr = layer.aggregation(h, hdg, self.strategy)
            t2 = time.perf_counter()
            h = layer.update(h, nbr)
            t3 = time.perf_counter()
            times.neighbor_selection += t1 - t0
            times.aggregation += t2 - t1
            times.update += t3 - t2
        self.last_times = times
        return h

    def train_epoch(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        mask: np.ndarray | None = None,
        epoch: int = 0,
    ) -> EpochStats:
        """One full-batch training epoch: forward, loss, backward, step."""
        self.model.train()
        logits = self.forward(feats, epoch)
        loss = cross_entropy(logits, labels, mask)
        t0 = time.perf_counter()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        self.last_times.backward = time.perf_counter() - t0
        return EpochStats(
            epoch=epoch,
            loss=loss.item(),
            times=self.last_times,
            train_accuracy=accuracy(logits, labels, mask),
        )

    def fit(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        num_epochs: int,
        mask: np.ndarray | None = None,
        verbose: bool = False,
        scheduler=None,
        early_stopping=None,
        val_mask: np.ndarray | None = None,
    ) -> list[EpochStats]:
        """Train for up to ``num_epochs`` epochs and return per-epoch stats.

        ``scheduler`` (an ``repro.tensor.schedulers.LRScheduler``) steps
        once per epoch; ``early_stopping`` monitors validation accuracy
        when ``val_mask`` is given, else training loss.
        """
        history = []
        for epoch in range(num_epochs):
            if scheduler is not None:
                scheduler.step()
            stats = self.train_epoch(feats, labels, optimizer, mask, epoch)
            history.append(stats)
            if verbose:
                print(
                    f"epoch {epoch:3d}  loss={stats.loss:.4f}  "
                    f"acc={stats.train_accuracy:.3f}  time={stats.times.total:.3f}s"
                )
            if early_stopping is not None:
                if val_mask is not None:
                    monitored = self.evaluate(feats, labels, val_mask)
                else:
                    monitored = stats.loss
                if early_stopping.update(monitored):
                    if verbose:
                        print(f"early stop at epoch {epoch} "
                              f"(best epoch {early_stopping.best_epoch})")
                    break
        return history

    def predict(self, feats: Tensor) -> np.ndarray:
        """Argmax class predictions for every vertex (no gradients)."""
        self.model.eval()
        with no_grad():
            logits = self.forward(feats)
        self.model.train()
        return logits.numpy().argmax(axis=1)

    def embed(self, feats: Tensor) -> np.ndarray:
        """Final-layer representations for every vertex (no gradients) —
        the low-dimensional features §2.1's downstream tasks consume."""
        self.model.eval()
        with no_grad():
            out = self.forward(feats)
        self.model.train()
        return out.numpy().copy()

    def evaluate(self, feats: Tensor, labels: np.ndarray,
                 mask: np.ndarray | None = None) -> float:
        """Accuracy of the current model on ``mask`` (no gradients)."""
        self.model.eval()
        with no_grad():
            logits = self.forward(feats)
        self.model.train()
        return accuracy(logits, labels, mask)

    # ------------------------------------------------------------------
    # Fault tolerance (Figure 12's fault-tolerance module)
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Snapshot model parameters for recovery."""
        return {"model_state": self.model.state_dict()}

    def restore(self, snapshot: dict) -> None:
        """Restore parameters from :meth:`checkpoint` output."""
        self.model.load_state_dict(snapshot["model_state"])
