"""HDG invariant checking — debugging aid and property-test oracle.

:func:`validate_hdg` verifies every structural invariant the compact
storage of §4.1 relies on; :func:`hdg_summary` renders a human-readable
description.  Both are pure inspections (never mutate).
"""

from __future__ import annotations

import numpy as np

from .hdg import HDG

__all__ = ["validate_hdg", "hdg_summary", "HDGInvariantError"]


class HDGInvariantError(AssertionError):
    """An HDG structural invariant was violated."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise HDGInvariantError(message)


def validate_hdg(hdg: HDG) -> None:
    """Check all structural invariants; raises :class:`HDGInvariantError`.

    Invariants checked:

    * offsets are monotone and exactly cover their payload arrays;
    * every leaf id is a valid input-graph vertex;
    * weights (if present) align with leaf edges and are non-negative;
    * depth-3: the elided in-between Dst is consistent — instance ids are
      consecutive per slot, slots per root equal the schema leaf count;
    * root ids are unique.
    """
    _require(np.unique(hdg.roots).size == hdg.roots.size, "duplicate root ids")
    _require(
        bool(np.all(np.diff(hdg.leaf_offsets) >= 0)), "leaf_offsets not monotone"
    )
    _require(
        int(hdg.leaf_offsets[-1]) == hdg.leaf_vertices.size,
        "leaf_offsets do not cover leaf_vertices",
    )
    if hdg.leaf_vertices.size:
        _require(int(hdg.leaf_vertices.min()) >= 0, "negative leaf vertex id")
        _require(
            int(hdg.leaf_vertices.max()) < hdg.num_input_vertices,
            "leaf vertex id outside the input graph",
        )
    if hdg.leaf_weights is not None:
        _require(
            hdg.leaf_weights.size == hdg.leaf_vertices.size,
            "weights misaligned with leaf edges",
        )
        _require(bool(np.all(hdg.leaf_weights >= 0)), "negative leaf weight")
    if hdg.depth == 1:
        _require(
            hdg.leaf_offsets.size == hdg.num_roots + 1,
            "flat HDG: one offset range per root required",
        )
        return
    _require(
        hdg.instance_offsets.size == hdg.num_slots + 1,
        "instance_offsets do not match the slot count",
    )
    _require(
        bool(np.all(np.diff(hdg.instance_offsets) >= 0)),
        "instance_offsets not monotone",
    )
    _require(
        int(hdg.instance_offsets[-1]) == hdg.num_instances,
        "instance_offsets do not cover the instances",
    )
    # The elided Dst2: sub_graph(2) sources must be 0..num_instances-1 in
    # order (this is what makes omitting the array sound).
    _dst, src = hdg.sub_graph(2)
    _require(
        bool(np.array_equal(src, np.arange(hdg.num_instances))),
        "in-between sources are not consecutive (elided Dst unsound)",
    )
    # Instance bookkeeping consistency.
    _require(
        hdg.instance_types().size == hdg.num_instances,
        "instance types misaligned",
    )
    _require(
        int(hdg.instance_roots().max(initial=-1)) < hdg.num_roots,
        "instance root order out of range",
    )


def hdg_summary(hdg: HDG) -> str:
    """Multi-line human-readable description of an HDG."""
    lines = [
        f"HDG depth={hdg.depth} roots={hdg.num_roots} "
        f"instances={hdg.num_instances} leaf_edges={hdg.leaf_vertices.size}",
        f"schema: {hdg.schema.leaf_types}",
        f"storage: {hdg.nbytes / 1e3:.1f} KB "
        f"(naive {hdg.nbytes_unoptimized / 1e3:.1f} KB)",
    ]
    counts = hdg.leaf_counts()
    if counts.size:
        lines.append(
            f"leaf fan-in: min={int(counts.min())} "
            f"mean={counts.mean():.1f} max={int(counts.max())}"
        )
    if hdg.depth == 3:
        per_type = hdg.instance_counts_per_type().sum(axis=0)
        pairs = ", ".join(
            f"{name}={int(count)}"
            for name, count in zip(hdg.schema.leaf_types, per_type)
        )
        lines.append(f"instances per type: {pairs}")
    if hdg.leaf_weights is not None:
        lines.append("weighted: yes (per-edge importance)")
    return "\n".join(lines)
