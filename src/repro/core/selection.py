"""NeighborSelection executors: the UDFs of Figure 5, run in bulk.

Each function here plays the role of one of the paper's ``nbr_udf``
examples — it consults the input graph through the graph engine and emits
:class:`~repro.core.schema.NeighborRecord` rows, which
:func:`~repro.core.hdg.build_hdg` then compacts into the HDG layout.

* :func:`select_direct_neighbors` — GCN's ``nbr(v.neighbors)``;
* :func:`select_pinsage_neighbors` — random walks + top-k visit counts;
* :func:`select_metapath_neighbors` — MAGNN's metapath-instance matching;
* :func:`select_anchor_set_neighbors` — P-GNN's anchor sets;
* :func:`select_distance_ring_neighbors` — JK-Net's shortest-path rings.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from ..graph.metapath import Metapath, find_metapath_instances
from ..graph.random_walk import top_k_visited
from ..graph.traversal import bfs_levels
from .schema import NeighborRecord, SchemaTree

__all__ = [
    "select_direct_neighbors",
    "select_pinsage_neighbors",
    "select_metapath_neighbors",
    "select_anchor_set_neighbors",
    "select_distance_ring_neighbors",
]


def select_direct_neighbors(graph: Graph, roots: np.ndarray | None = None) -> list[NeighborRecord]:
    """Flat 1-hop neighborhoods (DNFA): one record per in-edge.

    Uses in-neighbors, matching Equation (1)'s feature flow from sources
    into each target vertex.
    """
    if roots is None:
        roots = np.arange(graph.num_vertices, dtype=np.int64)
    records = []
    for v in np.asarray(roots, dtype=np.int64):
        for u in graph.in_neighbors(int(v)):
            records.append(NeighborRecord(int(v), (int(u),), 0))
    return records


def select_pinsage_neighbors(
    graph: Graph,
    roots: np.ndarray | None = None,
    num_traces: int = 10,
    n_hops: int = 3,
    top_k: int = 10,
    rng: np.random.Generator | None = None,
) -> list[NeighborRecord]:
    """Importance-based neighborhoods (INFA, Figure 5's ``pinsage_nbr``).

    Starts ``num_traces`` random walks of ``n_hops`` hops from each root
    and keeps the ``top_k`` most-visited vertices, weighting each by its
    normalized visit frequency.
    """
    if roots is None:
        roots = np.arange(graph.num_vertices, dtype=np.int64)
    rng = rng or np.random.default_rng(0)
    r, n, w = top_k_visited(graph, np.asarray(roots, dtype=np.int64), num_traces, n_hops, top_k, rng)
    return [
        NeighborRecord(int(root), (int(nbr),), 0, weight=float(weight))
        for root, nbr, weight in zip(r, n, w)
    ]


def select_metapath_neighbors(
    graph: Graph,
    metapaths: list[Metapath],
    roots: np.ndarray | None = None,
    max_instances_per_root: int | None = None,
) -> list[NeighborRecord]:
    """Metapath-instance neighborhoods (INHA, Figure 5's ``magnn_nbr``).

    Each matched instance becomes one hierarchical record whose leaves are
    the instance's member vertices and whose type is the metapath index.
    """
    instances = find_metapath_instances(graph, metapaths, roots, max_instances_per_root)
    return [
        NeighborRecord(inst.root, inst.vertices, inst.metapath_index)
        for inst in instances
    ]


def select_anchor_set_neighbors(
    graph: Graph,
    num_anchor_sets: int,
    anchor_set_size: int,
    roots: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> list[NeighborRecord]:
    """P-GNN anchor sets: ``num_anchor_sets`` random vertex sets shared by
    all roots; each root's i-th neighbor is the i-th anchor set.

    The schema tree has a single ``anchor_set`` leaf and each root has
    ``num_anchor_sets`` instances under it (the paper's three-level HDG
    for P-GNN, Section 3.2).
    """
    if roots is None:
        roots = np.arange(graph.num_vertices, dtype=np.int64)
    rng = rng or np.random.default_rng(0)
    if num_anchor_sets <= 0 or anchor_set_size <= 0:
        raise ValueError("anchor-set count and size must be positive")
    sets = [
        tuple(int(v) for v in rng.choice(graph.num_vertices, size=min(anchor_set_size, graph.num_vertices), replace=False))
        for _ in range(num_anchor_sets)
    ]
    records = []
    for v in np.asarray(roots, dtype=np.int64):
        for anchor_set in sets:
            records.append(NeighborRecord(int(v), anchor_set, 0))
    return records


def select_distance_ring_neighbors(
    graph: Graph,
    max_distance: int,
    roots: np.ndarray | None = None,
) -> list[NeighborRecord]:
    """JK-Net rings: the i-th neighbor of ``v`` is the set of vertices at
    shortest-path distance exactly ``i`` (1 <= i <= max_distance).

    The schema tree has one leaf per distance (``ring_1..ring_k``) and
    exactly one instance per (root, ring) when the ring is non-empty.
    """
    if max_distance <= 0:
        raise ValueError("max_distance must be positive")
    if roots is None:
        roots = np.arange(graph.num_vertices, dtype=np.int64)
    records = []
    for v in np.asarray(roots, dtype=np.int64):
        levels = bfs_levels(graph, int(v), "both")
        for d in range(1, max_distance + 1):
            ring = np.flatnonzero(levels == d)
            if ring.size:
                records.append(NeighborRecord(int(v), tuple(int(u) for u in ring), d - 1))
    return records


def build_metapath_hdg(
    graph: Graph,
    metapaths: list[Metapath],
    max_instances_per_root: int | None = None,
):
    """Bulk NeighborSelection for MAGNN: match instances and compact them
    straight into a depth-3 HDG.

    Uses the vectorized length-3 edge-join matcher when every metapath has
    3 vertices (the evaluation setup), falling back to the DFS matcher +
    record path otherwise.  Both produce identical HDGs.
    """
    from ..graph.metapath import match_length3_metapath
    from .hdg import build_hdg, hdg_from_instance_arrays

    roots = np.arange(graph.num_vertices, dtype=np.int64)
    schema = schema_for_metapaths(metapaths)
    if all(mp.length == 3 for mp in metapaths):
        blocks = []
        type_blocks = []
        for mp_idx, mp in enumerate(metapaths):
            inst = match_length3_metapath(graph, mp, max_instances_per_root)
            if inst.size:
                blocks.append(inst)
                type_blocks.append(np.full(inst.shape[0], mp_idx, dtype=np.int64))
        if not blocks:
            empty = np.empty(0, dtype=np.int64)
            return hdg_from_instance_arrays(
                schema, roots, empty, empty, empty, empty, graph.num_vertices
            )
        instances = np.concatenate(blocks, axis=0)
        types = np.concatenate(type_blocks)
        return hdg_from_instance_arrays(
            schema,
            roots,
            instances[:, 0],
            types,
            instances.reshape(-1),
            np.full(instances.shape[0], 3, dtype=np.int64),
            graph.num_vertices,
        )
    records = select_metapath_neighbors(
        graph, metapaths, max_instances_per_root=max_instances_per_root
    )
    return build_hdg(records, schema, roots, graph.num_vertices, flat=False)


def schema_for_metapaths(metapaths: list[Metapath]) -> SchemaTree:
    """Schema tree whose leaves are the metapath types."""
    return SchemaTree(tuple(mp.name or f"mp{i}" for i, mp in enumerate(metapaths)))


def schema_for_rings(max_distance: int) -> SchemaTree:
    """Schema tree with one ``ring_i`` leaf per distance."""
    return SchemaTree(tuple(f"ring_{i}" for i in range(1, max_distance + 1)))


__all__ += ["schema_for_metapaths", "schema_for_rings", "build_metapath_hdg"]
