"""Schema trees and neighbor records — the inputs to HDG construction.

A *schema tree* (Section 3.1) encodes the hierarchy of neighbor **types**
a GNN model defines: the root stands for the target vertex and each leaf
is one neighbor type (e.g. MAGNN's metapath types MP1/MP2).  Every root
vertex shares one global schema tree, which is why FlexGraph stores it
once (Section 4.1, "Subgraphs for schema trees").

A :class:`NeighborRecord` is the formatted record FlexGraph's
NeighborSelection stage emits: ``(root, nei = [leaf_0..leaf_n],
nei_type)`` — one record per neighbor instance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SchemaTree", "NeighborRecord"]


@dataclass(frozen=True)
class SchemaTree:
    """Root plus an ordered tuple of leaf neighbor types.

    All GNN models in the paper use depth-1 schema trees (root -> leaf
    types); flat models (GCN, PinSage) degenerate to a single ``vertex``
    leaf, which the paper writes as ``T = v``.
    """

    leaf_types: tuple[str, ...] = ("vertex",)
    name: str = "root"

    def __post_init__(self):
        if not self.leaf_types:
            raise ValueError("schema tree needs at least one leaf type")
        if len(set(self.leaf_types)) != len(self.leaf_types):
            raise ValueError("leaf type names must be unique")
        object.__setattr__(self, "leaf_types", tuple(self.leaf_types))

    @property
    def num_leaves(self) -> int:
        return len(self.leaf_types)

    @property
    def is_trivial(self) -> bool:
        """True when the tree is ``T = v`` (single neighbor type)."""
        return self.num_leaves == 1

    def leaf_index(self, type_name: str) -> int:
        """Index of a leaf type by name."""
        try:
            return self.leaf_types.index(type_name)
        except ValueError:
            raise KeyError(f"unknown neighbor type {type_name!r}; have {self.leaf_types}") from None

    @property
    def nbytes(self) -> int:
        """Storage for the single global tree: one int per node."""
        return 8 * (1 + self.num_leaves)


@dataclass
class NeighborRecord:
    """One "neighbor" of ``root``: its member vertices and its type.

    ``weight`` optionally carries a per-neighbor importance (PinSage's
    normalized visit frequency).
    """

    root: int
    leaves: tuple[int, ...]
    nei_type: int = 0
    weight: float | None = None

    def __post_init__(self):
        self.leaves = tuple(int(v) for v in self.leaves)
        if not self.leaves:
            raise ValueError("a neighbor record must reference at least one leaf vertex")
        if self.nei_type < 0:
            raise ValueError("nei_type must be non-negative")
