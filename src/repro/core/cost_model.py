"""Learned polynomial cost function for GNN training workload (Section 5).

FlexGraph estimates the per-root-vertex training cost with a polynomial
``f`` over two families of metric variables (following Fan et al.'s
application-driven partitioning):

* ``n_1..n_k`` — the number of neighbor instances of each type;
* ``m_1..m_k`` — the size of each type's instances (member vertices times
  feature dimension).

The paper's MAGNN example is ``f = n1*m1 + n2*m2``.  :class:`CostModel`
fits the coefficients of ``[1, n_t, m_t, n_t*m_t]`` by least squares from
sampled running logs (per-root observed costs) and predicts per-root
costs; partition cost is the sum over its roots.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from .hdg import HDG

__all__ = ["CostModel", "metrics_from_hdg",
           "R_SQUARED_GAUGE", "RESIDUAL_HISTOGRAM",
           "DRIFT_GAUGE", "DRIFT_EVENT"]

#: calibration metrics every fit() publishes, so cost-model drift across
#: epochs is visible in traces without extra plumbing.
R_SQUARED_GAUGE = "adb.cost_model.r_squared"
RESIDUAL_HISTOGRAM = "adb.cost_model.residual"
#: relative prediction error of the *previous* fit against fresh
#: observations (published by drift_check; the feedback loop that makes
#: a stale cost model visible instead of silently misbalancing).
DRIFT_GAUGE = "adb.cost_model.drift"
DRIFT_EVENT = "adb.cost_model.drift_flagged"


def metrics_from_hdg(hdg: HDG, feat_dim: int) -> np.ndarray:
    """Per-root metric matrix ``[n_1..n_k, m_1..m_k]``.

    ``n_t`` counts type-``t`` neighbor instances of the root; ``m_t`` is
    the average member-vertex count of those instances times ``feat_dim``
    (the paper's "size of each type of neighbor instance": a 3-vertex
    metapath instance with dim-20 features has m = 60).
    """
    n = hdg.instance_counts_per_type().astype(np.float64)  # (roots, k)
    num_types = n.shape[1]
    leaf_counts = hdg.leaf_counts().astype(np.float64)
    m = np.zeros_like(n)
    if hdg.depth == 1:
        # Flat: every instance is a single vertex, so m_t = feat_dim.
        m[:] = feat_dim
    else:
        inst_root = hdg.instance_roots()
        inst_type = hdg.instance_types()
        sums = np.zeros((hdg.num_roots, num_types))
        np.add.at(sums, (inst_root, inst_type), leaf_counts)
        with np.errstate(invalid="ignore"):
            m = np.where(n > 0, sums / np.maximum(n, 1.0), 0.0) * feat_dim
    return np.concatenate([n, m], axis=1)


class CostModel:
    """Polynomial regression over per-root workload metrics.

    The feature expansion of a metric row ``[n_1..n_k, m_1..m_k]`` is
    ``[1, n_1..n_k, m_1..m_k, n_1*m_1..n_k*m_k]`` — degree-2 cross terms
    only between matching types, which contains the paper's example
    ``f = n1*m1 + n2*m2`` exactly.
    """

    def __init__(self):
        self.coef_: np.ndarray | None = None

    @staticmethod
    def _expand(metrics: np.ndarray) -> np.ndarray:
        metrics = np.asarray(metrics, dtype=np.float64)
        if metrics.ndim != 2 or metrics.shape[1] % 2 != 0:
            raise ValueError("metrics must be (roots, 2k): n_t columns then m_t columns")
        k = metrics.shape[1] // 2
        n, m = metrics[:, :k], metrics[:, k:]
        ones = np.ones((metrics.shape[0], 1))
        return np.concatenate([ones, n, m, n * m], axis=1)

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    def fit(self, metrics: np.ndarray, observed_costs: np.ndarray) -> "CostModel":
        """Least-squares fit of the polynomial to sampled running logs.

        Each fit publishes calibration metrics: the in-sample R² as the
        ``adb.cost_model.r_squared`` gauge (its history across epochs
        shows drift) and the absolute residuals into the
        ``adb.cost_model.residual`` histogram (its tail shows which
        roots the polynomial cannot explain).
        """
        x = self._expand(metrics)
        y = np.asarray(observed_costs, dtype=np.float64)
        if y.shape != (x.shape[0],):
            raise ValueError(f"observed costs must be ({x.shape[0]},), got {y.shape}")
        self.coef_, *_ = np.linalg.lstsq(x, y, rcond=None)
        pred = np.maximum(x @ self.coef_, 0.0)
        obs.gauge(R_SQUARED_GAUGE).set(_r_squared(y, pred))
        obs.histogram(RESIDUAL_HISTOGRAM).observe_many(np.abs(y - pred))
        return self

    def predict(self, metrics: np.ndarray) -> np.ndarray:
        """Per-root predicted costs, clipped at zero (costs are not negative)."""
        if not self.is_fitted:
            raise RuntimeError("cost model is not fitted; call fit() first")
        return np.maximum(self._expand(metrics) @ self.coef_, 0.0)

    def r_squared(self, metrics: np.ndarray, observed_costs: np.ndarray) -> float:
        """Coefficient of determination on held-out observations."""
        y = np.asarray(observed_costs, dtype=np.float64)
        return _r_squared(y, self.predict(metrics))

    def calibration(self, metrics: np.ndarray,
                    observed_costs: np.ndarray) -> dict:
        """R² plus residual quartiles on one batch of observations."""
        y = np.asarray(observed_costs, dtype=np.float64)
        residuals = np.abs(y - self.predict(metrics))
        return {
            "r_squared": _r_squared(y, self.predict(metrics)),
            "residual_p50": float(np.percentile(residuals, 50)),
            "residual_p90": float(np.percentile(residuals, 90)),
            "residual_max": float(residuals.max()) if residuals.size else 0.0,
            "n": int(y.size),
        }

    def drift_check(self, metrics: np.ndarray, observed_costs: np.ndarray,
                    threshold: float = 0.5) -> dict:
        """Predicted-vs-actual feedback loop: how far has the workload
        moved from what this model was fitted on?

        Drift is the relative mean absolute error of the current fit's
        predictions against freshly observed costs::

            drift = mean(|predict(metrics) - observed|) / mean(|observed|)

        A model still describing the workload scores near 0; a model fit
        on a structurally different workload (different schema, skew, or
        degree distribution) scores high.  The value is published as the
        ``adb.cost_model.drift`` gauge every call; when it exceeds
        ``threshold`` the check is *flagged* and an
        ``adb.cost_model.drift_flagged`` event is emitted.

        Returns ``{"drift", "threshold", "flagged", "r_squared", "n"}``.
        """
        if threshold <= 0:
            raise ValueError("drift threshold must be positive")
        y = np.asarray(observed_costs, dtype=np.float64)
        pred = self.predict(metrics)
        scale = max(float(np.abs(y).mean()), 1e-12)
        drift = float(np.abs(pred - y).mean()) / scale
        flagged = drift > threshold
        obs.gauge(DRIFT_GAUGE).set(drift)
        if flagged:
            obs.event(DRIFT_EVENT, drift=drift, threshold=float(threshold),
                      n=int(y.size))
        return {
            "drift": drift,
            "threshold": float(threshold),
            "flagged": flagged,
            "r_squared": _r_squared(y, pred),
            "n": int(y.size),
        }

    @staticmethod
    def default_costs(metrics: np.ndarray) -> np.ndarray:
        """The analytical fallback ``f = sum_t n_t * m_t`` used before any
        logs are sampled (the paper's hand-derived MAGNN cost)."""
        metrics = np.asarray(metrics, dtype=np.float64)
        k = metrics.shape[1] // 2
        return (metrics[:, :k] * metrics[:, k:]).sum(axis=1)


def _r_squared(y: np.ndarray, pred: np.ndarray) -> float:
    """Coefficient of determination, with a tolerance for constant ``y``."""
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        tolerance = 1e-10 * max(1.0, float((y**2).sum()))
        return 1.0 if ss_res <= tolerance else 0.0
    return 1.0 - ss_res / ss_tot
