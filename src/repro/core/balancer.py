"""ADB — application-driven workload balancing (Sections 5 and 6).

Conventional partitioners balance static metrics (vertex/edge counts),
but GNN training cost per vertex depends on the model's neighborhood
definition, so a statically balanced partition can be badly skewed
(the Figure 11 example: 60 vs 600).  ADB:

1. estimates each partition's workload with the learned
   :class:`~repro.core.cost_model.CostModel` (or the analytical default);
2. when the balance factor exceeds a threshold, generates a pre-defined
   number of *balancing plans* — each grown by a BFS over the HDG-induced
   dependency graph from a random seed inside the most overloaded
   partition, greedily keeping vertices within a cost budget; the
   excluded vertices become migration candidates;
3. picks the plan that cuts the fewest induced-graph edges (bounding the
   synchronization traffic migration would add) and applies it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .. import obs
from .cost_model import CostModel
from .hdg import HDG

__all__ = ["BalancePlan", "ADBBalancer", "induced_dependency_edges",
           "REBALANCE_EVENT"]

#: event emitted by every rebalance() call: balance factor before/after,
#: plans generated/rejected, and the chosen plan's cut/migration size.
REBALANCE_EVENT = "adb.rebalance"


def induced_dependency_edges(hdg: HDG) -> tuple[np.ndarray, np.ndarray]:
    """The induced graph of the HDGs (Figure 11b): one edge per
    (root, dependency-leaf) pair, deduplicated.

    Only roots and leaves can be replicated across partitions, so these
    edges are exactly the potential synchronization channels.
    """
    if hdg.depth == 1:
        counts = np.diff(hdg.leaf_offsets)
        roots = np.repeat(hdg.roots, counts)
        leaves = hdg.leaf_vertices
    else:
        inst_root = hdg.instance_roots()
        counts = np.diff(hdg.leaf_offsets)
        roots = hdg.roots[np.repeat(inst_root, counts)]
        leaves = hdg.leaf_vertices
    keep = roots != leaves
    pairs = np.unique(np.stack([roots[keep], leaves[keep]], axis=1), axis=0)
    if pairs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return pairs[:, 0], pairs[:, 1]


@dataclass
class BalancePlan:
    """One candidate migration: which vertices move where, and its quality."""

    labels: np.ndarray        # full new assignment
    moved: np.ndarray         # vertex ids that migrate
    source_partition: int
    target_partition: int
    cut_edges: int            # induced-graph cut after applying the plan
    balance_factor: float


class ADBBalancer:
    """Online application-driven workload balancer.

    Parameters
    ----------
    num_plans:
        How many balancing plans to generate before choosing (the
        implementation in the paper generates 5).
    threshold:
        Balance factor (max/mean partition cost) above which rebalancing
        triggers.
    seed:
        Seed for plan-seed sampling.
    """

    def __init__(self, num_plans: int = 5, threshold: float = 1.1, seed: int = 0):
        if num_plans <= 0:
            raise ValueError("num_plans must be positive")
        if threshold < 1.0:
            raise ValueError("threshold below 1.0 can never be satisfied")
        self.num_plans = num_plans
        self.threshold = threshold
        self._rng = np.random.default_rng(seed)
        self.cost_model = CostModel()
        #: result of the drift check run on the most recent observe()
        #: (None until the model has been fitted at least once before)
        self.last_drift: dict | None = None

    # ------------------------------------------------------------------
    def observe(self, metrics: np.ndarray, observed_costs: np.ndarray,
                drift_threshold: float = 0.5) -> None:
        """Feed sampled running logs; fits the polynomial cost function.

        Before refitting, an already-fitted model is drift-checked
        against the fresh observations (predicted-vs-actual feedback):
        the relative error lands in the ``adb.cost_model.drift`` gauge
        and, past ``drift_threshold``, an ``adb.cost_model.drift_flagged``
        event — so a workload shift is visible *before* the refit hides
        it.  The result is kept in :attr:`last_drift`.
        """
        if self.cost_model.is_fitted:
            self.last_drift = self.cost_model.drift_check(
                metrics, observed_costs, threshold=drift_threshold
            )
        self.cost_model.fit(metrics, observed_costs)

    def per_root_costs(self, metrics: np.ndarray) -> np.ndarray:
        """Predicted per-root costs (learned model, else analytical default)."""
        if self.cost_model.is_fitted:
            return self.cost_model.predict(metrics)
        return CostModel.default_costs(metrics)

    # ------------------------------------------------------------------
    def rebalance(
        self,
        hdg: HDG,
        labels: np.ndarray,
        k: int,
        metrics: np.ndarray,
    ) -> tuple[np.ndarray, BalancePlan | None]:
        """Return a (possibly) improved assignment and the chosen plan.

        ``labels`` assigns every input-graph vertex to one of ``k``
        partitions; only root vertices carry workload, but leaves count
        for the induced-graph cut.
        """
        labels = np.asarray(labels, dtype=np.int64).copy()
        costs = np.zeros(hdg.num_input_vertices)
        costs[hdg.roots] = self.per_root_costs(metrics)
        part_costs = np.zeros(k)
        np.add.at(part_costs, labels, costs)
        balance = _balance_factor(part_costs)
        obs.gauge("adb.balance_factor").set(balance)
        if balance <= self.threshold:
            self._emit_rebalance(balance, balance, 0, 0, None)
            return labels, None

        src_roots, dst_leaves = induced_dependency_edges(hdg)
        adjacency = _build_adjacency(src_roots, dst_leaves)

        best: BalancePlan | None = None
        generated = 0
        for _ in range(self.num_plans):
            plan = self._generate_plan(
                hdg, labels, k, costs, part_costs, adjacency, src_roots, dst_leaves
            )
            if plan is None:
                continue
            generated += 1
            if best is None or (plan.cut_edges, plan.balance_factor) < (
                best.cut_edges,
                best.balance_factor,
            ):
                best = plan
        if best is None or best.balance_factor >= balance:
            self._emit_rebalance(balance, balance, generated, generated, None)
            return labels, None
        self._emit_rebalance(
            balance, best.balance_factor, generated, generated - 1, best
        )
        obs.gauge("adb.balance_factor").set(best.balance_factor)
        return best.labels, best

    def _emit_rebalance(
        self,
        balance_before: float,
        balance_after: float,
        generated: int,
        rejected: int,
        plan: BalancePlan | None,
    ) -> None:
        attrs = {
            "balance_before": balance_before,
            "balance_after": balance_after,
            "plans_generated": generated,
            "plans_rejected": rejected,
            "triggered": plan is not None,
        }
        if plan is not None:
            attrs.update(
                cut_edges=plan.cut_edges,
                moved_vertices=int(plan.moved.size),
                source_partition=plan.source_partition,
                target_partition=plan.target_partition,
            )
            obs.gauge("adb.moved_vertices").set(plan.moved.size)
            obs.gauge("adb.cut_edges").set(plan.cut_edges)
        obs.event(REBALANCE_EVENT, **attrs)

    # ------------------------------------------------------------------
    def _generate_plan(
        self,
        hdg: HDG,
        labels: np.ndarray,
        k: int,
        costs: np.ndarray,
        part_costs: np.ndarray,
        adjacency: dict[int, np.ndarray],
        src_roots: np.ndarray,
        dst_leaves: np.ndarray,
    ) -> BalancePlan | None:
        overloaded = int(np.argmax(part_costs))
        underloaded = int(np.argmin(part_costs))
        if overloaded == underloaded:
            return None
        members = np.flatnonzero(labels == overloaded)
        member_set = set(members.tolist())
        if not member_set:
            return None
        budget = float(part_costs.mean())
        seed = int(self._rng.choice(members))

        # BFS over the induced graph restricted to the overloaded
        # partition; greedily *keep* vertices while within budget.
        kept: set[int] = set()
        kept_cost = 0.0
        visited: set[int] = set()
        queue: deque[int] = deque([seed])
        visited.add(seed)
        while queue:
            v = queue.popleft()
            if kept_cost + costs[v] <= budget:
                kept.add(v)
                kept_cost += costs[v]
            for u in adjacency.get(v, ()):  # type: ignore[arg-type]
                u = int(u)
                if u in member_set and u not in visited:
                    visited.add(u)
                    queue.append(u)
        # Vertices of the partition never reached by BFS also stay unless
        # they are cheaper to move; the paper treats BFS-excluded vertices
        # as candidates, so unreached ones are candidates too.
        candidates = np.array(sorted(member_set - kept), dtype=np.int64)
        if candidates.size == 0:
            return None
        # Cap the migration so the target partition does not overshoot:
        # keep only the longest prefix whose *cumulative* cost fits the
        # headroom (searchsorted side="right" counts prefixes <= headroom;
        # the previous +1 off-by-one admitted the first candidate that
        # exceeded it).
        move_cost = costs[candidates].sum()
        headroom = budget - part_costs[underloaded]
        if move_cost > headroom > 0:
            order = self._rng.permutation(candidates.size)
            running = np.cumsum(costs[candidates[order]])
            fits = int(np.searchsorted(running, headroom, side="right"))
            if fits == 0:
                return None
            candidates = candidates[np.sort(order[:fits])]

        new_labels = labels.copy()
        new_labels[candidates] = underloaded
        cut = int(np.count_nonzero(new_labels[src_roots] != new_labels[dst_leaves]))
        new_part_costs = part_costs.copy()
        moved_cost = costs[candidates].sum()
        new_part_costs[overloaded] -= moved_cost
        new_part_costs[underloaded] += moved_cost
        return BalancePlan(
            labels=new_labels,
            moved=candidates,
            source_partition=overloaded,
            target_partition=underloaded,
            cut_edges=cut,
            balance_factor=_balance_factor(new_part_costs),
        )


def _balance_factor(part_costs: np.ndarray) -> float:
    mean = part_costs.mean()
    if mean <= 0:
        return 1.0
    return float(part_costs.max() / mean)


def _build_adjacency(src: np.ndarray, dst: np.ndarray) -> dict[int, np.ndarray]:
    """Undirected adjacency dict of the induced graph."""
    if src.size == 0:
        return {}
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.argsort(all_src, kind="stable")
    all_src, all_dst = all_src[order], all_dst[order]
    adjacency: dict[int, np.ndarray] = {}
    uniq, starts = np.unique(all_src, return_index=True)
    bounds = np.append(starts, all_src.size)
    for i, v in enumerate(uniq):
        adjacency[int(v)] = all_dst[bounds[i] : bounds[i + 1]]
    return adjacency
