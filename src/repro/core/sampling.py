"""Sampled mini-batch training over HDGs — the FlexGraph-native answer
to Euler/DistDGL-style training.

The paper trains full-batch and shows that mini-batch systems collapse
on GCN because they expand *full* k-hop neighborhoods per batch (§7.1).
The fix those systems actually deploy — and a natural FlexGraph
extension, since HDGs make neighborhoods first-class — is *fan-out
sampling*: cap each root's neighborhood at a fixed budget per layer
(GraphSAGE-style).  Because flat HDGs already group each root's
neighbors contiguously, sampling is a per-segment top-``fanout``
selection, and the per-layer blocks are just root-restricted sub-HDGs.

:class:`MiniBatchTrainer` supports any model whose HDGs are flat (DNFA
and INFA); hierarchical models bound work through
``max_instances_per_root`` at selection time instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..graph.graph import Graph
from ..tensor.loss import accuracy, cross_entropy
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor
from .hdg import HDG
from .hybrid import ExecutionStrategy
from .nau import NAUModel, SelectionScope

__all__ = [
    "sample_fanout",
    "build_block",
    "build_seed_blocks",
    "MiniBatchTrainer",
    "MiniBatchEpochStats",
]


def sample_fanout(hdg: HDG, fanout: int, rng: np.random.Generator) -> HDG:
    """Uniformly keep at most ``fanout`` leaves per root of a flat HDG.

    Per-edge random keys are ranked within each root's contiguous
    segment — fully vectorized.  PinSage-style importance weights are
    renormalized over the kept edges so the weighted sum stays a proper
    average.
    """
    if hdg.depth != 1:
        raise ValueError(
            "fan-out sampling applies to flat HDGs; bound hierarchical "
            "models with max_instances_per_root at selection time"
        )
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    counts = np.diff(hdg.leaf_offsets)
    if counts.size == 0 or counts.max() <= fanout:
        return hdg
    num_edges = hdg.leaf_vertices.size
    owner = np.repeat(np.arange(hdg.num_roots, dtype=np.int64), counts)
    keys = rng.random(num_edges)
    order = np.lexsort((keys, owner))
    group_start = np.zeros(num_edges, dtype=np.int64)
    change = np.flatnonzero(np.diff(owner[order], prepend=owner[order[0]] - 1))
    group_start[change] = change
    group_start = np.maximum.accumulate(group_start)
    rank = np.arange(num_edges) - group_start
    keep = np.sort(order[rank < fanout])

    new_counts = np.minimum(counts, fanout)
    new_offsets = np.zeros(hdg.num_roots + 1, dtype=np.int64)
    np.cumsum(new_counts, out=new_offsets[1:])
    weights = None
    if hdg.leaf_weights is not None:
        kept_owner = owner[keep]
        raw = hdg.leaf_weights[keep]
        sums = np.bincount(kept_owner, weights=raw, minlength=hdg.num_roots)
        weights = raw / np.maximum(sums[kept_owner], 1e-12)
    return HDG(
        hdg.roots, hdg.schema, hdg.leaf_vertices[keep], new_offsets,
        instance_offsets=None, leaf_weights=weights,
        num_input_vertices=hdg.num_input_vertices,
    )


def build_block(hdg: HDG, vertices: np.ndarray, fanout: int | None = None,
                rng: np.random.Generator | None = None) -> HDG:
    """One layer's seed-restricted block: the sub-HDG rooted at
    ``vertices``, optionally fan-out sampled.

    Requires an HDG whose roots cover all input vertices in id order
    (so vertex ids double as root orders) — the layout every model-level
    NeighborSelection in this repo produces.  ``fanout=None`` keeps the
    full neighborhoods (exact inference); a positive ``fanout`` applies
    :func:`sample_fanout` (flat HDGs only) and needs ``rng``.
    """
    block = hdg.restrict_to_roots(np.asarray(vertices, dtype=np.int64))
    if fanout is not None:
        if rng is None:
            raise ValueError("fan-out sampling needs an rng")
        block = sample_fanout(block, fanout, rng)
    return block


def build_seed_blocks(
    hdg: HDG,
    seeds: np.ndarray,
    fanouts: list[int | None],
    rng: np.random.Generator | None = None,
) -> list[tuple[HDG, np.ndarray]]:
    """Per-layer ``(block HDG, output vertices)``, input layer first.

    Built top-down: the last layer needs the seeds; each earlier layer
    needs everything the next layer's block references.  Shared by
    :class:`MiniBatchTrainer` (sampled training) and
    :class:`repro.serve.InferenceSession` (exact or sampled serving);
    ``fanouts`` entries may be ``None`` for exact full-neighborhood
    blocks.
    """
    need = np.unique(np.asarray(seeds, dtype=np.int64))
    reversed_blocks: list[tuple[HDG, np.ndarray]] = []
    for fanout in reversed(list(fanouts)):
        block = build_block(hdg, need, fanout, rng)
        reversed_blocks.append((block, need))
        need = np.unique(np.concatenate([need, block.leaf_vertices]))
    return list(reversed(reversed_blocks))


@dataclass
class MiniBatchEpochStats:
    """Outcome of one sampled mini-batch epoch.

    The stage fields break the epoch down by pipeline stage: *sample*,
    *gather* and *transfer* are production work (overlappable with
    training when ``prefetch_depth > 0``), *train* is the sequential
    forward/backward/step, and *wait* is how long the training loop sat
    idle waiting for the next batch.  ``overlap_efficiency`` is
    ``1 - wait / (sample + gather + transfer)`` clamped to [0, 1]: 0
    means production was fully exposed (the synchronous baseline), 1
    means it hid entirely behind training.
    """

    epoch: int
    loss: float                # mean over batches
    seconds: float
    num_batches: int
    train_accuracy: float | None = None
    sample_seconds: float = 0.0
    gather_seconds: float = 0.0
    transfer_seconds: float = 0.0
    train_seconds: float = 0.0
    wait_seconds: float = 0.0
    overlap_efficiency: float = 0.0
    prefetch_depth: int = 0


class MiniBatchTrainer:
    """GraphSAGE-style sampled training for flat-HDG NAU models.

    Parameters
    ----------
    model:
        A DNFA or INFA NAU model (flat HDGs).
    data:
        The input graph, or a dataset carrying one — an in-RAM
        ``Dataset`` or an out-of-core
        :class:`~repro.storage.ondisk.OnDiskDataset`.  With a dataset,
        ``train_epoch`` can be called without ``feats``/``labels`` and
        features are gathered per batch from the dataset (for ondisk
        data: only the memmap pages the batch touches).
    batch_size:
        Seed vertices per batch.
    fanouts:
        Per-layer neighbor budgets, bottom layer first; must have one
        entry per model layer.
    prefetch_depth:
        Batches produced ahead of the training loop by background
        workers (see :class:`~repro.loader.StreamingLoader`).  ``0``
        (default) trains synchronously.  Epoch sampling is seeded per
        batch from ``(seed, epoch)``, so losses are identical across
        prefetch depths and worker counts.
    num_workers:
        Loader worker threads when ``prefetch_depth > 0``.
    modeled_transfer_gbps:
        Optional modeled device-link bandwidth for the loader's
        transfer stub (see :class:`~repro.loader.StreamingLoader`).
    feature_dtype:
        ``"float32"``/``"float16"``/``"int8"`` stores in-RAM features
        quantized (:class:`~repro.loader.QuantizedSource`, dequantize on
        gather).  Only valid for raw arrays and in-RAM datasets — an
        :class:`~repro.storage.ondisk.OnDiskDataset` carries its own
        storage codec and re-quantizing it here raises.
    """

    def __init__(self, model: NAUModel, data, batch_size: int = 256,
                 fanouts: list[int] | None = None,
                 strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
                 seed: int = 0, prefetch_depth: int = 0,
                 num_workers: int = 2,
                 modeled_transfer_gbps: float | None = None,
                 feature_dtype: str | None = None):
        self.model = model
        self._dataset = data if hasattr(data, "graph") else None
        self.graph: Graph = data.graph if self._dataset is not None else data
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.fanouts = list(fanouts) if fanouts is not None else [10] * model.num_layers
        if len(self.fanouts) != model.num_layers:
            raise ValueError(
                f"need one fanout per layer ({model.num_layers}), got {len(self.fanouts)}"
            )
        self.strategy = ExecutionStrategy.parse(strategy)
        self.seed = int(seed)
        self.prefetch_depth = int(prefetch_depth)
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        self.num_workers = int(num_workers)
        self.modeled_transfer_gbps = modeled_transfer_gbps
        if feature_dtype is not None:
            from ..tensor.quant import resolve_codec

            feature_dtype = resolve_codec(feature_dtype)
        self.feature_dtype = feature_dtype
        self._source_cache: tuple | None = None
        self._rng = np.random.default_rng(seed)
        self._model_hdg: HDG | None = None
        self._hdg_epoch = -1

    # ------------------------------------------------------------------
    def _ensure_hdg(self, epoch: int) -> HDG:
        scope = self.model.selection_scope
        stale = self._model_hdg is None or (
            scope is SelectionScope.PER_EPOCH and self._hdg_epoch != epoch
        )
        if stale:
            self._model_hdg = self.model.neighbor_selection(self.graph, self._rng)
            if self._model_hdg.depth != 1:
                raise ValueError("MiniBatchTrainer requires flat HDGs")
            if not np.array_equal(
                self._model_hdg.roots,
                np.arange(self.graph.num_vertices, dtype=np.int64),
            ):
                raise ValueError("MiniBatchTrainer expects HDG roots to cover "
                                 "all vertices in id order")
            self._hdg_epoch = epoch
        return self._model_hdg

    def _build_blocks(self, hdg: HDG, seeds: np.ndarray) -> list[tuple[HDG, np.ndarray]]:
        """Per-layer (block HDG, output vertices) via the shared builder."""
        return build_seed_blocks(hdg, seeds, self.fanouts, self._rng)

    def _resolve_source(self, feats, labels):
        """Normalize ``train_epoch`` input into a loader source."""
        from ..loader.source import as_source

        if feats is None:
            if self._dataset is None:
                raise ValueError(
                    "train_epoch needs feats unless the trainer was "
                    "constructed with a dataset"
                )
            feats = self._dataset
        # Cache the source across epochs: a quantized tier encodes the
        # full feature table once, not once per train_epoch call.
        key = (id(feats), id(labels))
        if self._source_cache is None or self._source_cache[0] != key:
            self._source_cache = (key, as_source(
                feats, labels, feature_dtype=self.feature_dtype
            ))
        return self._source_cache[1]

    # ------------------------------------------------------------------
    def train_epoch(
        self,
        feats: Tensor | None = None,
        labels: np.ndarray | None = None,
        optimizer: Optimizer | None = None,
        mask: np.ndarray | None = None,
        epoch: int = 0,
    ) -> MiniBatchEpochStats:
        """One pass over the (masked) vertices in sampled mini-batches.

        Batches flow through the staged loader (sample → gather →
        transfer → train); with ``prefetch_depth > 0`` the first three
        stages run on background workers while earlier batches train.
        The per-batch RNG seeds are pre-drawn from ``(seed, epoch)``, so
        the losses do not depend on prefetch depth or worker count.
        """
        from .. import obs
        from ..loader.pipeline import StreamingLoader, run_local_blocks

        if optimizer is None:
            raise ValueError("train_epoch needs an optimizer")
        self.model.train()
        t0 = time.perf_counter()
        hdg = self._ensure_hdg(epoch)
        n = self.graph.num_vertices
        pool = np.flatnonzero(mask) if mask is not None else np.arange(n)
        loader = StreamingLoader(
            self._resolve_source(feats, labels), self.fanouts,
            batch_size=self.batch_size, prefetch_depth=self.prefetch_depth,
            num_workers=self.num_workers,
            modeled_transfer_gbps=self.modeled_transfer_gbps,
        )
        batches = iter(loader.epoch_batches(hdg, pool, epoch=epoch, seed=self.seed))
        losses = []
        correct = 0
        sample_s = gather_s = transfer_s = train_s = wait_s = 0.0
        while True:
            t_wait = time.perf_counter()
            batch = next(batches, None)
            wait_s += time.perf_counter() - t_wait
            if batch is None:
                break
            t_train = time.perf_counter()
            h = run_local_blocks(self.model, batch.compact, batch.feats,
                                 self.strategy)
            logits = h[batch.seed_rows]
            loss = cross_entropy(logits, batch.labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            train_s += time.perf_counter() - t_train
            losses.append(loss.item())
            correct += int(
                (logits.numpy().argmax(axis=1) == batch.labels).sum()
            )
            sample_s += batch.sample_seconds
            gather_s += batch.gather_seconds
            transfer_s += batch.transfer_seconds
        hidden = sample_s + gather_s + transfer_s
        overlap = min(max(1.0 - wait_s / hidden, 0.0), 1.0) if hidden > 0 else 0.0
        seconds = time.perf_counter() - t0
        stats = MiniBatchEpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else 0.0,
            seconds=seconds,
            num_batches=len(losses),
            train_accuracy=correct / max(pool.size, 1),
            sample_seconds=sample_s,
            gather_seconds=gather_s,
            transfer_seconds=transfer_s,
            train_seconds=train_s,
            wait_seconds=wait_s,
            overlap_efficiency=overlap,
            prefetch_depth=self.prefetch_depth,
        )
        obs.epoch_log("minibatch").log(
            epoch,
            loss=stats.loss,
            seconds=seconds,
            train_accuracy=stats.train_accuracy,
            sample_seconds=sample_s,
            gather_seconds=gather_s,
            transfer_seconds=transfer_s,
            train_seconds=train_s,
            wait_seconds=wait_s,
            overlap_efficiency=overlap,
            prefetch_depth=self.prefetch_depth,
        )
        return stats

    def evaluate(self, feats: Tensor, labels: np.ndarray,
                 mask: np.ndarray | None = None) -> float:
        """Full-neighborhood inference accuracy (standard for sampled
        training: sample at train time, exact at eval time)."""
        from ..tensor.tensor import no_grad

        self.model.eval()
        hdg = self._ensure_hdg(self._hdg_epoch if self._hdg_epoch >= 0 else 0)
        with no_grad():
            h = feats
            for layer in self.model.layers:
                nbr = layer.aggregation(h, hdg, self.strategy)
                h = layer.update(h, nbr)
        self.model.train()
        return accuracy(h, labels, mask)
