"""The NAU programming abstraction (Section 3.2, Figure 4).

NAU splits each GNN layer into three stages:

* **NeighborSelection** — build HDGs from the input graph via a UDF;
* **Aggregation** — apply per-level aggregation UDFs bottom-up over the
  HDGs to produce neighborhood representations;
* **Update** — combine each vertex's previous feature with its
  neighborhood representation using dense NN ops.

:class:`GNNLayer` is the user-facing interface of Figure 4.  A
:class:`NAUModel` stacks layers and declares the HDG reuse policy: NAU
"does not require the users to define or execute stage NeighborSelection
in every GNN layer" — GCN reuses the input graph, PinSage rebuilds its
HDGs once per epoch, MAGNN's HDGs never change (Section 3.2, Discussion).
"""

from __future__ import annotations

import enum

import numpy as np

from ..graph.graph import Graph
from ..tensor.nn import Module
from ..tensor.tensor import Tensor
from .aggregation import Aggregator, get_aggregator
from .hdg import HDG, hdg_from_graph
from .hybrid import ExecutionStrategy, hierarchical_aggregate

__all__ = ["SelectionScope", "GNNLayer", "NAUModel"]


class SelectionScope(enum.Enum):
    """How long the HDGs built by NeighborSelection stay valid."""

    STATIC = "static"      # once for the whole training run (GCN, MAGNN)
    PER_EPOCH = "per_epoch"  # rebuilt at each epoch (PinSage's random walks)
    PER_LAYER = "per_layer"  # rebuilt for every layer invocation


class GNNLayer(Module):
    """One GNN layer expressed in NAU.

    Subclasses override :meth:`update` (Equation (2)) and either set
    ``self.aggregators`` (bottom-up UDF list consumed by the default
    level-wise :meth:`aggregation`) or override :meth:`aggregation`
    entirely.  :meth:`neighbor_selection` defaults to ``None``, meaning
    the layer uses the model-level HDGs (the common case).
    """

    def __init__(self, aggregators: list[Aggregator | str] | None = None,
                 dim: int | None = None):
        super().__init__()
        self.aggregators: list[Aggregator] = []
        if aggregators is not None:
            for i, spec in enumerate(aggregators):
                agg = get_aggregator(spec, dim=dim)
                self.aggregators.append(agg)
                # Register parameterized aggregators (attention) as children.
                setattr(self, f"_agg{i}", agg)

    # -- NeighborSelection -------------------------------------------------
    def neighbor_selection(self, graph: Graph, rng: np.random.Generator) -> HDG | None:
        """Build this layer's HDGs, or return ``None`` to use the model's."""
        return None

    # -- Aggregation --------------------------------------------------------
    def aggregation(self, feats: Tensor, hdg: HDG,
                    strategy: ExecutionStrategy = ExecutionStrategy.HA) -> Tensor:
        """Level-wise bottom-up aggregation (Figure 6's default loop)."""
        if not self.aggregators:
            raise NotImplementedError(
                "set self.aggregators or override aggregation()"
            )
        return hierarchical_aggregate(hdg, feats, self.aggregators, strategy)

    # -- Update --------------------------------------------------------------
    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        """Combine previous features with neighborhood representations."""
        raise NotImplementedError

    def forward(self, feats: Tensor, hdg: HDG,
                strategy: ExecutionStrategy = ExecutionStrategy.HA) -> Tensor:
        nbr_feats = self.aggregation(feats, hdg, strategy)
        return self.update(feats, nbr_feats)

    @property
    def output_dim(self) -> int:
        """Feature dimension this layer produces (used for stacking checks)."""
        raise NotImplementedError


class NAUModel(Module):
    """A stack of :class:`GNNLayer` with a shared NeighborSelection policy.

    Parameters
    ----------
    layers:
        The GNN layers, applied in order.
    selection_scope:
        HDG reuse policy (see :class:`SelectionScope`).
    name:
        Display name for logs and benchmark tables.
    """

    #: Which GNN category the model belongs to (Section 2.2). Subclasses set it.
    category = "DNFA"

    def __init__(self, layers: list[GNNLayer],
                 selection_scope: SelectionScope = SelectionScope.STATIC,
                 name: str = "nau-model"):
        super().__init__()
        if not layers:
            raise ValueError("model needs at least one layer")
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
        self.selection_scope = SelectionScope(selection_scope)
        self.name = name

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    # -- NeighborSelection ---------------------------------------------------
    def neighbor_selection(self, graph: Graph, rng: np.random.Generator) -> HDG:
        """Build the model-level HDGs.

        The default is the DNFA fast path: reuse the input graph as a flat
        HDG of direct neighbors.  INFA/INHA models override this with
        their own UDF-driven construction.
        """
        return hdg_from_graph(graph)

    def forward(self, feats: Tensor, hdgs: list[HDG],
                strategy: ExecutionStrategy = ExecutionStrategy.HA) -> Tensor:
        """Run all layers given one HDG per layer."""
        if len(hdgs) != self.num_layers:
            raise ValueError(f"expected {self.num_layers} HDGs, got {len(hdgs)}")
        h = feats
        for layer, hdg in zip(self.layers, hdgs):
            h = layer.forward(h, hdg, strategy)
        return h
