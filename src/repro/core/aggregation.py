"""Aggregation UDFs — the per-level accumulation functions of NAU.

The Aggregation stage applies one UDF per HDG level, bottom-up
(Figure 6).  Each :class:`Aggregator` exposes the same reduction through
three execution backends so the hybrid strategy (Section 4.2) can pick
per level:

* ``sparse``  — scatter ops over an explicit COO index (the SA path);
* ``fused``   — segment reduction over CSC offsets, no per-edge tensor
  materialization (the FA / libgrape-lite vertex-reduce path);
* ``dense``   — reshape-based reduction for regular (schema-tree) levels.

Built-ins cover the paper's models: sum/mean/max/min (FlexGraph's
registered built-ins, Section 6), ``WeightedSumAggregator`` for PinSage's
importance weights, and ``AttentionAggregator`` for MAGNN's softmax
(scatter_softmax) step.
"""

from __future__ import annotations

import numpy as np

from ..tensor.nn import Module, Parameter
from ..tensor.scatter import (
    scatter_add,
    scatter_max,
    scatter_mean,
    scatter_min,
    scatter_softmax,
    segment_reduce_csr,
)
from ..tensor.tensor import Tensor

__all__ = [
    "Aggregator",
    "SumAggregator",
    "MeanAggregator",
    "MaxAggregator",
    "MinAggregator",
    "WeightedSumAggregator",
    "AttentionAggregator",
    "LSTMAggregator",
    "get_aggregator",
]


class Aggregator(Module):
    """Base class: a reduction with sparse, fused and dense backends.

    ``values`` is always a ``(rows, dim)`` tensor of source features;
    ``weights`` (optional, per source row) carries edge importances.
    """

    name = "base"
    supports_fused = True
    supports_dense = True

    def sparse(self, values: Tensor, index: np.ndarray | None, dim_size: int,
               weights: np.ndarray | None = None, *,
               plan=None, plan_key=None) -> Tensor:
        """Scatter-op reduction (per-edge messages materialized).

        ``plan``/``plan_key`` forward a precomputed
        :class:`~repro.tensor.plans.ReductionPlan` (or its cache key) to
        the underlying kernels; ``index`` may be ``None`` when ``plan``
        is given.
        """
        raise NotImplementedError

    def fused(self, values: Tensor, offsets: np.ndarray,
              sources: np.ndarray | None = None,
              weights: np.ndarray | None = None, *,
              plan=None, plan_key=None) -> Tensor:
        """Segment (CSC) reduction without per-edge materialization."""
        raise NotImplementedError

    def dense(self, values: Tensor) -> Tensor:
        """Reduce a regular ``(groups, group_size, dim)`` tensor over axis 1."""
        raise NotImplementedError

    def forward(self, *args, **kwargs):  # pragma: no cover - aggregators are not called directly
        raise TypeError("aggregators are invoked via sparse/fused/dense, not forward()")


def _apply_weights(values: Tensor, weights: np.ndarray | None) -> Tensor:
    if weights is None:
        return values
    return values * Tensor(np.asarray(weights, dtype=np.float64).reshape(-1, 1))


class SumAggregator(Aggregator):
    """Plain sum — GCN/PinSage's neighborhood accumulation (Figure 7)."""

    name = "sum"

    def sparse(self, values, index, dim_size, weights=None, *,
               plan=None, plan_key=None):
        return scatter_add(_apply_weights(values, weights), index, dim_size,
                           plan=plan, plan_key=plan_key)

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        if weights is not None:
            # Weights are per-edge: scale gathered rows inside the segment
            # reduce by pre-scaling (cheap: one elementwise multiply).
            # The gathered layout has its own (identity) plan under the
            # same key base, so an explicit ``plan`` does not apply here.
            if sources is not None:
                gathered = values[sources] * Tensor(np.asarray(weights).reshape(-1, 1))
                return segment_reduce_csr(gathered, offsets, None, "sum",
                                          plan_key=plan_key)
            return segment_reduce_csr(_apply_weights(values, weights),
                                      offsets, None, "sum", plan_key=plan_key)
        return segment_reduce_csr(values, offsets, sources, "sum",
                                  plan=plan, plan_key=plan_key)

    def dense(self, values):
        return values.sum(axis=1)


class MeanAggregator(Aggregator):
    """Arithmetic mean over each group."""

    name = "mean"

    def sparse(self, values, index, dim_size, weights=None, *,
               plan=None, plan_key=None):
        return scatter_mean(_apply_weights(values, weights), index, dim_size,
                            plan=plan, plan_key=plan_key)

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        if weights is not None:
            if sources is not None:
                gathered = values[sources] * Tensor(np.asarray(weights).reshape(-1, 1))
                return segment_reduce_csr(gathered, offsets, None, "mean",
                                          plan_key=plan_key)
            return segment_reduce_csr(_apply_weights(values, weights),
                                      offsets, None, "mean", plan_key=plan_key)
        return segment_reduce_csr(values, offsets, sources, "mean",
                                  plan=plan, plan_key=plan_key)

    def dense(self, values):
        return values.mean(axis=1)


class MaxAggregator(Aggregator):
    """Elementwise max over each group."""

    name = "max"

    def sparse(self, values, index, dim_size, weights=None, *,
               plan=None, plan_key=None):
        return scatter_max(values, index, dim_size, plan=plan,
                           plan_key=plan_key)

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        return segment_reduce_csr(values, offsets, sources, "max",
                                  plan=plan, plan_key=plan_key)

    def dense(self, values):
        return values.max(axis=1)


class MinAggregator(Aggregator):
    """Elementwise min over each group."""

    name = "min"

    def sparse(self, values, index, dim_size, weights=None, *,
               plan=None, plan_key=None):
        return scatter_min(values, index, dim_size, plan=plan,
                           plan_key=plan_key)

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        return segment_reduce_csr(values, offsets, sources, "min",
                                  plan=plan, plan_key=plan_key)

    def dense(self, values):
        return -((-values).max(axis=1))


class WeightedSumAggregator(Aggregator):
    """Sum with mandatory per-edge weights (PinSage's visit frequencies)."""

    name = "weighted_sum"
    supports_dense = False

    def sparse(self, values, index, dim_size, weights=None, *,
               plan=None, plan_key=None):
        if weights is None:
            raise ValueError("weighted_sum requires per-edge weights")
        return scatter_add(_apply_weights(values, weights), index, dim_size,
                           plan=plan, plan_key=plan_key)

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        if weights is None:
            raise ValueError("weighted_sum requires per-edge weights")
        if sources is not None:
            gathered = values[sources] * Tensor(np.asarray(weights).reshape(-1, 1))
            return segment_reduce_csr(gathered, offsets, None, "sum",
                                      plan_key=plan_key)
        return segment_reduce_csr(_apply_weights(values, weights),
                                  offsets, None, "sum", plan_key=plan_key)

    def dense(self, values):  # pragma: no cover - guarded by supports_dense
        raise TypeError("weighted_sum has no dense form")


class AttentionAggregator(Aggregator):
    """Softmax attention over group members (MAGNN's scatter_softmax step).

    Each source row gets a scalar score ``x . a`` from a learnable vector;
    scores are softmax-normalized within their group and used as weights.
    """

    name = "attention"
    supports_fused = False  # attention needs explicit per-row scores

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.score_vector = Parameter(rng.standard_normal(dim) / np.sqrt(dim))

    def _attend(self, values: Tensor, index, dim_size: int,
                plan=None, plan_key=None) -> Tensor:
        scores = values @ self.score_vector.reshape(self.dim, 1)
        # Both kernels share one plan: same index, same destination space.
        alpha = scatter_softmax(scores, index, dim_size, plan=plan,
                                plan_key=plan_key)
        return scatter_add(values * alpha, index, dim_size, plan=plan,
                           plan_key=plan_key)

    def sparse(self, values, index, dim_size, weights=None, *,
               plan=None, plan_key=None):
        return self._attend(values, index, dim_size, plan=plan,
                            plan_key=plan_key)

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        # Fall back to the sparse path on an index derived from offsets —
        # attention inherently scores each member row.
        counts = np.diff(offsets)
        index = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        rows = values if sources is None else values[sources]
        return self._attend(rows, index, counts.size, plan_key=plan_key)

    def dense(self, values):
        from ..tensor.ops import softmax

        n, g, d = values.shape
        scores = values.reshape(n * g, d) @ self.score_vector.reshape(d, 1)
        alpha = softmax(scores.reshape(n, g, 1), axis=1)
        return (values * alpha).sum(axis=1)


class LSTMAggregator(Aggregator):
    """Order-sensitive LSTM reduction over each group's members.

    The non-commutative aggregator §5 singles out: partial aggregation is
    *invalid* for it, so distributed training falls back to batched
    message transfer (the distributed trainer checks ``name``).  Members
    are consumed in storage order; sequences are truncated at
    ``max_seq_len`` to bound the sequential depth.
    """

    name = "lstm"
    supports_fused = False
    supports_dense = False

    def __init__(self, dim: int, hidden_dim: int | None = None,
                 max_seq_len: int = 16,
                 rng: np.random.Generator | None = None):
        super().__init__()
        from ..tensor.nn import LSTMCell
        from ..tensor.ops import scatter_rows

        if max_seq_len <= 0:
            raise ValueError("max_seq_len must be positive")
        self.dim = dim
        self.hidden_dim = hidden_dim or dim
        self.max_seq_len = max_seq_len
        self.cell = LSTMCell(dim, self.hidden_dim, rng=rng or np.random.default_rng(0))
        self._scatter_rows = scatter_rows

    def sparse(self, values: Tensor, index: np.ndarray | None, dim_size: int,
               weights: np.ndarray | None = None, *,
               plan=None, plan_key=None) -> Tensor:
        from ..tensor.ops import zeros
        from ..tensor.plans import (
            ReductionPlan,
            get_plan_cache,
            index_plan_key,
        )

        # The plan already holds exactly what the sequential sweep needs:
        # the stable-sort permutation and per-group counts/starts.
        if plan is None:
            if index is None:
                raise ValueError("lstm aggregation needs an index when no plan is given")
            index = np.asarray(index, dtype=np.int64)
            if plan_key is not None:
                plan = get_plan_cache().get_or_build(
                    index_plan_key(plan_key, index.size, dim_size),
                    lambda: ReductionPlan.from_index(index, dim_size),
                )
            else:
                plan = ReductionPlan.from_index(index, dim_size)
        order = plan.gather
        counts = plan.counts
        starts = plan.offsets[:-1]
        h = zeros(dim_size, self.hidden_dim)
        c = zeros(dim_size, self.hidden_dim)
        max_len = min(int(counts.max()) if counts.size else 0, self.max_seq_len)
        for t in range(max_len):
            active = np.flatnonzero(counts > t)
            rows = order[starts[active] + t]
            x_t = values[rows]
            h_new, c_new = self.cell(x_t, h[active], c[active])
            keep = np.ones(dim_size)
            keep[active] = 0.0
            keep_col = Tensor(keep.reshape(-1, 1))
            h = h * keep_col + self._scatter_rows(h_new, active, dim_size)
            c = c * keep_col + self._scatter_rows(c_new, active, dim_size)
        return h

    def fused(self, values, offsets, sources=None, weights=None, *,
              plan=None, plan_key=None):
        counts = np.diff(offsets)
        index = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        rows = values if sources is None else values[np.asarray(sources, dtype=np.int64)]
        return self.sparse(rows, index, counts.size, plan_key=plan_key)

    def dense(self, values):  # pragma: no cover - guarded by supports_dense
        raise TypeError("lstm aggregation has no dense form")


_BUILTINS = {
    "sum": SumAggregator,
    "mean": MeanAggregator,
    "max": MaxAggregator,
    "min": MinAggregator,
    "weighted_sum": WeightedSumAggregator,
}


def get_aggregator(spec, dim: int | None = None) -> Aggregator:
    """Resolve an aggregator from a name or pass an instance through.

    ``"attention"`` requires ``dim`` (the feature dimension it scores).
    """
    if isinstance(spec, Aggregator):
        return spec
    if spec == "attention":
        if dim is None:
            raise ValueError("attention aggregator needs the feature dimension")
        return AttentionAggregator(dim)
    if spec == "lstm":
        if dim is None:
            raise ValueError("lstm aggregator needs the feature dimension")
        return LSTMAggregator(dim)
    try:
        return _BUILTINS[spec]()
    except KeyError:
        raise KeyError(
            f"unknown aggregator {spec!r}; built-ins: {sorted(_BUILTINS)} "
            "+ 'attention' + 'lstm'"
        ) from None
