"""Heterogeneous feature handling: per-type input projection.

Real heterogeneous datasets carry different feature semantics (and often
dimensions) per vertex type; MAGNN-style models first project every type
into one shared space.  :class:`TypeProjection` applies a separate
learned linear map per vertex type in one pass, producing the uniform
feature matrix the NAU stages consume.
"""

from __future__ import annotations

import numpy as np

from ..tensor.nn import Linear, Module
from ..tensor.ops import scatter_rows
from ..tensor.tensor import Tensor

__all__ = ["TypeProjection"]


class TypeProjection(Module):
    """Per-vertex-type linear projection into a shared hidden space.

    Parameters
    ----------
    vertex_types:
        ``(n,)`` type id per vertex (from the graph).
    in_dim, out_dim:
        Input feature width (shared here — the synthetic datasets pad to
        one width) and the projected width.
    """

    def __init__(self, vertex_types: np.ndarray, in_dim: int, out_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.vertex_types = np.asarray(vertex_types, dtype=np.int64)
        if self.vertex_types.ndim != 1:
            raise ValueError("vertex_types must be 1-D")
        self.num_types = int(self.vertex_types.max()) + 1 if self.vertex_types.size else 1
        self.out_dim = out_dim
        rng = rng or np.random.default_rng(0)
        self.projections = []
        for t in range(self.num_types):
            layer = Linear(in_dim, out_dim, rng=rng)
            self.projections.append(layer)
            setattr(self, f"proj{t}", layer)
        self._type_rows = [
            np.flatnonzero(self.vertex_types == t) for t in range(self.num_types)
        ]

    def forward(self, feats: Tensor) -> Tensor:
        """Project all vertices; row order is preserved."""
        if feats.shape[0] != self.vertex_types.size:
            raise ValueError(
                f"feature rows ({feats.shape[0]}) must match vertex count "
                f"({self.vertex_types.size})"
            )
        n = feats.shape[0]
        out = None
        for t, layer in enumerate(self.projections):
            rows = self._type_rows[t]
            if rows.size == 0:
                continue
            projected = layer(feats[rows])
            placed = scatter_rows(projected, rows, n)
            out = placed if out is None else out + placed
        if out is None:
            raise ValueError("graph has no vertices to project")
        return out
