"""``repro.core`` — FlexGraph's primary contribution.

The NAU programming abstraction, hierarchical dependency graphs with the
compact storage of §4.1, hybrid aggregation execution (§4.2), the
single-machine execution engine, and the ADB workload balancer (§5-6).
"""

from .aggregation import (
    Aggregator,
    AttentionAggregator,
    LSTMAggregator,
    MaxAggregator,
    MeanAggregator,
    MinAggregator,
    SumAggregator,
    WeightedSumAggregator,
    get_aggregator,
)
from .balancer import (
    REBALANCE_EVENT,
    ADBBalancer,
    BalancePlan,
    induced_dependency_edges,
)
from .cost_model import (
    DRIFT_EVENT,
    DRIFT_GAUGE,
    R_SQUARED_GAUGE,
    RESIDUAL_HISTOGRAM,
    CostModel,
    metrics_from_hdg,
)
from .dynamic import MetapathHDGMaintainer, instances_through_edges
from .engine import EpochStats, FlexGraphEngine, StageTimes
from .hetero import TypeProjection
from .hdg import (
    HDG,
    MemmapHDG,
    build_hdg,
    hdg_from_flat_arrays,
    hdg_from_graph,
    hdg_from_instance_arrays,
)
from .hybrid import ExecutionStrategy, hierarchical_aggregate
from .nau import GNNLayer, NAUModel, SelectionScope
from .sampling import (
    MiniBatchEpochStats,
    MiniBatchTrainer,
    build_block,
    build_seed_blocks,
    sample_fanout,
)
from .schema import NeighborRecord, SchemaTree
from .validate import HDGInvariantError, hdg_summary, validate_hdg
from .selection import (
    build_metapath_hdg,
    schema_for_metapaths,
    schema_for_rings,
    select_anchor_set_neighbors,
    select_direct_neighbors,
    select_distance_ring_neighbors,
    select_metapath_neighbors,
    select_pinsage_neighbors,
)

__all__ = [
    "SchemaTree", "NeighborRecord",
    "HDG", "MemmapHDG", "build_hdg", "hdg_from_graph", "hdg_from_flat_arrays",
    "hdg_from_instance_arrays", "build_metapath_hdg",
    "GNNLayer", "NAUModel", "SelectionScope",
    "ExecutionStrategy", "hierarchical_aggregate",
    "Aggregator", "SumAggregator", "MeanAggregator", "MaxAggregator",
    "MinAggregator", "WeightedSumAggregator", "AttentionAggregator",
    "LSTMAggregator",
    "get_aggregator",
    "FlexGraphEngine", "StageTimes", "EpochStats",
    "MiniBatchTrainer", "MiniBatchEpochStats", "sample_fanout",
    "build_block", "build_seed_blocks",
    "validate_hdg", "hdg_summary", "HDGInvariantError",
    "MetapathHDGMaintainer", "instances_through_edges",
    "TypeProjection",
    "CostModel", "metrics_from_hdg", "R_SQUARED_GAUGE", "RESIDUAL_HISTOGRAM",
    "DRIFT_GAUGE", "DRIFT_EVENT",
    "ADBBalancer", "BalancePlan", "induced_dependency_edges", "REBALANCE_EVENT",
    "select_direct_neighbors", "select_pinsage_neighbors",
    "select_metapath_neighbors", "select_anchor_set_neighbors",
    "select_distance_ring_neighbors",
    "schema_for_metapaths", "schema_for_rings",
]
