"""Hybrid execution of hierarchical aggregation (Section 4.2).

FlexGraph differentiates the aggregation steps in an HDG's hierarchy by
context and picks the cheapest backend for each:

=====================  =================================================
HDG level              backend per strategy
=====================  =================================================
neighbor instances     SA: scatter ops (per-edge messages materialized)
(bottom, level max)    SA+FA / HA: **feature fusion** (segment reduce)
in-between (level 2)   SA / SA+FA: scatter ops over an explicit index
                       HA: segment reduce on the compact elided layout
schema tree (level 1)  SA / SA+FA: scatter ops
                       HA: **dense** reshape + reduce (Figure 10)
=====================  =================================================

``SA``, ``SA_FA`` and ``HA`` are exactly the three strategies compared in
Figure 14.
"""

from __future__ import annotations

import enum
import time

from ..obs import event as _obs_event
from ..obs.profile import record_op, work_since, work_snapshot
from ..tensor.plans import ReductionPlan, get_plan_cache, index_plan_key
from ..tensor.tensor import Tensor
from .aggregation import Aggregator
from .hdg import HDG

__all__ = ["ExecutionStrategy", "hierarchical_aggregate", "BACKEND_EVENT"]

#: obs event emitted once per HDG level per aggregation, recording which
#: backend (sparse / fused / dense) the hybrid executor picked *and* its
#: measured cost (seconds plus the FLOPs/bytes the profiler attributed
#: to the invocation) — this is what makes the Figure 14 strategy
#: differences visible, and rankable, in traces
#: (``obs.backend_report()``).
BACKEND_EVENT = "aggregation.backend"


def _run_backend(level: str, backend: str, strategy: "ExecutionStrategy",
                 agg: Aggregator, fn):
    """Invoke one backend, measuring wall time and profiled work, and
    emit the ``aggregation.backend`` event with the measured cost."""
    start = time.perf_counter()
    before = work_snapshot()
    out = fn()
    work = work_since(before)
    _obs_event(
        BACKEND_EVENT, level=level, backend=backend,
        strategy=strategy.value, aggregator=agg.name,
        seconds=time.perf_counter() - start, **work,
    )
    return out


def _cached_index_plan(base, length: int, n_out: int, build_index):
    """Fetch (or build once) the reduction plan for one HDG level.

    ``base`` embeds ``hdg.fingerprint()``, so the key is content-addressed:
    a graph edit produces a new HDG with a new fingerprint and the stale
    plan is simply never reachable again.  ``build_index`` is only called
    on a cache miss — on hits the ``np.repeat``/``argsort``/CSR work is
    skipped entirely.
    """
    return get_plan_cache().get_or_build(
        index_plan_key(base, length, n_out),
        lambda: ReductionPlan.from_index(build_index(), n_out),
    )


class ExecutionStrategy(enum.Enum):
    """Aggregation execution strategies benchmarked in Figure 14."""

    SA = "sa"        # sparse scatter ops only
    SA_FA = "sa+fa"  # sparse ops + feature fusion at the bottom level
    HA = "ha"        # hybrid: fusion + sparse + dense per level

    @classmethod
    def parse(cls, value) -> "ExecutionStrategy":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == str(value).lower():
                return member
        raise ValueError(f"unknown execution strategy {value!r}")


def hierarchical_aggregate(
    hdg: HDG,
    feats: Tensor,
    aggregators: list[Aggregator],
    strategy: ExecutionStrategy = ExecutionStrategy.HA,
) -> Tensor:
    """Run the level-wise Aggregation stage of Figure 6 over an HDG.

    Parameters
    ----------
    hdg:
        The collective HDG (flat or depth-3).
    feats:
        ``(num_input_vertices, dim)`` input features indexed by global
        vertex id.
    aggregators:
        Bottom-up UDF list: ``aggregators[0]`` reduces leaves into
        instances (or directly into roots for flat HDGs),
        ``aggregators[1]`` instances into schema-leaf slots and
        ``aggregators[2]`` slots into roots.
    strategy:
        Which of the Figure 14 execution strategies to use.

    Returns
    -------
    Tensor
        ``(num_roots, dim')`` neighborhood representations, ordered like
        ``hdg.roots``.
    """
    strategy = ExecutionStrategy.parse(strategy)
    if feats.shape[0] < hdg.num_input_vertices:
        raise ValueError(
            f"feature matrix covers {feats.shape[0]} vertices but HDG references "
            f"{hdg.num_input_vertices}"
        )
    if hdg.depth == 1:
        if len(aggregators) != 1:
            raise ValueError(f"flat HDG needs exactly 1 aggregator, got {len(aggregators)}")
        return _reduce_bottom(hdg, feats, aggregators[0], strategy)

    if len(aggregators) != 3:
        raise ValueError(f"depth-3 HDG needs exactly 3 aggregators, got {len(aggregators)}")

    # Level 3: input-graph leaves -> neighbor instances.
    instance_feats = _reduce_bottom(hdg, feats, aggregators[0], strategy)

    # Level 2: neighbor instances -> (root, schema leaf) slots.
    slot_feats = _reduce_instances(hdg, instance_feats, aggregators[1], strategy)

    # Level 1: schema-leaf slots -> roots.
    return _reduce_schema(hdg, slot_feats, aggregators[2], strategy)


def _reduce_bottom(hdg: HDG, feats: Tensor, agg: Aggregator,
                   strategy: ExecutionStrategy) -> Tensor:
    """Leaves -> instances (depth 3) or leaves -> roots (depth 1)."""
    n_out = hdg.num_instances if hdg.depth == 3 else hdg.num_roots
    base = (hdg.fingerprint(), "bottom")

    if strategy is ExecutionStrategy.SA or not agg.supports_fused:
        def sparse_path():
            src = hdg.leaf_vertices
            plan = _cached_index_plan(
                base, src.size, n_out,
                lambda: hdg.sub_graph(hdg.max_level)[0],
            )
            gathered = feats[src]  # materializes one message per edge
            record_op("gather",
                      bytes_read=gathered.data.nbytes + src.nbytes,
                      bytes_written=gathered.data.nbytes)
            return agg.sparse(gathered, None, n_out,
                              weights=hdg.leaf_weights, plan=plan)
        return _run_backend("bottom", "sparse", strategy, agg, sparse_path)

    return _run_backend(
        "bottom", "fused", strategy, agg,
        lambda: agg.fused(feats, hdg.leaf_offsets, hdg.leaf_vertices,
                          weights=hdg.leaf_weights, plan_key=base),
    )


def _reduce_instances(hdg: HDG, instance_feats: Tensor, agg: Aggregator,
                      strategy: ExecutionStrategy) -> Tensor:
    """Instances -> slots.  Instances are consecutive per slot, so HA can
    reduce on the elided layout without building an index."""
    base = (hdg.fingerprint(), "instances")
    if strategy is ExecutionStrategy.HA and agg.supports_fused:
        return _run_backend(
            "instances", "fused", strategy, agg,
            lambda: agg.fused(instance_feats, hdg.instance_offsets,
                              sources=None, plan_key=base),
        )

    def sparse_path():
        plan = _cached_index_plan(
            base, hdg.num_instances, hdg.num_slots,
            lambda: hdg.sub_graph(2)[0],
        )
        return agg.sparse(instance_feats, None, hdg.num_slots, plan=plan)
    return _run_backend("instances", "sparse", strategy, agg, sparse_path)


def _reduce_schema(hdg: HDG, slot_feats: Tensor, agg: Aggregator,
                   strategy: ExecutionStrategy) -> Tensor:
    """Slots -> roots.  The schema tree is regular (every root has exactly
    num_leaf_types slots), so HA uses the dense reshape trick of
    Figure 10; other strategies scatter."""
    num_leaves = hdg.schema.num_leaves
    if num_leaves == 1:
        # A single schema leaf: the slot features *are* the root features.
        return slot_feats
    if strategy is ExecutionStrategy.HA and agg.supports_dense:
        def dense_path():
            dim = slot_feats.shape[-1]
            reshaped = slot_feats.reshape(hdg.num_roots, num_leaves, dim)
            out = agg.dense(reshaped)
            # reshape is free (a view); the reduction costs one FLOP per
            # input element and streams the slot matrix once
            record_op("dense_reduce", flops=float(reshaped.data.size),
                      bytes_read=reshaped.data.nbytes,
                      bytes_written=out.data.nbytes)
            return out
        return _run_backend("schema", "dense", strategy, agg, dense_path)

    def sparse_path():
        plan = _cached_index_plan(
            (hdg.fingerprint(), "schema"), hdg.num_slots, hdg.num_roots,
            lambda: hdg.sub_graph(1)[0],
        )
        return agg.sparse(slot_feats, None, hdg.num_roots, plan=plan)
    return _run_backend("schema", "sparse", strategy, agg, sparse_path)
