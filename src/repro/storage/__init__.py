"""``repro.storage`` — the Figure 12 storage tier (graph, feature and
checkpoint persistence; per-worker partition shards; the out-of-core
``repro.ondisk/1`` memmap format)."""

from .ondisk import (
    ONDISK_FORMAT,
    OnDiskDataset,
    OnDiskGraph,
    OnDiskIntegrityError,
    write_ondisk_dataset,
    write_synthetic_ondisk,
)
from .store import (
    PartitionedStore,
    checkpoint_metadata,
    load_checkpoint,
    load_dataset_from,
    load_graph,
    save_checkpoint,
    save_dataset,
    save_graph,
)

__all__ = [
    "save_graph", "load_graph",
    "save_dataset", "load_dataset_from",
    "save_checkpoint", "load_checkpoint", "checkpoint_metadata",
    "PartitionedStore",
    "ONDISK_FORMAT", "OnDiskIntegrityError",
    "OnDiskGraph", "OnDiskDataset",
    "write_ondisk_dataset", "write_synthetic_ondisk",
]
