"""Out-of-core dataset storage — the ``repro.ondisk/1`` format.

FlexGraph's bottom layer (Figure 12) is a storage system that feeds
graph topology and vertex features to the layers above it.  The
in-RAM tier (:mod:`repro.storage.store`) caps dataset size at host
memory; this module is the out-of-core tier: a directory of flat
binary files under a JSON manifest, designed so that *nothing* is ever
read in full —

* topology as memory-mapped CSC **and** CSR ``.npy`` pairs
  (``indptr``/``indices``), so neighbor lookups touch only the pages a
  batch's vertices live on;
* features and labels row-sharded into fixed-width ``.npy`` shards,
  gathered row-wise with positional reads
  (:meth:`OnDiskDataset.gather_features`) so peak process RSS stays
  O(batch) — the kernel's page cache does the caching, not the process;
* a ``manifest.json`` carrying the format version, shapes, dtypes and a
  SHA-256 content fingerprint per file, verified on demand
  (:meth:`OnDiskDataset.verify`) so a truncated or corrupted shard
  fails loudly instead of training on garbage.

Writers come in two flavors: :func:`write_ondisk_dataset` converts an
in-RAM :class:`~repro.datasets.synthetic.Dataset`, and
:func:`write_synthetic_ondisk` *generates* a dataset shard-by-shard
from a :class:`~repro.datasets.synthetic.ShardedSyntheticSpec` —
a two-pass counting-then-filling CSC/CSR build that regenerates edge
chunks instead of buffering them, so 10^7-10^8-edge graphs are written
with O(num_vertices) peak memory.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os

import numpy as np

from ..datasets.synthetic import (
    Dataset,
    ShardedSyntheticSpec,
    class_centers,
    edge_chunks,
    feature_shard,
    label_shard,
    mask_shards,
    shard_row_range,
)
from ..graph.graph import Graph
from ..obs.profile import record_op
from ..tensor.quant import (
    decode_int8,
    quantize_rows,
    resolve_codec,
    wire_bytes_per_row as _codec_row_bytes,
)

__all__ = [
    "ONDISK_FORMAT",
    "OnDiskIntegrityError",
    "OnDiskGraph",
    "OnDiskDataset",
    "write_ondisk_dataset",
    "write_synthetic_ondisk",
]

ONDISK_FORMAT = "repro.ondisk/1"

MANIFEST_NAME = "manifest.json"
_TOPOLOGY_FILES = (
    "topology/csc.indptr.npy",
    "topology/csc.indices.npy",
    "topology/csr.indptr.npy",
    "topology/csr.indices.npy",
)
_HASH_BLOCK = 1 << 23  # 8 MiB


class OnDiskIntegrityError(ValueError):
    """A file's content no longer matches its manifest fingerprint."""


# ----------------------------------------------------------------------
# Manifest plumbing
# ----------------------------------------------------------------------

def _file_sha256(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        while True:
            block = f.read(_HASH_BLOCK)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def _file_entry(root: str, rel: str) -> dict:
    path = os.path.join(root, rel)
    entry = {"sha256": _file_sha256(path), "bytes": os.path.getsize(path)}
    if rel.endswith(".npy"):
        arr = np.load(path, mmap_mode="r")
        entry["dtype"] = str(arr.dtype)
        entry["shape"] = list(arr.shape)
        del arr
    return entry


def _check_format(manifest: dict, root: str) -> None:
    fmt = manifest.get("format")
    if fmt != ONDISK_FORMAT:
        raise ValueError(
            f"{root}: on-disk format {fmt!r} not supported "
            f"(expected {ONDISK_FORMAT!r})"
        )


def _write_manifest(root: str, meta: dict, rel_files: list[str]) -> dict:
    manifest = dict(meta)
    manifest["format"] = ONDISK_FORMAT
    manifest["files"] = {rel: _file_entry(root, rel) for rel in sorted(rel_files)}
    # The graph fingerprint is derived from the CSC content hashes the
    # manifest already carries — no extra pass over the edges.
    g = hashlib.sha256()
    g.update(np.int64(manifest["num_vertices"]).tobytes())
    for rel in ("topology/csc.indptr.npy", "topology/csc.indices.npy"):
        g.update(manifest["files"][rel]["sha256"].encode())
    manifest["graph_fingerprint"] = g.hexdigest()[:16]
    with open(os.path.join(root, MANIFEST_NAME), "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
    return manifest


def _feature_shard_rel(shard: int) -> str:
    return f"features/shard-{shard:05d}.npy"


def _scale_shard_rel(shard: int) -> str:
    """Per-row float32 scale sidecar for an int8-quantized feature shard."""
    return f"features/scale-{shard:05d}.npy"


_CODEC_STORAGE = {
    "float32": np.dtype(np.float32),
    "float16": np.dtype(np.float16),
    "int8": np.dtype(np.int8),
}


def _open_memmap(path: str) -> np.ndarray:
    """``np.load(mmap_mode="r")`` plus ``MADV_RANDOM``.

    Batch lookups fault pages in *sorted* vertex order, which the
    kernel's readahead heuristic mistakes for a sequential scan — it
    then pulls the gaps in too, making whole files resident and
    defeating the O(batch) residency this format exists for.  Advising
    random access keeps faults to exactly the touched pages.
    """
    arr = np.load(path, mmap_mode="r")
    base = getattr(arr, "_mmap", None)
    if base is not None and hasattr(base, "madvise") and hasattr(mmap, "MADV_RANDOM"):
        base.madvise(mmap.MADV_RANDOM)
    return arr


# ----------------------------------------------------------------------
# Readers
# ----------------------------------------------------------------------

class OnDiskGraph:
    """Graph-compatible adjacency over memory-mapped CSR/CSC files.

    Implements the :class:`~repro.graph.graph.Graph` lookup surface the
    sampling and training tiers use (``csr``/``csc``, neighbor and
    degree queries, ``vertex_types``, ``fingerprint``) without ever
    materializing an edge array; ``hdg_from_graph`` recognizes the
    memmapped CSC and builds a :class:`~repro.core.hdg.MemmapHDG`, so
    DNFA models sample straight off the files.
    """

    def __init__(self, root: str, manifest: dict):
        self.root = root
        self._manifest = manifest
        self.num_vertices = int(manifest["num_vertices"])
        self.num_edges = int(manifest["num_edges"])
        mm = lambda rel: _open_memmap(os.path.join(root, rel))  # noqa: E731
        self._csc_indptr = mm("topology/csc.indptr.npy")
        self._csc_indices = mm("topology/csc.indices.npy")
        self._csr_indptr = mm("topology/csr.indptr.npy")
        self._csr_indices = mm("topology/csr.indices.npy")
        self.vertex_types = mm("vertex_types.npy")
        self.num_types = int(manifest.get("num_types", 1))
        self.type_names = list(
            manifest.get("type_names") or [f"type{i}" for i in range(self.num_types)]
        )

    # -- Graph lookup surface ------------------------------------------
    @property
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) over out-edges — memmapped."""
        return self._csr_indptr, self._csr_indices

    @property
    def csc(self) -> tuple[np.ndarray, np.ndarray]:
        """(indptr, indices) over in-edges — memmapped."""
        return self._csc_indptr, self._csc_indices

    def out_neighbors(self, v: int) -> np.ndarray:
        return self._csr_indices[self._csr_indptr[v] : self._csr_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        return self._csc_indices[self._csc_indptr[v] : self._csc_indptr[v + 1]]

    def out_degree(self, v: int | None = None):
        if v is None:
            return np.diff(self._csr_indptr)
        return int(self._csr_indptr[v + 1] - self._csr_indptr[v])

    def in_degree(self, v: int | None = None):
        if v is None:
            return np.diff(self._csc_indptr)
        return int(self._csc_indptr[v + 1] - self._csc_indptr[v])

    def degrees_of(self, vertices: np.ndarray, in_edges: bool = True) -> np.ndarray:
        """Degrees of a vertex subset, touching only their indptr pages
        (``out_degree(None)`` would scan the whole array)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        indptr = self._csc_indptr if in_edges else self._csr_indptr
        return np.asarray(indptr[vertices + 1], dtype=np.int64) - np.asarray(
            indptr[vertices], dtype=np.int64
        )

    def fingerprint(self) -> str:
        """The manifest's content-derived structural fingerprint."""
        return str(self._manifest["graph_fingerprint"])

    @property
    def nbytes(self) -> int:
        """On-disk bytes of the adjacency files (nothing is resident
        until touched)."""
        files = self._manifest["files"]
        return sum(files[rel]["bytes"] for rel in _TOPOLOGY_FILES)

    def __repr__(self) -> str:
        return (
            f"OnDiskGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, root={self.root!r})"
        )


class OnDiskDataset:
    """A graph learning task whose arrays live on disk.

    Mirrors :class:`~repro.datasets.synthetic.Dataset`'s surface
    (``graph``/``labels``/masks/``num_classes``/``feat_dim``) but the
    topology and labels are memmaps and features are gathered row-wise
    from shards — peak resident memory is O(batch), not O(dataset).
    Implements the :class:`repro.loader.DataSource` protocol directly,
    so it plugs straight into :class:`repro.loader.StreamingLoader` and
    both mini-batch trainers.
    """

    def __init__(self, root: str):
        self.root = root
        manifest_path = os.path.join(root, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
        with open(manifest_path) as f:
            self.manifest = json.load(f)
        _check_format(self.manifest, root)
        self._check_layout()
        self.name = str(self.manifest.get("name", os.path.basename(root)))
        self.graph = OnDiskGraph(root, self.manifest)
        self.feat_dim = int(self.manifest["feat_dim"])
        self.num_classes = int(self.manifest["num_classes"])
        self.rows_per_shard = int(self.manifest["rows_per_shard"])
        self.num_feature_shards = int(self.manifest["num_feature_shards"])
        self.feature_dtype = np.dtype(self.manifest["feature_dtype"])
        self._init_codec()
        self.labels = _open_memmap(os.path.join(root, "labels.npy"))
        # Split masks are one byte per vertex — always safe to load.
        self.train_mask = np.load(os.path.join(root, "masks/train.npy"))
        self.val_mask = np.load(os.path.join(root, "masks/val.npy"))
        self.test_mask = np.load(os.path.join(root, "masks/test.npy"))
        self._shard_files: dict[int, tuple] = {}

    def _init_codec(self) -> None:
        """Resolve the optional quantized-feature codec from the manifest.

        Without a ``feature_codec`` key the dataset is a legacy exact
        store: gathers return the storage dtype untouched.  With one,
        the storage dtype must match the codec (int8 additionally needs
        one ``features/scale-*.npy`` float32 sidecar per shard) and
        gathers dequantize into ``compute_dtype``.  Every mismatch is an
        :class:`OnDiskIntegrityError` — silently training on
        misdecoded features is the failure mode this guards against.
        """
        codec = self.manifest.get("feature_codec")
        self._scale_cache: dict[int, np.ndarray] = {}
        if codec is None:
            self.feature_codec = None
            self.compute_dtype = self.feature_dtype
            return
        try:
            self.feature_codec = resolve_codec(codec)
        except ValueError as exc:
            raise OnDiskIntegrityError(f"{self.root}: {exc}") from exc
        storage = _CODEC_STORAGE[self.feature_codec]
        if storage != self.feature_dtype:
            raise OnDiskIntegrityError(
                f"{self.root}: feature_codec {self.feature_codec!r} stores "
                f"{storage}, but manifest feature_dtype is {self.feature_dtype}"
            )
        if self.feature_codec == "int8":
            self.compute_dtype = np.dtype(
                self.manifest.get("compute_dtype", "float32")
            )
            if self.compute_dtype.kind != "f":
                raise OnDiskIntegrityError(
                    f"{self.root}: compute_dtype must be a float dtype, "
                    f"got {self.compute_dtype}"
                )
            for shard in range(self.num_feature_shards):
                if _scale_shard_rel(shard) not in self.manifest["files"]:
                    raise OnDiskIntegrityError(
                        f"{self.root}: int8 features but no scale sidecar "
                        f"{_scale_shard_rel(shard)!r} in the manifest — "
                        "dataset was not written by --quantize int8?"
                    )
        else:
            self.compute_dtype = self.feature_dtype

    # -- DataSource protocol -------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def wire_bytes_per_row(self) -> int:
        """Bytes one gathered row moves in the stored (wire) format."""
        if self.feature_codec is not None:
            return _codec_row_bytes(self.feature_codec, self.feat_dim)
        return self.feat_dim * self.feature_dtype.itemsize

    def _shard_scales(self, shard: int) -> np.ndarray:
        """The float32 per-row scale sidecar of one int8 shard (cached;
        sidecars are 4 bytes/row, ~0.1% of what the fp32 rows were)."""
        scales = self._scale_cache.get(shard)
        if scales is None:
            scales = np.load(os.path.join(self.root, _scale_shard_rel(shard)))
            if scales.dtype != np.float32 or scales.ndim != 1:
                raise OnDiskIntegrityError(
                    f"{self.root}: scale sidecar for shard {shard} must be "
                    f"1-D float32, got {scales.dtype} {scales.shape}"
                )
            self._scale_cache[shard] = scales
        return scales

    def _shard_reader(self, shard: int) -> tuple:
        """(open file, data offset) for one feature shard.

        Features are gathered with positional reads rather than a
        memmap: memmap gathers fault whole readahead/fault-around
        windows into the *process* (page granularity is 16+ pages on
        stock Linux), so a scattered batch can make entire shards
        resident.  ``pread`` copies exactly the requested rows; the
        kernel keeps its page cache to itself and peak RSS stays
        O(batch).
        """
        entry = self._shard_files.get(shard)
        if entry is None:
            f = open(os.path.join(self.root, _feature_shard_rel(shard)), "rb")
            version = np.lib.format.read_magic(f)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(f)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(f)
            else:
                raise OnDiskIntegrityError(
                    f"{self.root}: feature shard {shard} has unsupported "
                    f".npy version {version}"
                )
            if fortran or dtype != self.feature_dtype or shape[1:] != (self.feat_dim,):
                raise OnDiskIntegrityError(
                    f"{self.root}: feature shard {shard} header "
                    f"(dtype={dtype}, shape={shape}, fortran={fortran}) does "
                    f"not match manifest (dtype={self.feature_dtype}, "
                    f"feat_dim={self.feat_dim})"
                )
            entry = (f, f.tell())
            self._shard_files[shard] = entry
        return entry

    def _pread_rows(self, shard: int, first_local: int, count: int) -> np.ndarray:
        row_nbytes = self.feat_dim * self.feature_dtype.itemsize
        f, data0 = self._shard_reader(shard)
        nbytes = count * row_nbytes
        buf = os.pread(f.fileno(), nbytes, data0 + first_local * row_nbytes)
        if len(buf) != nbytes:
            raise OnDiskIntegrityError(
                f"{self.root}: short read in feature shard {shard} "
                f"(wanted {nbytes} bytes at row {first_local}, got {len(buf)})"
            )
        return np.frombuffer(buf, dtype=self.feature_dtype).reshape(
            count, self.feat_dim
        )

    def gather_features(self, rows: np.ndarray) -> np.ndarray:
        """Feature rows (in the requested order) read out of the shards.

        Per shard, a *dense* request (needed rows cover ≥¼ of their
        span) is served by one positional read of the whole span and a
        vectorized slice; a *sparse* one by per-run reads over
        consecutive row groups.  Either way the transient buffer is
        bounded by 4× the useful bytes — residency stays O(batch).

        Quantized datasets pread rows in the storage dtype and decode
        into ``compute_dtype`` on the way out, so for int8 both the
        transient buffer and the page traffic are ~4× smaller than an
        fp32 store; the ``feature.gather`` profiler op records the
        wire-format bytes actually read.
        """
        rows = np.asarray(rows, dtype=np.int64)
        quant = self.feature_codec == "int8"
        out = np.empty((rows.size, self.feat_dim), dtype=self.compute_dtype)
        if rows.size == 0:
            return out
        wire = 0
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        shard_of = sorted_rows // self.rows_per_shard
        for shard in np.unique(shard_of):
            sel = np.flatnonzero(shard_of == shard)
            local = sorted_rows[sel] - int(shard) * self.rows_per_shard
            scales = self._shard_scales(int(shard)) if quant else None
            lo, hi = int(local[0]), int(local[-1]) + 1
            if hi - lo <= 4 * local.size:
                span = self._pread_rows(int(shard), lo, hi - lo)
                wire += span.nbytes
                picked = span[local - lo]
                if quant:
                    wire += local.size * 4
                    out[order[sel]] = decode_int8(
                        picked, scales[local], out_dtype=self.compute_dtype
                    )
                else:
                    out[order[sel]] = picked
            else:
                breaks = np.flatnonzero(np.diff(local) != 1) + 1
                starts = np.concatenate(([0], breaks))
                ends = np.concatenate((breaks, [local.size]))
                for s, e in zip(starts, ends):
                    run = self._pread_rows(int(shard), int(local[s]), e - s)
                    wire += run.nbytes
                    if quant:
                        wire += (e - s) * 4
                        out[order[sel[s:e]]] = decode_int8(
                            run, scales[local[s:e]], out_dtype=self.compute_dtype
                        )
                    else:
                        out[order[sel[s:e]]] = run
        record_op(
            "feature.gather",
            flops=2.0 * out.size if quant else 0.0,
            bytes_read=wire,
            bytes_written=out.nbytes,
        )
        return out

    def gather_labels(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        return np.asarray(self.labels[rows], dtype=self.labels.dtype)

    # -- Integrity ------------------------------------------------------
    def _check_layout(self) -> None:
        """Cheap open-time check: every manifest file exists with the
        recorded size (full hashing is :meth:`verify`)."""
        for rel, entry in self.manifest["files"].items():
            path = os.path.join(self.root, rel)
            if not os.path.exists(path):
                raise OnDiskIntegrityError(f"{self.root}: missing file {rel!r}")
            actual = os.path.getsize(path)
            if actual != entry["bytes"]:
                raise OnDiskIntegrityError(
                    f"{self.root}: {rel!r} is {actual} bytes, manifest "
                    f"records {entry['bytes']} (truncated or overwritten?)"
                )

    def verify(self) -> None:
        """Recompute every file's SHA-256 and compare with the manifest.

        Raises :class:`OnDiskIntegrityError` naming the first corrupted
        file; one full sequential read per file, no decompression.
        """
        for rel, entry in sorted(self.manifest["files"].items()):
            actual = _file_sha256(os.path.join(self.root, rel))
            if actual != entry["sha256"]:
                raise OnDiskIntegrityError(
                    f"{self.root}: content fingerprint mismatch for {rel!r} "
                    f"(manifest {entry['sha256'][:12]}…, file {actual[:12]}…) — "
                    "shard corrupted; regenerate the dataset"
                )

    # -- Escape hatch ---------------------------------------------------
    def materialize(self) -> Dataset:
        """Load everything into an in-RAM :class:`Dataset` (small
        datasets, parity tests, exact full-graph evaluation)."""
        n = self.num_vertices
        indptr = np.asarray(self.graph._csc_indptr, dtype=np.int64)
        indices = np.asarray(self.graph._csc_indices, dtype=np.int64)
        dst = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        graph = Graph(
            n, indices, dst,
            vertex_types=np.asarray(self.graph.vertex_types, dtype=np.int64),
            type_names=self.graph.type_names,
        )
        return Dataset(
            name=self.name,
            graph=graph,
            features=self.gather_features(np.arange(n, dtype=np.int64)),
            labels=np.asarray(self.labels),
            train_mask=self.train_mask.copy(),
            val_mask=self.val_mask.copy(),
            test_mask=self.test_mask.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"OnDiskDataset({self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.graph.num_edges}, feat_dim={self.feat_dim}, "
            f"shards={self.num_feature_shards}, root={self.root!r})"
        )


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------

def _prepare_root(root: str) -> None:
    for sub in ("topology", "features", "masks"):
        os.makedirs(os.path.join(root, sub), exist_ok=True)


def _save(root: str, rel: str, arr: np.ndarray) -> str:
    np.save(os.path.join(root, rel.removesuffix(".npy")), arr)
    return rel


def _write_feature_shard(root: str, shard: int, rows: np.ndarray,
                         codec: str | None, rel_files: list[str]) -> None:
    """Write one feature shard, quantizing (plus scale sidecar) if asked."""
    if codec is None:
        rel_files.append(_save(root, _feature_shard_rel(shard), rows))
        return
    q = quantize_rows(rows, codec)
    rel_files.append(_save(root, _feature_shard_rel(shard), q.codes))
    if q.scales is not None:
        rel_files.append(_save(root, _scale_shard_rel(shard), q.scales))


def _codec_meta(codec: str | None, exact_dtype) -> dict:
    """Manifest keys describing the feature codec of a written dataset."""
    if codec is None:
        return {"feature_dtype": str(np.dtype(exact_dtype))}
    storage = _CODEC_STORAGE[codec]
    meta = {"feature_dtype": str(storage), "feature_codec": codec}
    if codec == "int8":
        meta["compute_dtype"] = "float32"
    return meta


def write_ondisk_dataset(dataset: Dataset, root: str,
                         rows_per_shard: int = 4096,
                         quantize: str | None = None) -> dict:
    """Convert an in-RAM :class:`Dataset` to the on-disk layout.

    Feature/label dtypes are preserved exactly unless ``quantize`` names
    a codec (``int8``/``float16``/``float32``), in which case feature
    shards are stored in that codec (int8 with per-row float32 scale
    sidecars) and gathers dequantize on read.  Returns the manifest.
    """
    if rows_per_shard <= 0:
        raise ValueError("rows_per_shard must be positive")
    codec = None if quantize is None else resolve_codec(quantize)
    _prepare_root(root)
    graph = dataset.graph
    n = graph.num_vertices
    rel_files: list[str] = []
    csc_indptr, csc_indices = graph.csc
    csr_indptr, csr_indices = graph.csr
    rel_files.append(_save(root, "topology/csc.indptr.npy", np.asarray(csc_indptr, dtype=np.int64)))
    rel_files.append(_save(root, "topology/csc.indices.npy", np.asarray(csc_indices, dtype=np.int64)))
    rel_files.append(_save(root, "topology/csr.indptr.npy", np.asarray(csr_indptr, dtype=np.int64)))
    rel_files.append(_save(root, "topology/csr.indices.npy", np.asarray(csr_indices, dtype=np.int64)))
    rel_files.append(_save(root, "vertex_types.npy", np.asarray(graph.vertex_types, dtype=np.int64)))
    rel_files.append(_save(root, "labels.npy", dataset.labels))
    rel_files.append(_save(root, "masks/train.npy", dataset.train_mask.astype(bool)))
    rel_files.append(_save(root, "masks/val.npy", dataset.val_mask.astype(bool)))
    rel_files.append(_save(root, "masks/test.npy", dataset.test_mask.astype(bool)))
    num_shards = max(1, -(-n // rows_per_shard))
    for shard in range(num_shards):
        row0 = shard * rows_per_shard
        row1 = min(row0 + rows_per_shard, n)
        _write_feature_shard(root, shard, dataset.features[row0:row1],
                             codec, rel_files)
    meta = {
        "name": dataset.name,
        "num_vertices": n,
        "num_edges": graph.num_edges,
        "feat_dim": int(dataset.features.shape[1]),
        "num_classes": int(dataset.num_classes),
        "label_dtype": str(dataset.labels.dtype),
        "rows_per_shard": rows_per_shard,
        "num_feature_shards": num_shards,
        "num_types": int(graph.num_types),
        "type_names": list(graph.type_names),
    }
    meta.update(_codec_meta(codec, dataset.features.dtype))
    return _write_manifest(root, meta, rel_files)


def _streamed_adjacency(root: str, spec: ShardedSyntheticSpec,
                        by_dst: bool) -> tuple[str, str]:
    """Two-pass out-of-core CSC (``by_dst``) or CSR build.

    Pass 1 counts degrees (one O(num_vertices) int64 array); pass 2
    regenerates the identical edge chunks and scatters each chunk's
    endpoints into a preallocated ``.npy`` memmap at per-vertex write
    cursors.  Nothing edge-sized ever lives in RAM beyond one chunk.
    """
    n, m = spec.num_vertices, spec.num_edges
    counts = np.zeros(n, dtype=np.int64)
    for src, dst in edge_chunks(spec):
        np.add.at(counts, dst if by_dst else src, 1)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    kind = "csc" if by_dst else "csr"
    indptr_rel = f"topology/{kind}.indptr.npy"
    indices_rel = f"topology/{kind}.indices.npy"
    _save(root, indptr_rel, indptr)
    indices = np.lib.format.open_memmap(
        os.path.join(root, indices_rel), mode="w+", dtype=np.int64, shape=(m,)
    )
    cursors = indptr[:-1].copy()
    for src, dst in edge_chunks(spec):
        key, val = (dst, src) if by_dst else (src, dst)
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        # Rank within each equal-key run -> position = cursor + rank.
        change = np.flatnonzero(np.diff(key_sorted)) + 1
        run_starts = np.zeros(key_sorted.size, dtype=np.int64)
        run_starts[change] = change
        run_starts = np.maximum.accumulate(run_starts)
        rank = np.arange(key_sorted.size, dtype=np.int64) - run_starts
        positions = cursors[key_sorted] + rank
        indices[positions] = val[order]
        uniq, per_key = np.unique(key_sorted, return_counts=True)
        cursors[uniq] += per_key
    indices.flush()
    del indices
    return indptr_rel, indices_rel


def write_synthetic_ondisk(root: str, spec: ShardedSyntheticSpec,
                           quantize: str | None = None) -> dict:
    """Generate a :class:`ShardedSyntheticSpec` dataset directly to disk.

    Edge chunks, feature shards, labels and masks are produced and
    written one shard at a time; peak memory is O(num_vertices) for the
    degree/cursor arrays plus one chunk/shard buffer.  ``quantize``
    stores feature shards in a codec (int8 adds per-row scale
    sidecars).  Returns the manifest.
    """
    codec = None if quantize is None else resolve_codec(quantize)
    _prepare_root(root)
    n = spec.num_vertices
    rel_files: list[str] = []
    rel_files.extend(_streamed_adjacency(root, spec, by_dst=True))
    rel_files.extend(_streamed_adjacency(root, spec, by_dst=False))
    rel_files.append(_save(root, "vertex_types.npy", np.zeros(n, dtype=np.int64)))

    labels_mm = np.lib.format.open_memmap(
        os.path.join(root, "labels.npy"), mode="w+", dtype=np.int64, shape=(n,)
    )
    masks = {
        rel: np.lib.format.open_memmap(
            os.path.join(root, f"masks/{rel}.npy"), mode="w+",
            dtype=bool, shape=(n,),
        )
        for rel in ("train", "val", "test")
    }
    centers = class_centers(spec)
    for shard in range(spec.num_row_shards):
        row0, row1 = shard_row_range(spec, shard)
        labels = label_shard(spec, shard)
        labels_mm[row0:row1] = labels
        train, val, test = mask_shards(spec, shard)
        masks["train"][row0:row1] = train
        masks["val"][row0:row1] = val
        masks["test"][row0:row1] = test
        _write_feature_shard(
            root, shard,
            feature_shard(spec, shard, labels=labels, centers=centers),
            codec, rel_files,
        )
    labels_mm.flush()
    del labels_mm
    for mm in masks.values():
        mm.flush()
    del masks
    rel_files.append("labels.npy")
    rel_files.extend(f"masks/{rel}.npy" for rel in ("train", "val", "test"))

    meta = {
        "name": spec.name,
        "num_vertices": n,
        "num_edges": spec.num_edges,
        "feat_dim": spec.feat_dim,
        "num_classes": spec.num_classes,
        "label_dtype": "int64",
        "rows_per_shard": spec.rows_per_shard,
        "num_feature_shards": spec.num_row_shards,
        "num_types": 1,
        "type_names": ["type0"],
        "generator": spec.to_dict(),
    }
    meta.update(_codec_meta(codec, spec.feature_dtype))
    return _write_manifest(root, meta, rel_files)
