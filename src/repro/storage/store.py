"""Graph / feature / checkpoint persistence — the Figure 12 storage tier.

FlexGraph's bottom layer is a storage system (DFS in the paper) that
manages graph data and vertex features for the NN framework, graph
engine and load balancer.  This module provides the single-node
equivalent over a local directory: versioned ``.npz`` artifacts with a
manifest, covering

* whole graphs (:func:`save_graph` / :func:`load_graph`);
* datasets — graph + features + labels + splits
  (:func:`save_dataset` / :func:`load_dataset_from`);
* model checkpoints (:func:`save_checkpoint` / :func:`load_checkpoint`);
* per-worker partition shards for distributed training
  (:class:`PartitionedStore`), mirroring how FlexGraph assigns each
  shared-nothing worker its partition's HDGs and features.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..datasets.synthetic import Dataset
from ..graph.graph import Graph
from ..tensor.quant import dequantize_rows, quantize_rows, resolve_codec

__all__ = [
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset_from",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_metadata",
    "PartitionedStore",
]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str) -> None:
    """Serialize a graph to ``path`` (.npz)."""
    src, dst = graph.edges()
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        num_vertices=np.int64(graph.num_vertices),
        src=src,
        dst=dst,
        vertex_types=graph.vertex_types,
        type_names=np.array(graph.type_names, dtype=object),
    )


def load_graph(path: str) -> Graph:
    """Load a graph saved by :func:`save_graph`."""
    with np.load(path, allow_pickle=True) as data:
        _check_version(int(data["format_version"]), path)
        return Graph(
            int(data["num_vertices"]),
            data["src"],
            data["dst"],
            vertex_types=data["vertex_types"],
            type_names=[str(t) for t in data["type_names"]],
        )


def save_dataset(dataset: Dataset, path: str) -> None:
    """Serialize a full dataset (graph + features + labels + splits)."""
    src, dst = dataset.graph.edges()
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        name=np.array(dataset.name, dtype=object),
        num_vertices=np.int64(dataset.graph.num_vertices),
        src=src,
        dst=dst,
        vertex_types=dataset.graph.vertex_types,
        type_names=np.array(dataset.graph.type_names, dtype=object),
        features=dataset.features,
        labels=dataset.labels,
        train_mask=dataset.train_mask,
        val_mask=dataset.val_mask,
        test_mask=dataset.test_mask,
    )


def load_dataset_from(path: str) -> Dataset:
    """Load a dataset saved by :func:`save_dataset`."""
    with np.load(path, allow_pickle=True) as data:
        _check_version(int(data["format_version"]), path)
        graph = Graph(
            int(data["num_vertices"]),
            data["src"],
            data["dst"],
            vertex_types=data["vertex_types"],
            type_names=[str(t) for t in data["type_names"]],
        )
        return Dataset(
            name=str(data["name"]),
            graph=graph,
            features=data["features"],
            labels=data["labels"],
            train_mask=data["train_mask"],
            val_mask=data["val_mask"],
            test_mask=data["test_mask"],
        )


def save_checkpoint(state: dict[str, np.ndarray], path: str,
                    metadata: dict | None = None) -> None:
    """Persist a model ``state_dict`` plus optional JSON metadata.

    The dotted parameter names of ``Module.state_dict()`` are stored
    as-is; metadata (epoch, loss, config) rides along as a JSON string.
    """
    payload = {f"param::{name}": value for name, value in state.items()}
    payload["format_version"] = np.int64(_FORMAT_VERSION)
    payload["metadata"] = np.array(json.dumps(metadata or {}), dtype=object)
    np.savez_compressed(path, **payload)


def load_checkpoint(path: str) -> tuple[dict[str, np.ndarray], dict]:
    """Load a checkpoint; returns (state_dict, metadata)."""
    with np.load(path, allow_pickle=True) as data:
        _check_version(int(data["format_version"]), path)
        state = {
            key[len("param::"):]: data[key]
            for key in data.files
            if key.startswith("param::")
        }
        metadata = json.loads(str(data["metadata"]))
    return state, metadata


def checkpoint_metadata(model, graph: Graph | None = None,
                        extra: dict | None = None) -> dict:
    """Round-trippable checkpoint metadata for a NAU model.

    Records what a loader needs to *verify* compatibility before serving
    the state: the model class name, per-layer output dims, and — when a
    graph is given — its structural fingerprint, so an
    :class:`repro.serve.InferenceSession` can refuse a checkpoint whose
    graph no longer matches the one it is pinned to.
    """
    meta = {
        "model_class": type(model).__name__,
        "model_name": getattr(model, "name", type(model).__name__),
        "layer_dims": [int(layer.output_dim) for layer in model.layers],
    }
    if graph is not None:
        meta["graph_fingerprint"] = graph.fingerprint()
        meta["num_vertices"] = int(graph.num_vertices)
    if extra:
        meta.update(extra)
    return meta


def _check_version(version: int, path: str) -> None:
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: format version {version} not supported "
            f"(expected {_FORMAT_VERSION})"
        )


class PartitionedStore:
    """Per-worker shards of a dataset under one directory.

    Mirrors the distributed layout of §5: worker ``w`` owns the features
    and labels of its partition's vertices plus the partition assignment
    needed to locate remote leaves.  Shards round-trip through
    :meth:`write_shards` / :meth:`read_shard`.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _shard_path(self, worker: int) -> str:
        return os.path.join(self.root, f"shard_{worker:04d}.npz")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def write_shards(self, dataset: Dataset, labels: np.ndarray, k: int,
                     quantize: str | None = None) -> None:
        """Split ``dataset`` into ``k`` worker shards by partition labels.

        With ``quantize`` (``int8``/``float16``/``float32``) each
        worker's feature block is stored in that codec — int8 rides with
        a per-row float32 ``feature_scales`` sidecar — so a shard's
        feature bytes shrink ~4× and remote feature fetches move the
        wire format.  :meth:`read_shard` dequantizes on read by default.
        """
        codec = None if quantize is None else resolve_codec(quantize)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (dataset.graph.num_vertices,):
            raise ValueError("partition labels must cover every vertex")
        if labels.size and (labels.min() < 0 or labels.max() >= k):
            raise ValueError("partition label out of range")
        features = np.asarray(dataset.features)
        class_labels = np.asarray(dataset.labels)
        stored_dtype = features.dtype
        for worker in range(k):
            owned = np.flatnonzero(labels == worker)
            payload = {
                "format_version": np.int64(_FORMAT_VERSION),
                "worker": np.int64(worker),
                "owned_vertices": owned,
                "labels": class_labels[owned],
                "train_mask": dataset.train_mask[owned],
            }
            if codec is None:
                payload["features"] = features[owned]
            else:
                q = quantize_rows(features[owned], codec)
                payload["features"] = q.codes
                stored_dtype = q.codes.dtype
                if q.scales is not None:
                    payload["feature_scales"] = q.scales
            np.savez_compressed(self._shard_path(worker), **payload)
        manifest = {
            "format_version": _FORMAT_VERSION,
            "k": k,
            "num_vertices": dataset.graph.num_vertices,
            "dataset": dataset.name,
            # Exact on-disk dtypes; read_shard refuses a shard
            # whose arrays came back promoted or truncated.
            "feature_dtype": str(stored_dtype),
            "label_dtype": str(class_labels.dtype),
        }
        if codec is not None:
            manifest["feature_codec"] = codec
            if codec == "int8":
                manifest["compute_dtype"] = "float32"
        with open(self.manifest_path, "w") as f:
            json.dump(manifest, f)
        np.save(os.path.join(self.root, "partition_labels.npy"), labels)

    def read_manifest(self) -> dict:
        with open(self.manifest_path) as f:
            return json.load(f)

    def read_partition_labels(self) -> np.ndarray:
        return np.load(os.path.join(self.root, "partition_labels.npy"))

    def read_shard(self, worker: int,
                   dequantize: bool = True) -> dict[str, np.ndarray]:
        """Load one worker's shard as a dict of arrays.

        Dtypes are validated against the manifest: features and labels
        must come back exactly as written — a silent float64 promotion
        (or any other drift) raises instead of doubling feature memory.

        Quantized shards (manifest ``feature_codec``) are decoded into
        the compute dtype by default; ``dequantize=False`` hands back
        the raw codes plus the ``feature_scales`` sidecar for callers
        that forward the wire format (e.g. remote feature serving).
        """
        path = self._shard_path(worker)
        if not os.path.exists(path):
            raise FileNotFoundError(f"no shard for worker {worker} under {self.root}")
        with np.load(path) as data:
            _check_version(int(data["format_version"]), path)
            shard = {key: data[key] for key in data.files if key != "format_version"}
        if os.path.exists(self.manifest_path):
            manifest = self.read_manifest()
            for field, key in (("features", "feature_dtype"),
                               ("labels", "label_dtype")):
                want = manifest.get(key)
                if want is not None and str(shard[field].dtype) != want:
                    raise ValueError(
                        f"{path}: {field} dtype {shard[field].dtype} does not "
                        f"match manifest dtype {want}"
                    )
            codec = manifest.get("feature_codec")
            if codec is not None:
                codec = resolve_codec(codec)
                if codec == "int8" and "feature_scales" not in shard:
                    raise ValueError(
                        f"{path}: manifest says int8 features but the shard "
                        "has no feature_scales sidecar"
                    )
                if dequantize and codec != "float32":
                    from ..tensor.quant import QuantizedRows

                    q = QuantizedRows(codec, shard["features"],
                                      shard.pop("feature_scales", None))
                    compute = np.dtype(manifest.get(
                        "compute_dtype", "float32" if codec == "int8" else codec
                    ))
                    shard["features"] = dequantize_rows(q, out_dtype=compute)
        return shard
