"""Synthetic datasets standing in for Reddit, FB91, Twitter and IMDB.

Each dataset bundles a graph with vertex features, labels and train/val/
test masks.  Scales are laptop-sized; the *structural* property each
paper dataset contributes to the evaluation is preserved (see
``repro.graph.generators``).  Features are community/type-correlated so
models actually learn (training accuracy rises), which keeps the
examples honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.generators import community_graph, heterogeneous_graph, power_law_graph
from ..graph.graph import Graph

__all__ = [
    "Dataset", "reddit_like", "fb91_like", "twitter_like", "imdb_like",
    "ShardedSyntheticSpec", "edge_chunks", "label_shard", "feature_shard",
    "class_centers", "mask_shards", "shard_row_range",
]


@dataclass
class Dataset:
    """A graph learning task: graph + features + labels + splits."""

    name: str
    graph: Graph
    features: np.ndarray      # (num_vertices, feat_dim) float
    labels: np.ndarray        # (num_vertices,) int
    train_mask: np.ndarray    # (num_vertices,) bool
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    @property
    def feat_dim(self) -> int:
        return int(self.features.shape[1])

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, vertices={self.graph.num_vertices}, "
            f"edges={self.graph.num_edges}, feat_dim={self.feat_dim}, "
            f"classes={self.num_classes})"
        )


def _make_splits(n: int, rng: np.random.Generator,
                 train: float = 0.6, val: float = 0.2) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = rng.permutation(n)
    n_train = int(n * train)
    n_val = int(n * val)
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True
    return train_mask, val_mask, test_mask


def _class_features(labels: np.ndarray, feat_dim: int, num_classes: int,
                    rng: np.random.Generator, signal: float = 1.0) -> np.ndarray:
    """Gaussian features whose means differ per class (learnable signal)."""
    centers = rng.standard_normal((num_classes, feat_dim)) * signal
    return centers[labels] + rng.standard_normal((labels.size, feat_dim)) * 0.5


def reddit_like(num_vertices: int = 2000, num_labels: int = 8,
                avg_degree: float = 50.0, feat_dim: int = 64,
                seed: int = 0) -> Dataset:
    """Dense community graph (Reddit stand-in: 41 labels, avg degree ~100
    in the paper; scaled down here)."""
    rng = np.random.default_rng(seed)
    graph = community_graph(num_vertices, num_labels, avg_degree,
                            intra_prob=0.9, seed=seed)
    labels = graph.communities.copy()  # type: ignore[attr-defined]
    # The paper's MAGNN runs assign 3 vertex types to homogeneous graphs.
    graph = graph.with_vertex_types(rng.integers(0, 3, size=num_vertices))
    graph.communities = labels  # type: ignore[attr-defined]
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("reddit-like", graph, features, labels,
                   *_make_splits(num_vertices, rng))


def fb91_like(num_vertices: int = 4000, num_labels: int = 10,
              avg_degree: float = 16.0, feat_dim: int = 50,
              seed: int = 1) -> Dataset:
    """Power-law LDBC-style graph (FB91 stand-in: 50 features, 10 labels)."""
    rng = np.random.default_rng(seed)
    graph = power_law_graph(num_vertices, avg_degree, seed=seed)
    graph = graph.with_vertex_types(rng.integers(0, 3, size=num_vertices))
    labels = rng.integers(0, num_labels, size=num_vertices)
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("fb91-like", graph, features, labels,
                   *_make_splits(num_vertices, rng))


def twitter_like(num_vertices: int = 6000, num_labels: int = 5,
                 avg_degree: float = 20.0, feat_dim: int = 50,
                 seed: int = 2) -> Dataset:
    """Heavier-tailed social graph (Twitter stand-in: 50 features, 5 labels)."""
    rng = np.random.default_rng(seed)
    graph = power_law_graph(num_vertices, avg_degree, seed=seed)
    graph = graph.with_vertex_types(rng.integers(0, 3, size=num_vertices))
    labels = rng.integers(0, num_labels, size=num_vertices)
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("twitter-like", graph, features, labels,
                   *_make_splits(num_vertices, rng))


def imdb_like(num_movies: int = 600, num_directors: int = 120,
              num_actors: int = 400, num_labels: int = 4,
              feat_dim: int = 64, seed: int = 3) -> Dataset:
    """Heterogeneous movie graph (IMDB stand-in: 3 vertex types, 4 labels).

    Labels are movie genres; directors/actors inherit the modal genre of
    their movies so all vertices carry a label for full-graph training.
    """
    rng = np.random.default_rng(seed)
    graph = heterogeneous_graph(num_movies, num_directors, num_actors, seed=seed)
    n = graph.num_vertices
    labels = np.zeros(n, dtype=np.int64)
    labels[:num_movies] = rng.integers(0, num_labels, size=num_movies)
    # Non-movie vertices take the most common genre among adjacent movies.
    for v in range(num_movies, n):
        nbrs = graph.out_neighbors(v)
        movie_nbrs = nbrs[nbrs < num_movies]
        if movie_nbrs.size:
            labels[v] = np.bincount(labels[movie_nbrs]).argmax()
        else:
            labels[v] = rng.integers(0, num_labels)
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("imdb-like", graph, features, labels, *_make_splits(n, rng))


# ----------------------------------------------------------------------
# Shard-by-shard generation (out-of-core datasets)
# ----------------------------------------------------------------------
# The generators above materialize the whole graph; these emit it in
# bounded chunks so ``repro.storage.ondisk`` can write 10^7-10^8-edge
# datasets without ever holding the edge list, the feature matrix or
# even one full adjacency array in RAM.  Every chunk/shard is seeded
# independently (``SeedSequence([seed, tag, index])``) so the stream is
# deterministic *and* re-playable: the two-pass CSC/CSR build in
# ``write_synthetic_ondisk`` regenerates identical chunks on each pass.

_EDGE_TAG = 0xED6E
_LABEL_TAG = 0x1AB5
_FEAT_TAG = 0xFEA7
_MASK_TAG = 0x3A5C


@dataclass(frozen=True)
class ShardedSyntheticSpec:
    """Recipe for a power-law graph dataset generated shard-by-shard.

    Edges are drawn i.i.d. with heavy-tailed endpoints (inverse-CDF
    sampling of ``P(rank <= k) = (k/n)^(1-s)``), which makes every chunk
    independent of every other — the property that allows streaming
    generation.  Destination ranks are rotated by ``n // 2`` so in- and
    out-hubs are distinct vertices.
    """

    name: str = "sharded-synthetic"
    num_vertices: int = 100_000
    num_edges: int = 1_000_000
    feat_dim: int = 32
    num_classes: int = 8
    seed: int = 0
    src_exponent: float = 0.55
    dst_exponent: float = 0.45
    edges_per_chunk: int = 1_000_000
    rows_per_shard: int = 65_536
    train_fraction: float = 0.6
    val_fraction: float = 0.2
    feature_dtype: str = "float32"
    signal: float = 1.0

    @property
    def num_edge_chunks(self) -> int:
        return max(1, -(-self.num_edges // self.edges_per_chunk))

    @property
    def num_row_shards(self) -> int:
        return max(1, -(-self.num_vertices // self.rows_per_shard))

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(self.num_vertices, 1)

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ShardedSyntheticSpec":
        return cls(**d)


def _power_law_ranks(u: np.ndarray, n: int, exponent: float) -> np.ndarray:
    """Map uniforms to ranks with ``P(rank <= k) ~ (k/n)^(1-s)``."""
    ranks = np.floor(n * u ** (1.0 / (1.0 - exponent))).astype(np.int64)
    return np.minimum(ranks, n - 1)


def shard_row_range(spec: ShardedSyntheticSpec, shard: int) -> tuple[int, int]:
    """Global ``[row0, row1)`` vertex range of a feature/label shard."""
    if not 0 <= shard < spec.num_row_shards:
        raise IndexError(f"shard {shard} out of range (have {spec.num_row_shards})")
    row0 = shard * spec.rows_per_shard
    return row0, min(row0 + spec.rows_per_shard, spec.num_vertices)


def edge_chunks(spec: ShardedSyntheticSpec):
    """Yield ``(src, dst)`` int64 chunk pairs, never more than
    ``edges_per_chunk`` edges at a time.  Deterministic per chunk."""
    n = spec.num_vertices
    rotate = n // 2 or 1
    remaining = spec.num_edges
    for chunk in range(spec.num_edge_chunks):
        m = min(spec.edges_per_chunk, remaining)
        remaining -= m
        rng = np.random.default_rng(
            np.random.SeedSequence([spec.seed, _EDGE_TAG, chunk])
        )
        src = _power_law_ranks(rng.random(m), n, spec.src_exponent)
        dst = _power_law_ranks(rng.random(m), n, spec.dst_exponent)
        # Rotate destination hubs away from source hubs, drop self-loops
        # by nudging (cheap, keeps the chunk size exact).
        dst = (dst + rotate) % n
        loops = src == dst
        if loops.any():
            dst[loops] = (dst[loops] + 1) % n
        yield src, dst


def _shard_rng(spec: ShardedSyntheticSpec, tag: int, shard: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([spec.seed, tag, shard]))


def label_shard(spec: ShardedSyntheticSpec, shard: int) -> np.ndarray:
    """Labels for one row shard (int64, deterministic per shard)."""
    row0, row1 = shard_row_range(spec, shard)
    rng = _shard_rng(spec, _LABEL_TAG, shard)
    return rng.integers(0, spec.num_classes, size=row1 - row0, dtype=np.int64)


def class_centers(spec: ShardedSyntheticSpec) -> np.ndarray:
    """The (num_classes, feat_dim) per-class feature means — tiny, drawn
    once from the base seed so every shard agrees on them."""
    rng = np.random.default_rng(np.random.SeedSequence([spec.seed, _FEAT_TAG]))
    return (rng.standard_normal((spec.num_classes, spec.feat_dim))
            * spec.signal)


def feature_shard(spec: ShardedSyntheticSpec, shard: int,
                  labels: np.ndarray | None = None,
                  centers: np.ndarray | None = None) -> np.ndarray:
    """Features for one row shard: class-mean + noise, like
    :func:`_class_features` but never wider than the shard."""
    row0, row1 = shard_row_range(spec, shard)
    if labels is None:
        labels = label_shard(spec, shard)
    if centers is None:
        centers = class_centers(spec)
    rng = _shard_rng(spec, _FEAT_TAG, shard)
    noise = rng.standard_normal((row1 - row0, spec.feat_dim)) * 0.5
    return (centers[labels] + noise).astype(spec.feature_dtype, copy=False)


def mask_shards(spec: ShardedSyntheticSpec, shard: int
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(train, val, test) boolean masks for one row shard."""
    row0, row1 = shard_row_range(spec, shard)
    rng = _shard_rng(spec, _MASK_TAG, shard)
    u = rng.random(row1 - row0)
    train = u < spec.train_fraction
    val = (~train) & (u < spec.train_fraction + spec.val_fraction)
    return train, val, ~(train | val)
