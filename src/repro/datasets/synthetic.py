"""Synthetic datasets standing in for Reddit, FB91, Twitter and IMDB.

Each dataset bundles a graph with vertex features, labels and train/val/
test masks.  Scales are laptop-sized; the *structural* property each
paper dataset contributes to the evaluation is preserved (see
``repro.graph.generators``).  Features are community/type-correlated so
models actually learn (training accuracy rises), which keeps the
examples honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.generators import community_graph, heterogeneous_graph, power_law_graph
from ..graph.graph import Graph

__all__ = ["Dataset", "reddit_like", "fb91_like", "twitter_like", "imdb_like"]


@dataclass
class Dataset:
    """A graph learning task: graph + features + labels + splits."""

    name: str
    graph: Graph
    features: np.ndarray      # (num_vertices, feat_dim) float
    labels: np.ndarray        # (num_vertices,) int
    train_mask: np.ndarray    # (num_vertices,) bool
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    @property
    def feat_dim(self) -> int:
        return int(self.features.shape[1])

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, vertices={self.graph.num_vertices}, "
            f"edges={self.graph.num_edges}, feat_dim={self.feat_dim}, "
            f"classes={self.num_classes})"
        )


def _make_splits(n: int, rng: np.random.Generator,
                 train: float = 0.6, val: float = 0.2) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = rng.permutation(n)
    n_train = int(n * train)
    n_val = int(n * val)
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train : n_train + n_val]] = True
    test_mask[order[n_train + n_val :]] = True
    return train_mask, val_mask, test_mask


def _class_features(labels: np.ndarray, feat_dim: int, num_classes: int,
                    rng: np.random.Generator, signal: float = 1.0) -> np.ndarray:
    """Gaussian features whose means differ per class (learnable signal)."""
    centers = rng.standard_normal((num_classes, feat_dim)) * signal
    return centers[labels] + rng.standard_normal((labels.size, feat_dim)) * 0.5


def reddit_like(num_vertices: int = 2000, num_labels: int = 8,
                avg_degree: float = 50.0, feat_dim: int = 64,
                seed: int = 0) -> Dataset:
    """Dense community graph (Reddit stand-in: 41 labels, avg degree ~100
    in the paper; scaled down here)."""
    rng = np.random.default_rng(seed)
    graph = community_graph(num_vertices, num_labels, avg_degree,
                            intra_prob=0.9, seed=seed)
    labels = graph.communities.copy()  # type: ignore[attr-defined]
    # The paper's MAGNN runs assign 3 vertex types to homogeneous graphs.
    graph = graph.with_vertex_types(rng.integers(0, 3, size=num_vertices))
    graph.communities = labels  # type: ignore[attr-defined]
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("reddit-like", graph, features, labels,
                   *_make_splits(num_vertices, rng))


def fb91_like(num_vertices: int = 4000, num_labels: int = 10,
              avg_degree: float = 16.0, feat_dim: int = 50,
              seed: int = 1) -> Dataset:
    """Power-law LDBC-style graph (FB91 stand-in: 50 features, 10 labels)."""
    rng = np.random.default_rng(seed)
    graph = power_law_graph(num_vertices, avg_degree, seed=seed)
    graph = graph.with_vertex_types(rng.integers(0, 3, size=num_vertices))
    labels = rng.integers(0, num_labels, size=num_vertices)
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("fb91-like", graph, features, labels,
                   *_make_splits(num_vertices, rng))


def twitter_like(num_vertices: int = 6000, num_labels: int = 5,
                 avg_degree: float = 20.0, feat_dim: int = 50,
                 seed: int = 2) -> Dataset:
    """Heavier-tailed social graph (Twitter stand-in: 50 features, 5 labels)."""
    rng = np.random.default_rng(seed)
    graph = power_law_graph(num_vertices, avg_degree, seed=seed)
    graph = graph.with_vertex_types(rng.integers(0, 3, size=num_vertices))
    labels = rng.integers(0, num_labels, size=num_vertices)
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("twitter-like", graph, features, labels,
                   *_make_splits(num_vertices, rng))


def imdb_like(num_movies: int = 600, num_directors: int = 120,
              num_actors: int = 400, num_labels: int = 4,
              feat_dim: int = 64, seed: int = 3) -> Dataset:
    """Heterogeneous movie graph (IMDB stand-in: 3 vertex types, 4 labels).

    Labels are movie genres; directors/actors inherit the modal genre of
    their movies so all vertices carry a label for full-graph training.
    """
    rng = np.random.default_rng(seed)
    graph = heterogeneous_graph(num_movies, num_directors, num_actors, seed=seed)
    n = graph.num_vertices
    labels = np.zeros(n, dtype=np.int64)
    labels[:num_movies] = rng.integers(0, num_labels, size=num_movies)
    # Non-movie vertices take the most common genre among adjacent movies.
    for v in range(num_movies, n):
        nbrs = graph.out_neighbors(v)
        movie_nbrs = nbrs[nbrs < num_movies]
        if movie_nbrs.size:
            labels[v] = np.bincount(labels[movie_nbrs]).argmax()
        else:
            labels[v] = rng.integers(0, num_labels)
    features = _class_features(labels, feat_dim, num_labels, rng)
    return Dataset("imdb-like", graph, features, labels, *_make_splits(n, rng))
