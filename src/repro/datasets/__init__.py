"""``repro.datasets`` — synthetic stand-ins for the paper's datasets."""

from .registry import DATASET_NAMES, load_dataset
from .synthetic import Dataset, fb91_like, imdb_like, reddit_like, twitter_like

__all__ = [
    "Dataset", "load_dataset", "DATASET_NAMES",
    "reddit_like", "fb91_like", "twitter_like", "imdb_like",
]
