"""Dataset registry: look up the paper's datasets by name, with size tiers.

Benchmarks reference datasets by the paper's names; the ``scale``
parameter trades fidelity for runtime (``"tiny"`` for unit tests,
``"bench"`` for the benchmark harness).
"""

from __future__ import annotations

from .synthetic import Dataset, fb91_like, imdb_like, reddit_like, twitter_like

__all__ = ["load_dataset", "DATASET_NAMES"]

DATASET_NAMES = ("reddit", "fb91", "twitter", "imdb")

_SCALES = {
    "tiny": 0.1,
    "small": 0.35,
    "bench": 1.0,
}


def load_dataset(name: str, scale: str = "bench", seed: int | None = None) -> Dataset:
    """Load a synthetic stand-in for one of the paper's datasets.

    Parameters
    ----------
    name:
        One of ``reddit``, ``fb91``, ``twitter``, ``imdb``.
    scale:
        ``tiny`` (unit tests), ``small`` or ``bench`` (benchmarks).
    seed:
        Optional override of the generator seed.
    """
    if scale not in _SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    f = _SCALES[scale]
    kwargs = {} if seed is None else {"seed": seed}
    if name == "reddit":
        return reddit_like(num_vertices=max(100, int(2000 * f)), **kwargs)
    if name == "fb91":
        return fb91_like(num_vertices=max(100, int(4000 * f)), **kwargs)
    if name == "twitter":
        return twitter_like(num_vertices=max(100, int(6000 * f)), **kwargs)
    if name == "imdb":
        return imdb_like(
            num_movies=max(40, int(600 * f)),
            num_directors=max(10, int(120 * f)),
            num_actors=max(25, int(400 * f)),
            **kwargs,
        )
    raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
