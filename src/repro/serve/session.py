"""Inference sessions: checkpoint + pinned graph -> seed-restricted
``predict``/``embed``.

A session is the serve-time counterpart of
:class:`~repro.core.engine.FlexGraphEngine`: instead of a full-graph
forward per call it computes, per request, only the seed-restricted
blocks (the same block construction sampled mini-batch training uses —
:func:`repro.core.sampling.build_block`), and it fills every layer's
outputs through the versioned :class:`~repro.serve.cache.EmbeddingCache`
so hot vertices are never recomputed.

Exactness: with ``fanouts=None`` (the default) blocks keep full
neighborhoods, so responses are numerically identical to a full-graph
``engine.predict``/``embed`` over the same pinned HDG.  INFA models can
opt into per-request fan-out sampling (``fanouts=[k, ...]``) to bound
tail latency at the cost of exactness — cached rows then memoize the
first sample drawn for a vertex.

Dynamic graphs: :meth:`InferenceSession.apply_edge_changes` evolves the
pinned graph, bumps the :class:`~repro.serve.cache.GraphVersion`, and
evicts exactly the affected vertices per layer (hop-expanded).  With a
:class:`~repro.core.dynamic.MetapathHDGMaintainer` attached, the
touched-root sets the maintainer already computes drive the eviction;
for the DNFA adjacency fast path the changed edges' endpoints do.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.dynamic import MetapathHDGMaintainer
from ..core.hdg import HDG
from ..core.hybrid import ExecutionStrategy
from ..core.nau import NAUModel, SelectionScope
from ..core.sampling import build_block
from ..graph.graph import Graph
from ..storage.store import load_checkpoint
from ..tensor.plans import get_plan_cache
from ..tensor.quant import quantize_rows, resolve_codec
from ..tensor.tensor import Tensor, no_grad
from .cache import EmbeddingCache, GraphVersion, HDGBlockCache, expand_affected

__all__ = ["InferenceSession", "CheckpointMismatch"]


class CheckpointMismatch(ValueError):
    """The checkpoint's metadata contradicts the session's model/graph."""


class InferenceSession:
    """Online inference over a pinned (model, graph, features) triple.

    Parameters
    ----------
    model:
        The NAU model to serve (its parameters are overwritten when a
        ``checkpoint`` is given).  Kept in eval mode for the session's
        lifetime.
    graph:
        The pinned input graph.
    features:
        ``(num_vertices, feat_dim)`` input features.
    checkpoint:
        Optional path to a ``save_checkpoint`` artifact; metadata written
        by :func:`repro.storage.checkpoint_metadata` is verified (model
        class, layer dims, graph fingerprint) before the state is loaded.
    hdg:
        Optional pre-built model-level HDG to pin (e.g. the exact HDG a
        training engine used); default builds one via the model's
        NeighborSelection.
    maintainer:
        Optional :class:`MetapathHDGMaintainer` owning the HDG over an
        evolving graph (INHA serving); ``graph``/``hdg`` then default to
        the maintainer's.
    fanouts:
        Per-layer fan-out budgets for sampled (approximate) serving;
        ``None`` entries (or ``fanouts=None``) keep exact neighborhoods.
    feature_dtype:
        ``None`` pins features exactly as given; ``"float32"`` /
        ``"float16"`` / ``"int8"`` stores them quantized (int8 with
        per-row scales) and dequantizes on gather, shrinking the pinned
        footprint up to ~8× for float64 inputs.
    cache_dtype:
        Storage codec for the embedding cache (see
        :class:`~repro.serve.cache.EmbeddingCache`); ``"int8"`` holds
        ~4×–8× the vertices per byte budget, lifting warm hit rate.
    """

    def __init__(
        self,
        model: NAUModel,
        graph: Graph | None = None,
        features: np.ndarray | None = None,
        *,
        checkpoint: str | None = None,
        hdg: HDG | None = None,
        maintainer: MetapathHDGMaintainer | None = None,
        fanouts: list[int | None] | None = None,
        strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
        seed: int = 0,
        embed_cache_bytes: int = 64 * 1024 * 1024,
        block_cache_bytes: int = 16 * 1024 * 1024,
        feature_dtype: str | None = None,
        cache_dtype: str | None = None,
    ):
        if graph is None:
            if maintainer is None:
                raise ValueError("need a graph (or a maintainer that owns one)")
            graph = maintainer.graph
        if features is None:
            raise ValueError("serving needs pinned vertex features")
        self.model = model
        self.graph = graph
        self.maintainer = maintainer
        self.strategy = ExecutionStrategy.parse(strategy)
        feats = np.asarray(features)
        if feats.shape[0] != graph.num_vertices:
            raise ValueError("features must cover every vertex of the graph")
        if feature_dtype is None:
            self._features = feats
            self._qfeatures = None
            self._feature_out_dtype = feats.dtype
        else:
            codec = resolve_codec(feature_dtype)
            self._features = None
            self._qfeatures = quantize_rows(feats, codec)
            self._feature_out_dtype = np.dtype(
                np.float32 if codec == "int8" else codec
            )
        if fanouts is not None and len(fanouts) != model.num_layers:
            raise ValueError(
                f"need one fanout per layer ({model.num_layers}), got {len(fanouts)}"
            )
        self.fanouts = list(fanouts) if fanouts is not None else [None] * model.num_layers
        self._rng = np.random.default_rng(seed)
        self._lock = threading.RLock()

        if checkpoint is not None:
            self.load_checkpoint(checkpoint)
        self.model.eval()

        if hdg is None:
            hdg = (maintainer.build_hdg() if maintainer is not None
                   else model.neighbor_selection(graph, self._rng))
        self._check_hdg(hdg)
        self.hdg = hdg

        self.version = GraphVersion()
        self.embed_cache = EmbeddingCache(embed_cache_bytes,
                                          store_dtype=cache_dtype)
        self.block_cache = HDGBlockCache(block_cache_bytes)

    # ------------------------------------------------------------------
    # Checkpoint loading (with round-trip verification)
    # ------------------------------------------------------------------
    def load_checkpoint(self, path: str) -> dict:
        """Load model parameters from ``path`` after verifying metadata.

        Raises :class:`CheckpointMismatch` when the stored model class,
        layer dims or graph fingerprint contradict this session's model
        and pinned graph.  Returns the checkpoint metadata.
        """
        state, meta = load_checkpoint(path)
        stored_class = meta.get("model_class")
        if stored_class is not None and stored_class != type(self.model).__name__:
            raise CheckpointMismatch(
                f"{path}: checkpoint was saved from model class "
                f"{stored_class!r}, session model is "
                f"{type(self.model).__name__!r}"
            )
        stored_dims = meta.get("layer_dims")
        own_dims = [int(layer.output_dim) for layer in self.model.layers]
        if stored_dims is not None and list(stored_dims) != own_dims:
            raise CheckpointMismatch(
                f"{path}: checkpoint layer dims {stored_dims} do not match "
                f"the session model's {own_dims}"
            )
        stored_fp = meta.get("graph_fingerprint")
        if stored_fp is not None:
            own_fp = self.graph.fingerprint()
            if stored_fp != own_fp:
                raise CheckpointMismatch(
                    f"{path}: checkpoint graph fingerprint {stored_fp} does "
                    f"not match the pinned graph's {own_fp} — the model was "
                    f"trained on a different graph; rebuild the session with "
                    f"the training graph or re-train"
                )
        self.model.load_state_dict(state)
        return meta

    def _check_hdg(self, hdg: HDG) -> None:
        if not np.array_equal(
            hdg.roots, np.arange(self.graph.num_vertices, dtype=np.int64)
        ):
            raise ValueError(
                "serving expects HDG roots to cover all vertices in id order "
                "(every model-level NeighborSelection in repro produces this)"
            )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return self.model.num_layers

    def embed(self, seeds: np.ndarray) -> np.ndarray:
        """Final-layer rows for ``seeds`` (logits for classifier heads)."""
        seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        if seeds.size == 0:
            return np.empty((0, self.model.layers[-1].output_dim))
        if seeds.min() < 0 or seeds.max() >= self.graph.num_vertices:
            raise ValueError("seed vertex id out of range")
        with self._lock:
            uniq, inverse = np.unique(seeds, return_inverse=True)
            rows = self._rows(self.num_layers, uniq)
            return rows[inverse].copy()

    def predict(self, seeds: np.ndarray) -> np.ndarray:
        """Argmax class predictions for ``seeds``."""
        return self.embed(seeds).argmax(axis=1)

    def _rows(self, level: int, vertices: np.ndarray) -> np.ndarray:
        """Level-``level`` output rows for ``vertices`` (level 0 = input
        features), served from cache where possible."""
        if level == 0:
            if self._qfeatures is not None:
                return self._qfeatures.dequantize(
                    vertices, out_dtype=self._feature_out_dtype
                )
            return self._features[vertices]
        hit_mask, hit_rows = self.embed_cache.lookup(level, vertices)
        missing = vertices[~hit_mask]
        computed: np.ndarray | None = None
        if missing.size:
            block = self._block(level, missing)
            prev_need = (
                np.unique(np.concatenate([missing, block.leaf_vertices]))
                if block.leaf_vertices.size else missing
            )
            prev_rows = self._rows(level - 1, prev_need)
            full = np.zeros(
                (self.graph.num_vertices, prev_rows.shape[1]),
                dtype=prev_rows.dtype,
            )
            full[prev_need] = prev_rows
            h = Tensor(full)
            layer = self.model.layers[level - 1]
            with no_grad():
                nbr = layer.aggregation(h, block, self.strategy)
                out = layer.update(h[missing], nbr)
            computed = out.numpy()
            self.embed_cache.store(level, missing, computed, self.version.value)
        dim = (computed.shape[1] if computed is not None else hit_rows[0].shape[0])
        dtype = computed.dtype if computed is not None else hit_rows[0].dtype
        result = np.empty((vertices.size, dim), dtype=dtype)
        if hit_rows:
            result[hit_mask] = np.stack(hit_rows)
        if computed is not None:
            result[~hit_mask] = computed
        return result

    def _block(self, level: int, roots: np.ndarray) -> HDG:
        fanout = self.fanouts[level - 1]
        version = self.version.value
        # Sampled blocks are draw-dependent; caching one draw per root
        # set is the INFA memoization the docstring describes.
        cached = self.block_cache.get(level, version, fanout, roots)
        if cached is not None:
            return cached
        block = build_block(self.hdg, roots, fanout, self._rng)
        self.block_cache.put(level, version, fanout, roots, block)
        return block

    # ------------------------------------------------------------------
    # Dynamic graph updates + targeted invalidation
    # ------------------------------------------------------------------
    def apply_edge_changes(
        self,
        added: np.ndarray | None = None,
        removed: np.ndarray | None = None,
    ) -> int:
        """Evolve the pinned graph and invalidate exactly what went stale.

        Returns the number of embedding-cache rows evicted.  With a
        maintainer attached, the HDG is repaired incrementally and the
        maintainer's touched-root set seeds the eviction; on the DNFA
        adjacency fast path the changed edges' destination endpoints do.
        Models with stochastic or opaque NeighborSelection fall back to
        a full flush (their rebuilt HDGs are not comparable entry-wise).
        """
        added_arr = (
            np.empty((0, 2), dtype=np.int64) if added is None
            else np.asarray(added, dtype=np.int64).reshape(-1, 2)
        )
        removed_arr = (
            np.empty((0, 2), dtype=np.int64) if removed is None
            else np.asarray(removed, dtype=np.int64).reshape(-1, 2)
        )
        with self._lock:
            if self.maintainer is not None:
                self.hdg = self.maintainer.apply_edge_changes(
                    added_arr, removed_arr
                )
                self.graph = self.maintainer.graph
                touched = self.maintainer.last_touched_roots
            else:
                graph = self.graph
                if removed_arr.size:
                    graph = graph.with_edges_removed(removed_arr)
                if added_arr.size:
                    graph = graph.with_edges_added(added_arr)
                self.graph = graph
                if (
                    type(self.model).neighbor_selection
                    is NAUModel.neighbor_selection
                    and self.model.selection_scope is SelectionScope.STATIC
                ):
                    # Adjacency fast path: the HDG *is* the graph's CSC,
                    # so only the changed edges' destinations went stale.
                    touched = np.unique(
                        np.concatenate([added_arr[:, 1], removed_arr[:, 1]])
                    )
                else:
                    touched = None  # opaque selection: full flush
                self.hdg = self.model.neighbor_selection(graph, self._rng)
            self._check_hdg(self.hdg)
            self.version.bump()
            self.block_cache.clear()
            if touched is None:
                evicted = len(self.embed_cache)
                self.embed_cache.clear()
                return evicted
            return self._invalidate(touched)

    def _invalidate(self, touched: np.ndarray) -> int:
        """Evict per-layer entries for ``touched`` roots, hop-expanding
        the affected set one layer at a time over the *new* HDG."""
        affected = np.unique(np.asarray(touched, dtype=np.int64))
        evicted = 0
        for level in range(1, self.num_layers + 1):
            if affected.size == 0:
                break
            evicted += self.embed_cache.invalidate(affected, level)
            if level < self.num_layers:
                affected = np.union1d(
                    affected, expand_affected(self.hdg, affected)
                )
        return evicted

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        # Reduction plans ride alongside cached blocks: each cached block
        # HDG keeps its fingerprint, so plan-cache hits track block-cache
        # hits once a block has been aggregated over twice.  The plan
        # cache is process-global (training and serving share it).
        return {
            "graph_version": self.version.value,
            "embed_cache": self.embed_cache.stats(),
            "block_cache": self.block_cache.stats(),
            "plan_cache": get_plan_cache().stats(),
        }
