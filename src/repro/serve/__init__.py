"""``repro.serve`` — online GNN inference serving.

The training side of this repo ends at a checkpoint; this package is
the request/response side: load a checkpoint against a pinned graph
(:class:`InferenceSession`), answer ``predict``/``embed`` for seed sets
via seed-restricted HDG blocks instead of full-graph forwards, coalesce
concurrent requests into blocked forwards
(:class:`~repro.serve.batcher.MicroBatcher`), memoize per-layer
embeddings in a versioned byte-budgeted LRU
(:class:`~repro.serve.cache.EmbeddingCache`) with targeted invalidation
on graph updates, and run it all behind :class:`GNNServer` — a worker
pool with queue-depth-bounded admission control (load shedding),
graceful drain, and SLO accounting through :mod:`repro.obs`.

Quickstart
----------
>>> from repro.serve import InferenceSession, GNNServer
>>> session = InferenceSession(model, ds.graph, ds.features,
...                            checkpoint="model.npz")
>>> with GNNServer(session, max_batch_size=64) as server:
...     classes = server.predict([17, 42])
...     print(server.slo_summary()["latency_ms"]["p99"])

See ``docs/serving.md`` for architecture and operational semantics.
"""

from .batcher import InferenceRequest, MicroBatcher, ServerOverloaded
from .cache import EmbeddingCache, GraphVersion, HDGBlockCache, expand_affected
from .server import GNNServer
from .session import CheckpointMismatch, InferenceSession

__all__ = [
    "InferenceSession",
    "CheckpointMismatch",
    "GNNServer",
    "ServerOverloaded",
    "MicroBatcher",
    "InferenceRequest",
    "EmbeddingCache",
    "HDGBlockCache",
    "GraphVersion",
    "expand_affected",
]
