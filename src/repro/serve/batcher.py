"""Micro-batching request queue: coalesce concurrent seed requests.

Per-seed forwards waste the vectorized aggregation kernels — a blocked
forward over 64 seeds costs barely more than over one.  The batcher
implements the standard max-batch-size / max-delay policy: the first
request in an empty queue starts a delay window; the batch closes when
either the coalesced seed count reaches ``max_batch_size`` or
``max_delay`` elapses, whichever is first.  Results are scattered back
to per-request futures by the server's workers.

Admission control lives here too: the queue is bounded, and
:meth:`MicroBatcher.submit` raises :class:`ServerOverloaded` instead of
queueing unboundedly — load shedding keeps tail latency of admitted
requests flat while the client sees an explicit, retryable rejection.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ServerOverloaded", "InferenceRequest", "MicroBatcher"]

#: process-wide request-id sequence — unique across batchers, so an
#: incident bundle can name the requests in flight unambiguously
_REQUEST_IDS = itertools.count(1)


class ServerOverloaded(RuntimeError):
    """Request rejected by admission control (bounded queue was full)."""


@dataclass
class InferenceRequest:
    """One in-flight request: seeds in, a future out."""

    kind: str                      # "predict" | "embed"
    seeds: np.ndarray
    future: Future = field(default_factory=Future)
    enqueue_time: float = field(default_factory=time.perf_counter)
    #: stamped on the serve.request span and propagated (with its batch
    #: peers') into serve.batch attrs — per-request tracing
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))


class MicroBatcher:
    """Bounded FIFO request queue with max-batch-size/max-delay batching.

    Parameters
    ----------
    max_batch_size:
        Close a batch once the coalesced requests carry at least this
        many seeds.
    max_delay:
        Seconds to hold an open batch waiting for more requests.
    max_queue_depth:
        Admission bound: pending requests beyond this are shed with
        :class:`ServerOverloaded`.
    """

    def __init__(self, max_batch_size: int = 64, max_delay: float = 0.002,
                 max_queue_depth: int = 256):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self.max_queue_depth = int(max_queue_depth)
        self._queue: deque[InferenceRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, kind: str, seeds: np.ndarray) -> InferenceRequest:
        """Enqueue a request; raises :class:`ServerOverloaded` when the
        queue is full and ``RuntimeError`` after :meth:`close`."""
        if kind not in ("predict", "embed"):
            raise ValueError(f"kind must be 'predict' or 'embed', got {kind!r}")
        seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        if seeds.size == 0:
            raise ValueError("request needs at least one seed")
        request = InferenceRequest(kind=kind, seeds=seeds)
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            if len(self._queue) >= self.max_queue_depth:
                raise ServerOverloaded(
                    f"queue depth {len(self._queue)} at bound "
                    f"{self.max_queue_depth}; request shed"
                )
            self._queue.append(request)
            self._cond.notify()
        return request

    def next_batch(self) -> list[InferenceRequest] | None:
        """Block until a batch is ready; ``None`` once closed and drained.

        The delay window is anchored at the *oldest* pending request, so
        a request never waits more than ``max_delay`` for co-batching on
        top of its queueing time.
        """
        with self._cond:
            while True:
                while not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                deadline = self._queue[0].enqueue_time + self.max_delay
                while self._queue:
                    pending = sum(r.seeds.size for r in self._queue)
                    if pending >= self.max_batch_size or self._closed:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch: list[InferenceRequest] = []
                size = 0
                while self._queue and size < self.max_batch_size:
                    request = self._queue.popleft()
                    batch.append(request)
                    size += request.seeds.size
                if batch:
                    return batch
                # A peer drained the queue while this worker waited out
                # the delay window — go back to sleeping on admission.

    def close(self) -> None:
        """Stop admitting; wake blocked workers (they drain the queue)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
