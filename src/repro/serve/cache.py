"""Versioned serving caches: per-layer embeddings and HDG blocks.

Online inference revisits the same hot seeds over and over (Zipfian
popularity), so the dominant cost saving at serve time is *not*
recomputing layer outputs that are already known.  Two caches cooperate:

* :class:`EmbeddingCache` — an LRU, byte-budgeted store of per-layer
  output rows, keyed ``(layer, vertex)``.  Entries are tagged with the
  :class:`GraphVersion` current when they were computed; graph updates
  evict *exactly* the affected vertices (per layer, hop-expanded via
  :func:`expand_affected`) so the untouched working set survives an
  update with its hit rate intact.
* :class:`HDGBlockCache` — an LRU cache of seed-restricted block HDGs.
  Block keys embed the graph version, so a version bump makes every
  stale block unreachable without any per-entry bookkeeping; the session
  clears it outright on update to reclaim the bytes.

Both caches report into :mod:`repro.obs` (``serve.cache.*`` counters),
so hit/miss/eviction totals show up in traces and the loadgen report
for free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .. import obs
from ..core.hdg import HDG
from ..tensor.quant import resolve_codec

__all__ = [
    "GraphVersion",
    "EmbeddingCache",
    "HDGBlockCache",
    "expand_affected",
    "block_nbytes",
]


def block_nbytes(block) -> int:
    """Recursive resident-byte accounting over every array a block holds.

    ``HDG.nbytes`` knows only the arrays the base class declares; block
    subclasses (and composite blocks holding mappings or per-level
    sub-structures) carry additional arrays that a flat ``block.nbytes``
    silently omits — so a byte-budgeted cache admits more than its
    budget.  This walks ``__slots__``/``__dict__``/containers, summing
    each distinct ndarray once.  Memory-mapped arrays count 0: their
    pages belong to the kernel, not the cache's budget.
    """
    seen: set[int] = set()
    total = 0
    stack = [block]
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.memmap):
            continue
        if isinstance(obj, np.ndarray):
            if not obj.flags["OWNDATA"] and isinstance(obj.base, np.memmap):
                continue
            total += int(obj.nbytes)
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
            continue
        if isinstance(obj, dict):
            stack.extend(obj.values())
            continue
        if isinstance(obj, (int, float, complex, bool, str, bytes, np.dtype)):
            continue
        slots: list[str] = []
        for klass in type(obj).__mro__:
            declared = getattr(klass, "__slots__", ())
            slots.extend((declared,) if isinstance(declared, str) else declared)
        attrs = getattr(obj, "__dict__", None)
        if not slots and attrs is None:
            continue
        for name in slots:
            stack.append(getattr(obj, name, None))
        if attrs is not None:
            stack.extend(attrs.values())
    return total


class GraphVersion:
    """Monotonic counter identifying the pinned graph's current state.

    Bumped once per applied edge-change batch; cache entries carry the
    version they were computed under so exporters (and debugging) can
    tell which graph state produced a row.
    """

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def bump(self) -> int:
        with self._lock:
            self._value += 1
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GraphVersion({self._value})"


def expand_affected(hdg: HDG, vertices: np.ndarray) -> np.ndarray:
    """Roots whose neighborhood (in ``hdg``) references any of
    ``vertices`` — one hop of staleness propagation.

    If a vertex's layer-``l`` embedding went stale, every root that
    aggregates over it has a stale layer-``l+1`` embedding.  The session
    applies this map once per cached layer, so invalidation work is
    proportional to the blast radius, not the cache size.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0 or hdg.leaf_vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.isin(hdg.leaf_vertices, vertices)
    if not mask.any():
        return np.empty(0, dtype=np.int64)
    owners = hdg.root_of_leaf_edges()[mask]
    return np.unique(hdg.roots[np.unique(owners)])


class EmbeddingCache:
    """LRU, byte-budgeted, versioned store of per-layer embedding rows.

    Parameters
    ----------
    max_bytes:
        Byte budget across all layers; least-recently-used rows are
        evicted once exceeded.  ``0`` disables caching (every lookup
        misses, stores are dropped).
    store_dtype:
        ``None`` (default) keeps rows exactly as computed.  ``"float32"``
        / ``"float16"`` / ``"int8"`` store rows in that codec and decode
        on hit (int8 is per-row symmetric with one float32 scale per
        entry), so the same byte budget holds ~4×–8× the vertices — the
        direct warm-hit-rate lever under Zipfian request popularity.
        Decoded rows come back in the dtype rows were first stored in;
        int8 hits carry the codec's documented ~0.4%-of-row-range error.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024,
                 store_dtype: str | None = None):
        self.max_bytes = int(max_bytes)
        self.store_dtype = None if store_dtype is None else resolve_codec(store_dtype)
        self._out_dtype: np.dtype | None = None
        self._entries: OrderedDict[tuple[int, int], tuple] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def _encode_row(self, row: np.ndarray) -> tuple[np.ndarray, float | None]:
        """(payload, scale): the stored form of one row."""
        if self.store_dtype is None:
            return np.ascontiguousarray(row), None
        if self.store_dtype != "int8":
            return np.ascontiguousarray(row, dtype=self.store_dtype), None
        absmax = float(np.max(np.abs(row))) if row.size else 0.0
        scale = absmax / 127.0 if absmax > 0.0 else 1.0
        codes = np.rint(np.asarray(row) / scale).astype(np.int8)
        return codes, scale

    def _decode_row(self, entry: tuple) -> np.ndarray:
        _, payload, scale = entry
        if self.store_dtype is None:
            return payload
        out_dtype = self._out_dtype or np.dtype(np.float32)
        if scale is None:
            return payload.astype(out_dtype)
        return payload.astype(out_dtype) * out_dtype.type(scale)

    @staticmethod
    def _entry_nbytes(entry: tuple) -> int:
        # int8 entries pay for their float32 scale sidecar.
        return int(entry[1].nbytes) + (4 if entry[2] is not None else 0)

    def lookup(self, layer: int, vertices: np.ndarray) -> tuple[np.ndarray, list]:
        """``(hit_mask, rows)``: per-vertex hit flags and the hit rows
        (aligned with ``vertices[hit_mask]``), decoded on hit when the
        cache stores a quantized dtype."""
        vertices = np.asarray(vertices, dtype=np.int64)
        hit_mask = np.zeros(vertices.size, dtype=bool)
        rows: list[np.ndarray] = []
        for i, v in enumerate(vertices.tolist()):
            entry = self._entries.get((layer, v))
            if entry is not None:
                self._entries.move_to_end((layer, v))
                hit_mask[i] = True
                rows.append(self._decode_row(entry))
        hits = int(hit_mask.sum())
        misses = vertices.size - hits
        self.hits += hits
        self.misses += misses
        obs.counter("serve.cache.embed.hit").add(hits)
        obs.counter("serve.cache.embed.miss").add(misses)
        return hit_mask, rows

    def store(self, layer: int, vertices: np.ndarray, rows: np.ndarray,
              version: int) -> None:
        """Insert one row per vertex, tagged with ``version``; evict LRU
        entries beyond the byte budget."""
        if self.max_bytes <= 0:
            return
        vertices = np.asarray(vertices, dtype=np.int64)
        if self.store_dtype is not None and self._out_dtype is None and len(rows):
            first = np.asarray(rows[0])
            self._out_dtype = (first.dtype if first.dtype.kind == "f"
                               else np.dtype(np.float32))
        for i, v in enumerate(vertices.tolist()):
            key = (layer, v)
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= self._entry_nbytes(old)
            payload, scale = self._encode_row(np.asarray(rows[i]))
            entry = (version, payload, scale)
            self._entries[key] = entry
            self.current_bytes += self._entry_nbytes(entry)
        while self.current_bytes > self.max_bytes and self._entries:
            _, stale = self._entries.popitem(last=False)
            self.current_bytes -= self._entry_nbytes(stale)
            self.evictions += 1
            obs.counter("serve.cache.embed.evictions").add(1)

    def invalidate(self, vertices: np.ndarray, layer: int) -> int:
        """Evict the given vertices' rows at one layer; returns count."""
        evicted = 0
        for v in np.asarray(vertices, dtype=np.int64).tolist():
            entry = self._entries.pop((layer, v), None)
            if entry is not None:
                self.current_bytes -= self._entry_nbytes(entry)
                evicted += 1
        self.invalidations += evicted
        if evicted:
            obs.counter("serve.cache.embed.invalidations").add(evicted)
        return evicted

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "store_dtype": self.store_dtype or "exact",
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class HDGBlockCache:
    """LRU cache of seed-restricted block HDGs.

    Keys are ``(layer, version, fanout, digest-of-roots)``; embedding
    the graph version means stale blocks are simply never looked up
    again after an update.
    """

    def __init__(self, max_bytes: int = 16 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, tuple[int, HDG]] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(layer: int, version: int, fanout: int | None,
             roots: np.ndarray) -> tuple:
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        return (layer, version, fanout, hash(roots.tobytes()))

    def get(self, layer: int, version: int, fanout: int | None,
            roots: np.ndarray) -> HDG | None:
        key = self._key(layer, version, fanout, roots)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.counter("serve.cache.block.miss").add(1)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.counter("serve.cache.block.hit").add(1)
        return entry[1]

    def put(self, layer: int, version: int, fanout: int | None,
            roots: np.ndarray, block: HDG) -> None:
        if self.max_bytes <= 0:
            return
        key = self._key(layer, version, fanout, roots)
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[0]
        # Recursive accounting: block subclasses carry arrays the base
        # HDG.nbytes does not know about, and undercounting lets the
        # cache blow past its byte budget.
        nbytes = block_nbytes(block)
        self._entries[key] = (nbytes, block)
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes and self._entries:
            _, (stale_bytes, _) = self._entries.popitem(last=False)
            self.current_bytes -= stale_bytes
            self.evictions += 1
            obs.counter("serve.cache.block.evictions").add(1)

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
        }
