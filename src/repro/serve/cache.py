"""Versioned serving caches: per-layer embeddings and HDG blocks.

Online inference revisits the same hot seeds over and over (Zipfian
popularity), so the dominant cost saving at serve time is *not*
recomputing layer outputs that are already known.  Two caches cooperate:

* :class:`EmbeddingCache` — an LRU, byte-budgeted store of per-layer
  output rows, keyed ``(layer, vertex)``.  Entries are tagged with the
  :class:`GraphVersion` current when they were computed; graph updates
  evict *exactly* the affected vertices (per layer, hop-expanded via
  :func:`expand_affected`) so the untouched working set survives an
  update with its hit rate intact.
* :class:`HDGBlockCache` — an LRU cache of seed-restricted block HDGs.
  Block keys embed the graph version, so a version bump makes every
  stale block unreachable without any per-entry bookkeeping; the session
  clears it outright on update to reclaim the bytes.

Both caches report into :mod:`repro.obs` (``serve.cache.*`` counters),
so hit/miss/eviction totals show up in traces and the loadgen report
for free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from .. import obs
from ..core.hdg import HDG

__all__ = [
    "GraphVersion",
    "EmbeddingCache",
    "HDGBlockCache",
    "expand_affected",
]


class GraphVersion:
    """Monotonic counter identifying the pinned graph's current state.

    Bumped once per applied edge-change batch; cache entries carry the
    version they were computed under so exporters (and debugging) can
    tell which graph state produced a row.
    """

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def bump(self) -> int:
        with self._lock:
            self._value += 1
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GraphVersion({self._value})"


def expand_affected(hdg: HDG, vertices: np.ndarray) -> np.ndarray:
    """Roots whose neighborhood (in ``hdg``) references any of
    ``vertices`` — one hop of staleness propagation.

    If a vertex's layer-``l`` embedding went stale, every root that
    aggregates over it has a stale layer-``l+1`` embedding.  The session
    applies this map once per cached layer, so invalidation work is
    proportional to the blast radius, not the cache size.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0 or hdg.leaf_vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.isin(hdg.leaf_vertices, vertices)
    if not mask.any():
        return np.empty(0, dtype=np.int64)
    owners = hdg.root_of_leaf_edges()[mask]
    return np.unique(hdg.roots[np.unique(owners)])


class EmbeddingCache:
    """LRU, byte-budgeted, versioned store of per-layer embedding rows.

    Parameters
    ----------
    max_bytes:
        Byte budget across all layers; least-recently-used rows are
        evicted once exceeded.  ``0`` disables caching (every lookup
        misses, stores are dropped).
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple[int, int], tuple[int, np.ndarray]] = (
            OrderedDict()
        )
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, layer: int, vertices: np.ndarray) -> tuple[np.ndarray, list]:
        """``(hit_mask, rows)``: per-vertex hit flags and the hit rows
        (aligned with ``vertices[hit_mask]``)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        hit_mask = np.zeros(vertices.size, dtype=bool)
        rows: list[np.ndarray] = []
        for i, v in enumerate(vertices.tolist()):
            entry = self._entries.get((layer, v))
            if entry is not None:
                self._entries.move_to_end((layer, v))
                hit_mask[i] = True
                rows.append(entry[1])
        hits = int(hit_mask.sum())
        misses = vertices.size - hits
        self.hits += hits
        self.misses += misses
        obs.counter("serve.cache.embed.hit").add(hits)
        obs.counter("serve.cache.embed.miss").add(misses)
        return hit_mask, rows

    def store(self, layer: int, vertices: np.ndarray, rows: np.ndarray,
              version: int) -> None:
        """Insert one row per vertex, tagged with ``version``; evict LRU
        entries beyond the byte budget."""
        if self.max_bytes <= 0:
            return
        vertices = np.asarray(vertices, dtype=np.int64)
        for i, v in enumerate(vertices.tolist()):
            key = (layer, v)
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old[1].nbytes
            row = np.ascontiguousarray(rows[i])
            self._entries[key] = (version, row)
            self.current_bytes += row.nbytes
        while self.current_bytes > self.max_bytes and self._entries:
            _, (_, row) = self._entries.popitem(last=False)
            self.current_bytes -= row.nbytes
            self.evictions += 1
            obs.counter("serve.cache.embed.evictions").add(1)

    def invalidate(self, vertices: np.ndarray, layer: int) -> int:
        """Evict the given vertices' rows at one layer; returns count."""
        evicted = 0
        for v in np.asarray(vertices, dtype=np.int64).tolist():
            entry = self._entries.pop((layer, v), None)
            if entry is not None:
                self.current_bytes -= entry[1].nbytes
                evicted += 1
        self.invalidations += evicted
        if evicted:
            obs.counter("serve.cache.embed.invalidations").add(evicted)
        return evicted

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class HDGBlockCache:
    """LRU cache of seed-restricted block HDGs.

    Keys are ``(layer, version, fanout, digest-of-roots)``; embedding
    the graph version means stale blocks are simply never looked up
    again after an update.
    """

    def __init__(self, max_bytes: int = 16 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[tuple, tuple[int, HDG]] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _key(layer: int, version: int, fanout: int | None,
             roots: np.ndarray) -> tuple:
        roots = np.ascontiguousarray(roots, dtype=np.int64)
        return (layer, version, fanout, hash(roots.tobytes()))

    def get(self, layer: int, version: int, fanout: int | None,
            roots: np.ndarray) -> HDG | None:
        key = self._key(layer, version, fanout, roots)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.counter("serve.cache.block.miss").add(1)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.counter("serve.cache.block.hit").add(1)
        return entry[1]

    def put(self, layer: int, version: int, fanout: int | None,
            roots: np.ndarray, block: HDG) -> None:
        if self.max_bytes <= 0:
            return
        key = self._key(layer, version, fanout, roots)
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old[0]
        nbytes = int(block.nbytes)
        self._entries[key] = (nbytes, block)
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes and self._entries:
            _, (stale_bytes, _) = self._entries.popitem(last=False)
            self.current_bytes -= stale_bytes
            self.evictions += 1
            obs.counter("serve.cache.block.evictions").add(1)

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
        }
