"""``GNNServer`` — worker pool, admission control, SLO accounting.

The server owns a :class:`~repro.serve.batcher.MicroBatcher` and a pool
of worker threads.  Each worker pulls a coalesced batch, runs ONE
blocked forward through the session over the union of the batch's seeds,
and scatters the per-request slices back to futures (predict requests
additionally argmax).  Because both ``predict`` and ``embed`` consume
the final-layer rows, mixed-kind batches coalesce into a single forward.

Operational behavior:

* **Load shedding** — the batcher's queue is bounded; beyond it,
  :meth:`submit` raises :class:`~repro.serve.batcher.ServerOverloaded`
  and the shed is counted (``serve.requests_shed``).  Shedding keeps the
  p99 of *admitted* requests bounded under overload instead of letting
  queueing delay grow without limit.
* **Graceful drain** — :meth:`stop` (default ``drain=True``) closes
  admission, lets workers drain every queued request, then joins the
  pool; no accepted request is dropped.
* **SLO accounting** — every request records a ``serve.request`` span
  (latency histogram for free via the obs registry), batches run under
  ``serve.batch`` spans, queue depth is a gauge, and
  :meth:`slo_summary` rolls it all up with the session's cache stats.
  Alongside the lifetime aggregates, a rolling window (last
  ``window_seconds``, default 60 s) tracks *recent* p50/p99 and shed
  rate — the live numbers an operator watches, published as
  ``serve.window.*`` gauges.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from .. import obs
from ..obs.flight import write_incident_bundle
from ..obs.registry import get_registry
from .batcher import InferenceRequest, MicroBatcher, ServerOverloaded
from .session import InferenceSession

__all__ = ["GNNServer", "ServerOverloaded"]

#: obs metric names the server maintains.
REQUESTS_COUNTER = "serve.requests"
COMPLETED_COUNTER = "serve.requests_completed"
SHED_COUNTER = "serve.requests_shed"
ERRORS_COUNTER = "serve.requests_errored"
QUEUE_DEPTH_GAUGE = "serve.queue_depth"
REQUEST_SPAN = "serve.request"
BATCH_SPAN = "serve.batch"
WINDOW_P50_GAUGE = "serve.window.p50_ms"
WINDOW_P99_GAUGE = "serve.window.p99_ms"
WINDOW_SHED_GAUGE = "serve.window.shed_rate"


class _SloWindow:
    """Rolling last-``window_seconds`` latency/shed samples.

    Bounded deques under one lock: appends are O(1) from the worker
    threads, expiry is amortized O(1) (each sample is evicted once).
    ``max_samples`` caps memory under sustained overload — beyond it the
    oldest samples fall off and the window is effectively shorter, which
    biases *toward recency*, exactly what a live gauge wants.
    """

    def __init__(self, window_seconds: float = 60.0, max_samples: int = 65536):
        self.window_seconds = float(window_seconds)
        self._lock = threading.Lock()
        self._lat: deque[tuple[float, float]] = deque(maxlen=max_samples)
        self._shed: deque[float] = deque(maxlen=max_samples)

    def record_latency(self, latency: float, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._lat.append((now, float(latency)))

    def record_shed(self, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._shed.append(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._lat and self._lat[0][0] < horizon:
            self._lat.popleft()
        while self._shed and self._shed[0] < horizon:
            self._shed.popleft()

    def summary(self, now: float | None = None) -> dict:
        """Percentiles/rates over the samples still inside the window."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._expire(now)
            lats = sorted(lat for _, lat in self._lat)
            shed = len(self._shed)
        n = len(lats)
        admitted = n + shed

        def pct(q: float) -> float:
            if not n:
                return 0.0
            return lats[min(n - 1, int(q * (n - 1) + 0.5))]

        return {
            "seconds": self.window_seconds,
            "requests": n,
            "p50_ms": pct(0.50) * 1e3,
            "p99_ms": pct(0.99) * 1e3,
            "mean_ms": (sum(lats) / n if n else 0.0) * 1e3,
            "shed": shed,
            "shed_rate": shed / admitted if admitted else 0.0,
            "throughput_rps": n / self.window_seconds,
        }


class GNNServer:
    """In-process online inference server over an :class:`InferenceSession`.

    Parameters
    ----------
    session:
        The pinned model/graph/features to serve.
    num_workers:
        Worker threads pulling batches.  Forwards serialize on the
        session's internal lock (numpy is GIL-bound anyway); extra
        workers overlap result scatter/bookkeeping with the next batch.
    max_batch_size, max_delay, max_queue_depth:
        Batching policy and admission bound (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    window_seconds:
        Width of the rolling SLO window (recent p50/p99 + shed rate in
        :meth:`slo_summary`'s ``"window"`` entry).
    flight_dir, slo_p99_ms, max_shed_rate, snapshot_interval:
        Black-box capture: with a ``flight_dir`` set, :meth:`slo_summary`
        writes an incident bundle when the rolling window's p99 exceeds
        ``slo_p99_ms`` or its shed rate exceeds ``max_shed_rate``
        (rate-limited to one bundle per ``snapshot_interval`` seconds).
        The bundle's ``requests`` section names the request ids in
        flight when the breach fired.
    """

    def __init__(self, session: InferenceSession, num_workers: int = 2,
                 max_batch_size: int = 64, max_delay: float = 0.002,
                 max_queue_depth: int = 256, window_seconds: float = 60.0,
                 flight_dir: str | None = None,
                 slo_p99_ms: float | None = None,
                 max_shed_rate: float = 0.05,
                 snapshot_interval: float = 30.0):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.session = session
        self.batcher = MicroBatcher(max_batch_size, max_delay, max_queue_depth)
        self.num_workers = int(num_workers)
        self.window = _SloWindow(window_seconds)
        self._threads: list[threading.Thread] = []
        self._started = False
        self.flight_dir = flight_dir
        self.slo_p99_ms = slo_p99_ms
        self.max_shed_rate = float(max_shed_rate)
        self.snapshot_interval = float(snapshot_interval)
        self._last_snapshot = 0.0
        # Per-worker-thread view of the batch being executed (request
        # descriptors).  Single-writer per key under the GIL, so the
        # snapshot path reads it without a lock.
        self._active_batches: dict[str, list] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "GNNServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for i in range(self.num_workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"gnn-serve-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: close admission, optionally drain, join workers.

        With ``drain=True`` every already-accepted request completes;
        with ``drain=False`` still-queued requests fail with
        :class:`ServerOverloaded`.
        """
        if not drain:
            # Fail queued requests before workers can pick them up.
            with self.batcher._cond:
                self.batcher._closed = True
                while self.batcher._queue:
                    request = self.batcher._queue.popleft()
                    request.future.set_exception(
                        ServerOverloaded("server stopped before execution")
                    )
                self.batcher._cond.notify_all()
        else:
            self.batcher.close()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads.clear()

    def __enter__(self) -> "GNNServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, kind: str, seeds: np.ndarray) -> Future:
        """Async request; the returned future resolves to the response
        array.  Raises :class:`ServerOverloaded` when shed."""
        if not self._started:
            raise RuntimeError("server not started")
        obs.counter(REQUESTS_COUNTER).add(1)
        try:
            request = self.batcher.submit(kind, seeds)
        except ServerOverloaded:
            obs.counter(SHED_COUNTER).add(1)
            self.window.record_shed()
            raise
        obs.gauge(QUEUE_DEPTH_GAUGE).set(len(self.batcher))
        return request.future

    def predict(self, seeds: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Synchronous argmax class predictions for ``seeds``."""
        return self.submit("predict", seeds).result(timeout=timeout)

    def embed(self, seeds: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Synchronous final-layer rows for ``seeds``."""
        return self.submit("embed", seeds).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        registry = get_registry()
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            obs.gauge(QUEUE_DEPTH_GAUGE).set(len(self.batcher))
            self._execute(batch, registry)

    def _execute(self, batch: list[InferenceRequest], registry) -> None:
        all_seeds = np.concatenate([r.seeds for r in batch])
        request_ids = [r.request_id for r in batch]
        worker = threading.current_thread().name
        self._active_batches[worker] = [
            {"request_id": r.request_id, "kind": r.kind,
             "seeds": int(r.seeds.size)} for r in batch
        ]
        try:
            with obs.span(BATCH_SPAN, requests=len(batch),
                          seeds=int(all_seeds.size),
                          request_ids=request_ids):
                uniq, inverse = np.unique(all_seeds, return_inverse=True)
                rows = self.session.embed(uniq)
        except Exception as exc:  # propagate the failure to every caller
            obs.counter(ERRORS_COUNTER).add(len(batch))
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            self._active_batches.pop(worker, None)
            return
        offset = 0
        for request in batch:
            span_len = request.seeds.size
            idx = inverse[offset : offset + span_len]
            offset += span_len
            result = rows[idx]
            if request.kind == "predict":
                result = result.argmax(axis=1)
            else:
                result = result.copy()
            latency = max(time.perf_counter() - request.enqueue_time, 0.0)
            request.future.set_result(result)
            obs.counter(COMPLETED_COUNTER).add(1)
            self.window.record_latency(latency)
            registry.record_span(
                REQUEST_SPAN, latency,
                simulated=False, kind=request.kind, seeds=int(span_len),
                request_id=request.request_id,
            )
        self._active_batches.pop(worker, None)

    # ------------------------------------------------------------------
    # SLO accounting
    # ------------------------------------------------------------------
    def slo_summary(self) -> dict:
        """Roll-up of request/batch latency, shedding and cache health.

        Lifetime aggregates plus a ``"window"`` entry with last-
        ``window_seconds`` p50/p99/shed-rate; the window numbers are
        also published as ``serve.window.*`` gauges so a metrics poller
        sees the live values without calling this method.
        """
        reg = get_registry()
        window = self.window.summary()
        reg.gauge(WINDOW_P50_GAUGE).set(window["p50_ms"])
        reg.gauge(WINDOW_P99_GAUGE).set(window["p99_ms"])
        reg.gauge(WINDOW_SHED_GAUGE).set(window["shed_rate"])
        request_hist = reg.histogram("span." + REQUEST_SPAN)
        batch_hist = reg.histogram("span." + BATCH_SPAN)
        requests = reg.counter(REQUESTS_COUNTER).total
        shed = reg.counter(SHED_COUNTER).total
        summary = {
            "requests": int(requests),
            "completed": int(reg.counter(COMPLETED_COUNTER).total),
            "shed": int(shed),
            "shed_rate": shed / requests if requests else 0.0,
            "errors": int(reg.counter(ERRORS_COUNTER).total),
            "queue_depth_peak": reg.gauge(QUEUE_DEPTH_GAUGE).to_dict()["peak"],
            "latency_ms": {
                "count": request_hist.count,
                "mean": request_hist.mean * 1e3,
                "p50": request_hist.p50 * 1e3,
                "p90": request_hist.p90 * 1e3,
                "p99": request_hist.p99 * 1e3,
                "max": (request_hist.max if request_hist.count else 0.0) * 1e3,
            },
            "batches": {
                "count": batch_hist.count,
                "mean_ms": batch_hist.mean * 1e3,
            },
            "window": window,
            "session": self.session.stats(),
        }
        self._maybe_snapshot(summary)
        return summary

    def _maybe_snapshot(self, summary: dict) -> str | None:
        """Write an incident bundle when the rolling window breaches the
        SLO (p99 over ``slo_p99_ms``) or shed rate spikes past
        ``max_shed_rate`` — at most one per ``snapshot_interval``."""
        if self.flight_dir is None:
            return None
        window = summary["window"]
        reason = None
        kind = None
        if (self.slo_p99_ms is not None and window["requests"] > 0
                and window["p99_ms"] > self.slo_p99_ms):
            kind = "slo_breach"
            reason = (f"window p99 {window['p99_ms']:.1f}ms over SLO "
                      f"{self.slo_p99_ms:.1f}ms")
        elif window["shed"] > 0 and window["shed_rate"] > self.max_shed_rate:
            kind = "shed_spike"
            reason = (f"window shed rate {window['shed_rate']:.3f} over "
                      f"{self.max_shed_rate:.3f}")
        if kind is None:
            return None
        now = time.monotonic()
        if now - self._last_snapshot < self.snapshot_interval:
            return None
        self._last_snapshot = now
        in_flight = [dict(r) for reqs in list(self._active_batches.values())
                     for r in reqs]
        return write_incident_bundle(
            self.flight_dir, kind, reason=reason,
            config={
                "num_workers": self.num_workers,
                "max_batch_size": self.batcher.max_batch_size,
                "max_delay": self.batcher.max_delay,
                "max_queue_depth": self.batcher.max_queue_depth,
                "slo_p99_ms": self.slo_p99_ms,
                "max_shed_rate": self.max_shed_rate,
            },
            sections={
                "slo": summary,
                "requests": {
                    "in_flight": in_flight,
                    "queued": len(self.batcher),
                },
            },
        )
