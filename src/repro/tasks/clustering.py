"""Vertex clustering on learned embeddings (§2.1's third downstream
task): numpy k-means plus standard cluster-quality metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans", "cluster_vertices", "normalized_mutual_information", "purity"]


def kmeans(points: np.ndarray, k: int, num_iters: int = 50,
           rng: np.random.Generator | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means; returns (assignments, centroids).

    Initialization is k-means++ style (distance-weighted seeding) for
    stability; empty clusters are re-seeded from the farthest points.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be (n, d)")
    n = points.shape[0]
    if not 0 < k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = rng or np.random.default_rng(0)

    # k-means++ seeding.
    centroids = [points[rng.integers(0, n)]]
    for _ in range(1, k):
        dists = np.min(
            [((points - c) ** 2).sum(axis=1) for c in centroids], axis=0
        )
        total = dists.sum()
        if total <= 0:
            centroids.append(points[rng.integers(0, n)])
            continue
        centroids.append(points[rng.choice(n, p=dists / total)])
    centers = np.stack(centroids)

    assign = np.zeros(n, dtype=np.int64)
    for _ in range(num_iters):
        # Squared distances via the expansion trick.
        d2 = (
            (points**2).sum(axis=1, keepdims=True)
            - 2.0 * points @ centers.T
            + (centers**2).sum(axis=1)
        )
        new_assign = d2.argmin(axis=1)
        if np.array_equal(new_assign, assign) and _ > 0:
            break
        assign = new_assign
        for c in range(k):
            members = points[assign == c]
            if members.shape[0]:
                centers[c] = members.mean(axis=0)
            else:
                centers[c] = points[d2.min(axis=1).argmax()]
    return assign, centers


def cluster_vertices(embeddings, k: int, seed: int = 0) -> np.ndarray:
    """Cluster vertex embeddings (Tensor or ndarray) into ``k`` groups."""
    data = embeddings.numpy() if hasattr(embeddings, "numpy") else np.asarray(embeddings)
    assign, _ = kmeans(data, k, rng=np.random.default_rng(seed))
    return assign


def normalized_mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """NMI between two labelings (arithmetic normalization)."""
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError("labelings must align")
    n = a.size
    joint = np.zeros((a.max() + 1, b.max() + 1))
    np.add.at(joint, (a, b), 1.0)
    joint /= n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / np.outer(pa, pb)
        terms = np.where(joint > 0, joint * np.log(ratio), 0.0)
    mutual = terms.sum()
    ha = -np.sum(np.where(pa > 0, pa * np.log(pa), 0.0))
    hb = -np.sum(np.where(pb > 0, pb * np.log(pb), 0.0))
    denom = (ha + hb) / 2.0
    if denom <= 0:
        return 1.0 if mutual <= 1e-12 else 0.0
    return float(mutual / denom)


def purity(clusters: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of vertices in their cluster's majority class."""
    clusters = np.asarray(clusters, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if clusters.shape != labels.shape:
        raise ValueError("clusters and labels must align")
    total = 0
    for c in np.unique(clusters):
        members = labels[clusters == c]
        total += np.bincount(members).max()
    return float(total / labels.size)
