"""Link prediction on learned vertex embeddings (§2.1's second
downstream task).

Standard protocol: hold out a fraction of edges, train a GNN encoder on
the remaining graph with a dot-product edge decoder against negative
samples, and evaluate AUC / hits@k on the held-out edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import FlexGraphEngine
from ..core.nau import NAUModel
from ..graph.graph import Graph
from ..tensor.loss import binary_cross_entropy_with_logits
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor, no_grad

__all__ = ["EdgeSplit", "split_edges", "sample_negative_edges",
           "LinkPredictionTrainer", "auc_score", "hits_at_k"]


@dataclass
class EdgeSplit:
    """Train/test edge split for link prediction."""

    train_graph: Graph
    train_edges: np.ndarray   # (m_train, 2)
    test_edges: np.ndarray    # (m_test, 2)


def split_edges(graph: Graph, test_fraction: float = 0.1,
                rng: np.random.Generator | None = None) -> EdgeSplit:
    """Hold out undirected edge pairs for evaluation.

    Edges are deduplicated as unordered pairs first so a held-out edge
    never leaks through its reverse; the training graph keeps both
    directions of the surviving pairs.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    src, dst = graph.edges()
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    pairs = np.unique(np.stack([lo[keep], hi[keep]], axis=1), axis=0)
    if pairs.shape[0] < 2:
        raise ValueError("graph has too few distinct edges to split")
    order = rng.permutation(pairs.shape[0])
    n_test = max(1, int(pairs.shape[0] * test_fraction))
    test_pairs = pairs[order[:n_test]]
    train_pairs = pairs[order[n_test:]]
    both = np.concatenate([train_pairs, train_pairs[:, ::-1]], axis=0)
    train_graph = Graph(
        graph.num_vertices, both[:, 0], both[:, 1],
        vertex_types=graph.vertex_types, type_names=graph.type_names,
    )
    return EdgeSplit(train_graph, train_pairs, test_pairs)


def sample_negative_edges(graph: Graph, count: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Uniform non-edges (rejection-sampled), as a ``(count, 2)`` array."""
    if count <= 0:
        raise ValueError("count must be positive")
    out = np.empty((0, 2), dtype=np.int64)
    n = graph.num_vertices
    existing = set(zip(*graph.edges()))
    attempts = 0
    while out.shape[0] < count and attempts < 50:
        cand = rng.integers(0, n, size=(count * 2, 2))
        cand = cand[cand[:, 0] != cand[:, 1]]
        mask = np.array(
            [(int(a), int(b)) not in existing for a, b in cand], dtype=bool
        )
        out = np.concatenate([out, cand[mask]], axis=0)
        attempts += 1
    return out[:count]


def auc_score(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum identity."""
    pos = np.asarray(pos_scores, dtype=np.float64)
    neg = np.asarray(neg_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need both positive and negative scores")
    all_scores = np.concatenate([pos, neg])
    order = np.argsort(all_scores, kind="stable")
    ranks = np.empty(all_scores.size, dtype=np.float64)
    # Average ranks over ties.
    sorted_scores = all_scores[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum = ranks[: pos.size].sum()
    return float((rank_sum - pos.size * (pos.size + 1) / 2.0) / (pos.size * neg.size))


def hits_at_k(pos_scores: np.ndarray, neg_scores: np.ndarray, k: int) -> float:
    """Fraction of positives scoring above the k-th best negative."""
    if k <= 0:
        raise ValueError("k must be positive")
    neg = np.sort(np.asarray(neg_scores))[::-1]
    threshold = neg[min(k, neg.size) - 1]
    return float((np.asarray(pos_scores) > threshold).mean())


class LinkPredictionTrainer:
    """Train a GNN encoder with a dot-product edge decoder.

    The encoder is any NAU model whose final layer outputs embeddings;
    positives are the training edges, negatives are re-sampled per epoch.
    """

    def __init__(self, model: NAUModel, split: EdgeSplit, seed: int = 0):
        self.model = model
        self.split = split
        self.engine = FlexGraphEngine(model, split.train_graph, seed=seed)
        self._rng = np.random.default_rng(seed)

    def _edge_logits(self, embeddings: Tensor, edges: np.ndarray) -> Tensor:
        heads = embeddings[edges[:, 0]]
        tails = embeddings[edges[:, 1]]
        return (heads * tails).sum(axis=1)

    def train_epoch(self, feats: Tensor, optimizer: Optimizer,
                    epoch: int = 0) -> float:
        """One epoch of BCE on positive vs sampled negative edges."""
        self.model.train()
        embeddings = self.engine.forward(feats, epoch)
        pos = self.split.train_edges
        neg = sample_negative_edges(self.split.train_graph, pos.shape[0], self._rng)
        logits_pos = self._edge_logits(embeddings, pos)
        logits_neg = self._edge_logits(embeddings, neg)
        from ..tensor.ops import concat

        logits = concat([logits_pos.reshape(-1, 1), logits_neg.reshape(-1, 1)], axis=0)
        targets = np.concatenate([np.ones(pos.shape[0]), np.zeros(neg.shape[0])])
        loss = binary_cross_entropy_with_logits(logits.reshape(-1), targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    def evaluate(self, feats: Tensor, num_negatives: int | None = None) -> dict:
        """AUC and hits@10 on the held-out edges."""
        self.model.eval()
        with no_grad():
            embeddings = self.engine.forward(feats)
        self.model.train()
        pos = self.split.test_edges
        neg = sample_negative_edges(
            self.split.train_graph, num_negatives or pos.shape[0], self._rng
        )
        pos_scores = self._edge_logits(embeddings, pos).numpy()
        neg_scores = self._edge_logits(embeddings, neg).numpy()
        return {
            "auc": auc_score(pos_scores, neg_scores),
            "hits@10": hits_at_k(pos_scores, neg_scores, 10),
        }
