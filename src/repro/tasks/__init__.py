"""``repro.tasks`` — the downstream tasks GNN embeddings feed (§2.1):
vertex classification lives in the engine (``evaluate``); this package
adds link prediction and vertex clustering."""

from .clustering import (
    cluster_vertices,
    kmeans,
    normalized_mutual_information,
    purity,
)
from .link_prediction import (
    EdgeSplit,
    LinkPredictionTrainer,
    auc_score,
    hits_at_k,
    sample_negative_edges,
    split_edges,
)

__all__ = [
    "EdgeSplit", "split_edges", "sample_negative_edges",
    "LinkPredictionTrainer", "auc_score", "hits_at_k",
    "kmeans", "cluster_vertices", "normalized_mutual_information", "purity",
]
