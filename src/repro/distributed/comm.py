"""Simulated MPI communicator with a latency/bandwidth cost model.

The paper's testbed is a 16-machine cluster with 3.25 GB/s NICs; no
cluster is available here, so the distributed runtime executes all
workers in one process and *models* network time.  The model is the
standard alpha-beta one: a message of ``b`` bytes costs
``alpha + b / beta`` seconds, and each worker's per-step communication
time is the sum over messages it sends plus receives (workers send and
receive concurrently with respect to each other, but serially with
respect to their own messages — a conservative, standard assumption).

Bandwidth defaults are scaled down consistently with the dataset scale so
compute and communication remain comparable, matching the compute/comm
ratios the paper's optimizations (batching, overlap) act on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import counter as _obs_counter

__all__ = ["CommConfig", "SimulatedComm", "BYTES_COUNTER", "MESSAGES_COUNTER"]

#: obs counters fed by every simulated cross-worker send, so traces carry
#: global traffic totals without the caller having to thread them through.
BYTES_COUNTER = "comm.bytes"
MESSAGES_COUNTER = "comm.messages"


@dataclass(frozen=True)
class CommConfig:
    """Alpha-beta network model parameters."""

    latency: float = 5e-5          # seconds per message
    bandwidth: float = 200e6       # bytes/second (scaled-down 3.25 GB/s NIC)

    def message_time(self, nbytes: float, messages: int = 1) -> float:
        return self.latency * messages + nbytes / self.bandwidth


@dataclass
class _WorkerTraffic:
    sent_bytes: float = 0.0
    sent_messages: int = 0
    recv_bytes: float = 0.0
    recv_messages: int = 0


class SimulatedComm:
    """Per-superstep message accounting across ``k`` simulated workers."""

    def __init__(self, k: int, config: CommConfig | None = None):
        if k <= 0:
            raise ValueError("need at least one worker")
        self.k = k
        self.config = config or CommConfig()
        self._traffic = [_WorkerTraffic() for _ in range(k)]
        self.total_bytes = 0.0
        self.total_messages = 0

    def send(self, src: int, dst: int, nbytes: float, messages: int = 1) -> None:
        """Record ``messages`` messages totalling ``nbytes`` from src to dst."""
        if not (0 <= src < self.k and 0 <= dst < self.k):
            raise ValueError("worker id out of range")
        if src == dst:
            return  # local delivery is free
        self._traffic[src].sent_bytes += nbytes
        self._traffic[src].sent_messages += messages
        self._traffic[dst].recv_bytes += nbytes
        self._traffic[dst].recv_messages += messages
        self.total_bytes += nbytes
        self.total_messages += messages
        _obs_counter(BYTES_COUNTER).add(nbytes)
        _obs_counter(MESSAGES_COUNTER).add(messages)

    def worker_step_time(self, worker: int) -> float:
        """Modeled communication seconds for one worker this superstep."""
        t = self._traffic[worker]
        return self.config.message_time(
            t.sent_bytes + t.recv_bytes, t.sent_messages + t.recv_messages
        )

    def step_times(self) -> np.ndarray:
        return np.array([self.worker_step_time(w) for w in range(self.k)])

    def end_step(self) -> np.ndarray:
        """Return per-worker comm times and reset the superstep counters."""
        times = self.step_times()
        self._traffic = [_WorkerTraffic() for _ in range(self.k)]
        return times

    def allreduce_time(self, nbytes: float) -> float:
        """Ring-allreduce cost for a buffer of ``nbytes`` (parameter sync)."""
        if self.k == 1:
            return 0.0
        steps = 2 * (self.k - 1)
        chunk = nbytes / self.k
        return steps * self.config.message_time(chunk, 1)
