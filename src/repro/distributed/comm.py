"""The ``Comm`` abstraction: one accounting interface, two backends.

Every distributed code path talks to a :class:`Comm`:

* :class:`SimulatedComm` — the deterministic test harness.  The paper's
  testbed is a 16-machine cluster with 3.25 GB/s NICs; when no cluster
  is available the runtime executes all workers in one process and
  *models* network time with the standard alpha-beta model: a message of
  ``b`` bytes costs ``alpha + b / beta`` seconds, and each worker's
  per-step communication time is the sum over messages it sends plus
  receives (workers send and receive concurrently with respect to each
  other, but serially with respect to their own messages — a
  conservative, standard assumption).
* :class:`ProcessComm` — the real multi-process backend used by
  :class:`~repro.distributed.runtime.MultiprocessTrainer`.  Workers are
  OS processes; synchronization is a :class:`multiprocessing.Barrier`
  and reductions run over shared-memory numpy slabs
  (:meth:`ProcessComm.reduce_slabs` is a ring-style reduce-scatter:
  each rank owns one contiguous chunk and sums it across worker slabs
  in rank order, so the result is bitwise deterministic; the all-gather
  half is free because the output lives in shared memory).  It keeps
  the same byte/message accounting so traces and epoch logs carry
  comparable traffic totals.

Bandwidth defaults are scaled down consistently with the dataset scale so
compute and communication remain comparable, matching the compute/comm
ratios the paper's optimizations (batching, overlap) act on.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from ..obs import counter as _obs_counter

__all__ = [
    "CommConfig",
    "Comm",
    "SimulatedComm",
    "ProcessComm",
    "BYTES_COUNTER",
    "MESSAGES_COUNTER",
]

#: obs counters fed by every cross-worker send, so traces carry global
#: traffic totals without the caller having to thread them through.
BYTES_COUNTER = "comm.bytes"
MESSAGES_COUNTER = "comm.messages"


@dataclass(frozen=True)
class CommConfig:
    """Alpha-beta network model parameters."""

    latency: float = 5e-5          # seconds per message
    bandwidth: float = 200e6       # bytes/second (scaled-down 3.25 GB/s NIC)

    def message_time(self, nbytes: float, messages: int = 1) -> float:
        return self.latency * messages + nbytes / self.bandwidth


@dataclass
class _WorkerTraffic:
    sent_bytes: float = 0.0
    sent_messages: int = 0
    recv_bytes: float = 0.0
    recv_messages: int = 0


class Comm:
    """Per-superstep message accounting across ``k`` workers.

    The accounting and the alpha-beta cost model are backend-independent:
    the simulated backend uses :meth:`worker_step_time` as the *actual*
    communication time, the multiprocess backend records the same byte
    and message totals next to measured wall-clock synchronization time
    so the two runtimes produce comparable traces.
    """

    def __init__(self, k: int, config: CommConfig | None = None):
        if k <= 0:
            raise ValueError("need at least one worker")
        self.k = k
        self.config = config or CommConfig()
        self._traffic = [_WorkerTraffic() for _ in range(k)]
        self.total_bytes = 0.0
        self.total_messages = 0

    def send(self, src: int, dst: int, nbytes: float, messages: int = 1) -> None:
        """Record ``messages`` messages totalling ``nbytes`` from src to dst."""
        if not (0 <= src < self.k and 0 <= dst < self.k):
            raise ValueError("worker id out of range")
        if src == dst:
            return  # local delivery is free
        self._traffic[src].sent_bytes += nbytes
        self._traffic[src].sent_messages += messages
        self._traffic[dst].recv_bytes += nbytes
        self._traffic[dst].recv_messages += messages
        self.total_bytes += nbytes
        self.total_messages += messages
        _obs_counter(BYTES_COUNTER).add(nbytes)
        _obs_counter(MESSAGES_COUNTER).add(messages)

    def worker_step_time(self, worker: int) -> float:
        """Modeled communication seconds for one worker this superstep."""
        t = self._traffic[worker]
        return self.config.message_time(
            t.sent_bytes + t.recv_bytes, t.sent_messages + t.recv_messages
        )

    def step_times(self) -> np.ndarray:
        return np.array([self.worker_step_time(w) for w in range(self.k)])

    def end_step(self) -> np.ndarray:
        """Return per-worker comm times and reset the superstep counters."""
        times = self.step_times()
        self._traffic = [_WorkerTraffic() for _ in range(self.k)]
        return times

    def allreduce_time(self, nbytes: float) -> float:
        """Ring-allreduce cost for a buffer of ``nbytes`` (parameter sync)."""
        if self.k == 1:
            return 0.0
        steps = 2 * (self.k - 1)
        chunk = nbytes / self.k
        return steps * self.config.message_time(chunk, 1)

    def allreduce_traffic(self, nbytes: float) -> tuple[float, int]:
        """(bytes, messages) one worker moves in a ring allreduce of
        ``nbytes`` — ``2 (k-1)`` chunk messages of ``nbytes / k`` each."""
        if self.k == 1:
            return 0.0, 0
        steps = 2 * (self.k - 1)
        return steps * nbytes / self.k, steps

    # ------------------------------------------------------------------
    # synchronization — no-ops for accounting-only backends
    # ------------------------------------------------------------------
    def barrier(self) -> float:
        """Synchronize all workers; returns seconds spent waiting."""
        return 0.0

    def close(self) -> None:
        """Release backend resources (no-op for in-process backends)."""


class SimulatedComm(Comm):
    """The deterministic single-process harness: pure accounting.

    All workers run in one process; :meth:`Comm.worker_step_time` *is*
    the communication time, so results are exactly reproducible.
    """


class ProcessComm(Comm):
    """Real synchronization for ``k`` worker OS processes.

    Created in the parent before the workers are spawned; the barrier
    and its state travel to each worker through process inheritance (or
    pickling under the ``spawn`` start method).  Each worker calls
    :meth:`bind` with its rank once it is running.

    Parameters
    ----------
    k:
        Number of worker processes (the parent is *not* a barrier party;
        it observes progress through result queues so a dead worker is
        detected by liveness polling, not by a broken barrier).
    config:
        Cost model used for the byte/message *accounting* columns; the
        measured times are wall clocks.
    ctx:
        ``multiprocessing`` context; defaults to ``fork`` where
        available (zero-copy inheritance), else the platform default.
    timeout:
        Seconds a worker waits at a barrier before giving up; a broken
        or timed-out barrier means a peer died and the epoch is
        abandoned (the parent detects the death independently).
    """

    def __init__(self, k: int, config: CommConfig | None = None, *,
                 ctx: mp.context.BaseContext | None = None,
                 timeout: float = 120.0):
        super().__init__(k, config)
        if ctx is None:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-posix platforms
                ctx = mp.get_context()
        self.ctx = ctx
        self.timeout = float(timeout)
        self._barrier = ctx.Barrier(k)
        self.rank: int | None = None
        #: per-process liveness hook (see :meth:`bind`); not pickled —
        #: each worker installs its own after spawn
        self._heartbeat = None

    def bind(self, rank: int, heartbeat=None) -> None:
        """Attach this (per-process) copy to a worker rank.

        ``heartbeat``, when given, is called ``heartbeat("enter")`` as
        the worker parks at a barrier and ``heartbeat("exit")`` when the
        barrier releases — the live-telemetry plane uses it to mark the
        worker as *waiting* (a frozen heartbeat at a barrier means a
        peer stalled, not this rank) and to prove progress on release.
        """
        if not (0 <= rank < self.k):
            raise ValueError("rank out of range")
        self.rank = rank
        self._heartbeat = heartbeat

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_heartbeat"] = None  # process-local, never travels
        return state

    def barrier(self) -> float:
        """Wait for all ``k`` workers; returns measured seconds waited.

        Raises :class:`threading.BrokenBarrierError` when a peer died or
        the timeout elapsed — callers abandon the epoch and let the
        parent heal the pool.
        """
        if self._heartbeat is not None:
            self._heartbeat("enter")
        start = time.perf_counter()
        self._barrier.wait(self.timeout)
        waited = time.perf_counter() - start
        if self._heartbeat is not None:
            self._heartbeat("exit")
        return waited

    def reset(self) -> None:
        """Replace the barrier before respawning workers.

        A worker killed *inside* ``wait()`` leaves its party registered
        forever, so the old barrier can stay in the draining state no
        matter how it is reset — a fresh one is the only safe recovery.
        Only call between pools: workers receive the barrier at spawn.
        """
        self._barrier = self.ctx.Barrier(self.k)

    def reduce_slabs(self, slabs: list[np.ndarray], out: np.ndarray,
                     rank: int | None = None) -> None:
        """Ring-style reduce-scatter over shared-memory slabs.

        Rank ``r`` owns the ``r``-th contiguous chunk of the flattened
        output and sums that chunk across every worker's slab *in rank
        order* — a fixed reduction order, so the result is bitwise
        deterministic regardless of process scheduling.  Because ``out``
        is shared memory, the all-gather half of the ring is free; the
        caller supplies the barriers around the reduction.
        """
        if rank is None:
            rank = self.rank
        if rank is None:
            raise RuntimeError("reduce_slabs needs a bound rank")
        if len(slabs) != self.k:
            raise ValueError(f"expected {self.k} slabs, got {len(slabs)}")
        flat_out = out.reshape(-1)
        size = flat_out.size
        bounds = np.linspace(0, size, self.k + 1).astype(np.int64)
        lo, hi = int(bounds[rank]), int(bounds[rank + 1])
        if lo == hi:
            return
        acc = np.array(slabs[0].reshape(-1)[lo:hi], dtype=flat_out.dtype)
        for r in range(1, self.k):
            acc += slabs[r].reshape(-1)[lo:hi]
        flat_out[lo:hi] = acc

    def close(self) -> None:
        """Abort the barrier so any straggler wait fails fast."""
        try:
            self._barrier.abort()
        except Exception:  # pragma: no cover - teardown best effort
            pass
