"""A small shared-memory KV store for the multiprocess runtime.

Holds the tensors every worker must see — partitioned input features and
the replicated model state — in ``multiprocessing.shared_memory``
segments, so worker processes read them zero-copy (:meth:`KVStore.get`
returns a numpy view over the shared pages, no serialization, no socket).

The store is *owner-creates, everyone-reads/writes*: the parent process
creates every key before the workers are spawned (segment descriptors
travel to the children by fork inheritance or pickling), then both sides
may :meth:`set` into existing keys — parameter sync writes the fresh
model state each epoch and bumps the :attr:`version` counter so readers
can assert they see the epoch they expect.  Keys cannot be *created*
after the workers exist: a new segment's name would not propagate.  Ship
late-arriving data (e.g. per-epoch HDG slices) through task messages
instead.

This mirrors the split in DGL's ``dis_kvstore``: bulk tensors in shared
pages, a tiny amount of metadata (names, shapes, a version counter) in
ordinary pickled state.
"""

from __future__ import annotations

import multiprocessing as mp
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArray", "KVStore"]


class SharedArray:
    """A numpy array backed by a named ``SharedMemory`` segment.

    Picklable by descriptor (name, shape, dtype): the receiving process
    re-attaches lazily on first :attr:`array` access.  Only the creating
    process should :meth:`unlink`.
    """

    def __init__(self, shape: tuple[int, ...], dtype, *, name: str | None = None,
                 create: bool = True):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        if create and name is None:
            name = f"repro_{secrets.token_hex(8)}"
        self.name = name
        self._owner = bool(create)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            name=name, create=create, size=nbytes
        ) if create else None
        self._view: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.dtype.itemsize

    @property
    def array(self) -> np.ndarray:
        """Zero-copy numpy view over the shared pages (attaches lazily)."""
        if self._view is None:
            if self._shm is None:
                self._shm = shared_memory.SharedMemory(name=self.name)
            self._view = np.ndarray(self.shape, dtype=self.dtype,
                                    buffer=self._shm.buf)
        return self._view

    def descriptor(self) -> dict:
        """JSON-serializable attach handle (name, shape, dtype) —
        enough for an unrelated process (e.g. ``tools/monitor.py``) to
        map the same segment without inheriting anything."""
        return {"name": self.name, "shape": list(self.shape),
                "dtype": self.dtype.str}

    @classmethod
    def from_descriptor(cls, descriptor: dict) -> "SharedArray":
        """Attach (read/write, non-owning) to a segment by descriptor."""
        return cls(tuple(descriptor["shape"]), descriptor["dtype"],
                   name=descriptor["name"], create=False)

    def __getstate__(self):
        return {"shape": self.shape, "dtype": self.dtype.str, "name": self.name}

    def __setstate__(self, state):
        self.shape = state["shape"]
        self.dtype = np.dtype(state["dtype"])
        self.name = state["name"]
        self._owner = False
        self._shm = None
        self._view = None

    def close(self) -> None:
        """Detach this process's mapping; :meth:`unlink` too if owner."""
        self._view = None
        if self._shm is not None:
            try:
                self._shm.close()
                if self._owner:
                    self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
            self._shm = None


class KVStore:
    """get/set/pull-batch over named shared arrays, with a version counter.

    The version counter backs parameter synchronization: the parent
    writes the fresh model state, bumps the version, then dispatches the
    epoch; workers assert the version they observe is at least the one
    the task named (queue delivery orders the shared-memory writes).
    """

    def __init__(self, ctx: mp.context.BaseContext | None = None):
        if ctx is None:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover
                ctx = mp.get_context()
        self._entries: dict[str, SharedArray] = {}
        self._version = ctx.Value("q", 0)
        #: bytes copied out by get/pull_batch in this process (accounting)
        self.pulled_bytes = 0

    # ------------------------------------------------------------------
    def set(self, key: str, value: np.ndarray) -> None:
        """Write ``value`` into ``key``, creating the segment on first use.

        Re-sets must match the existing shape and dtype — keys are
        fixed-size slots, not growable blobs.
        """
        value = np.asarray(value)
        entry = self._entries.get(key)
        if entry is None:
            entry = SharedArray(value.shape, value.dtype)
            self._entries[key] = entry
        elif entry.shape != value.shape or entry.dtype != value.dtype:
            raise ValueError(
                f"kv key {key!r} holds {entry.shape}/{entry.dtype}, "
                f"got {value.shape}/{value.dtype}"
            )
        entry.array[...] = value

    def get(self, key: str) -> np.ndarray:
        """Zero-copy view of ``key`` (raises ``KeyError`` if absent)."""
        entry = self._entries.get(key)
        if entry is None:
            raise KeyError(key)
        self.pulled_bytes += entry.nbytes
        return entry.array

    def pull_batch(self, keys: list[str]) -> dict[str, np.ndarray]:
        """Fetch several keys at once (one logical round trip)."""
        return {key: self.get(key) for key in keys}

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def nbytes(self, key: str) -> int:
        return self._entries[key].nbytes

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return int(self._version.value)

    def bump_version(self) -> int:
        with self._version.get_lock():
            self._version.value += 1
            return int(self._version.value)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach (and, in the owning process, unlink) every segment."""
        for entry in self._entries.values():
            entry.close()
