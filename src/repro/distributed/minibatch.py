"""Distributed sampled mini-batch training — synchronous data-parallel
rounds over the simulated cluster.

Combines the two extensions the paper leaves on the table: fan-out
sampling (``repro.core.sampling``) and the shared-nothing cluster model
(§5).  Each round, every worker draws a seed batch from *its own*
partition, builds sampled blocks against the global HDG, computes
locally (measured), fetches remote block features (modeled, batched per
worker pair) and joins a gradient allreduce (modeled).  The math is
exactly synchronous data-parallel SGD: one optimizer step per round on
the gradients of all workers' seeds together.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.hdg import HDG
from ..core.hybrid import ExecutionStrategy
from ..core.nau import NAUModel, SelectionScope
from ..core.sampling import sample_fanout
from ..graph.graph import Graph
from ..tensor.loss import cross_entropy
from ..tensor.ops import scatter_rows
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor
from .comm import CommConfig, SimulatedComm

__all__ = ["DistributedMiniBatchStats", "DistributedMiniBatchTrainer"]


@dataclass
class DistributedMiniBatchStats:
    """One distributed sampled epoch."""

    epoch: int
    loss: float
    simulated_seconds: float
    num_rounds: int
    total_bytes: float
    total_messages: int


class DistributedMiniBatchTrainer:
    """Synchronous data-parallel sampled training over ``k`` workers.

    Parameters mirror :class:`~repro.core.sampling.MiniBatchTrainer` plus
    a partition assignment; requires flat-HDG models.
    """

    def __init__(
        self,
        model: NAUModel,
        data,
        partition_labels: np.ndarray,
        batch_size: int = 128,
        fanouts: list[int] | None = None,
        strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
        comm_config: CommConfig | None = None,
        seed: int = 0,
    ):
        self.model = model
        # ``data`` is the input graph, or a dataset carrying one — an
        # in-RAM Dataset or an out-of-core OnDiskDataset.  With a
        # dataset, train_epoch can run without feats/labels: each
        # worker's features are gathered per batch from the dataset.
        self._dataset = data if hasattr(data, "graph") else None
        self.graph: Graph = data.graph if self._dataset is not None else data
        self.labels_part = np.asarray(partition_labels, dtype=np.int64)
        if self.labels_part.shape != (self.graph.num_vertices,):
            raise ValueError("partition labels must cover every vertex")
        self.k = int(self.labels_part.max()) + 1
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.fanouts = list(fanouts) if fanouts is not None else [10] * model.num_layers
        if len(self.fanouts) != model.num_layers:
            raise ValueError("need one fanout per layer")
        self.strategy = ExecutionStrategy.parse(strategy)
        self.comm_config = comm_config or CommConfig()
        self._rng = np.random.default_rng(seed)
        self._model_hdg: HDG | None = None
        self._hdg_epoch = -1

    # ------------------------------------------------------------------
    def _ensure_hdg(self, epoch: int) -> HDG:
        scope = self.model.selection_scope
        stale = self._model_hdg is None or (
            scope is SelectionScope.PER_EPOCH and self._hdg_epoch != epoch
        )
        if stale:
            self._model_hdg = self.model.neighbor_selection(self.graph, self._rng)
            if self._model_hdg.depth != 1:
                raise ValueError("distributed mini-batch requires flat HDGs")
            self._hdg_epoch = epoch
        return self._model_hdg

    def _worker_blocks(self, hdg: HDG, seeds: np.ndarray):
        """Per-layer (block, out_vertices) for one worker's seed batch."""
        need = np.unique(seeds)
        reversed_blocks = []
        for fanout in reversed(self.fanouts):
            sub = hdg.restrict_to_roots(need)
            block = sample_fanout(sub, fanout, self._rng)
            reversed_blocks.append((block, need))
            need = np.unique(np.concatenate([need, block.leaf_vertices]))
        return list(reversed(reversed_blocks)), need

    # ------------------------------------------------------------------
    def train_epoch(
        self,
        feats: Tensor | None = None,
        labels: np.ndarray | None = None,
        optimizer: Optimizer | None = None,
        mask: np.ndarray | None = None,
        epoch: int = 0,
    ) -> DistributedMiniBatchStats:
        """One synchronized pass over every worker's masked vertices.

        With ``feats=None`` the trainer must have been constructed with
        a dataset; each worker then gathers its batch's feature rows
        from the dataset (for ondisk data: only the touched memmap
        pages) and runs the forward in batch-local coordinates.
        """
        if optimizer is None:
            raise ValueError("train_epoch needs an optimizer")
        source = None
        if feats is None:
            from ..loader.source import as_source

            if self._dataset is None:
                raise ValueError(
                    "train_epoch needs feats unless the trainer was "
                    "constructed with a dataset"
                )
            source = as_source(self._dataset, labels)
        elif labels is None:
            raise ValueError("train_epoch needs labels when feats is given")
        self.model.train()
        hdg = self._ensure_hdg(epoch)
        n = self.graph.num_vertices
        pools = []
        for w in range(self.k):
            owned = np.flatnonzero(self.labels_part == w)
            if mask is not None:
                owned = owned[mask[owned]]
            pools.append(self._rng.permutation(owned))
        num_rounds = max(
            int(np.ceil(pool.size / self.batch_size)) for pool in pools
        )
        param_bytes = sum(p.data.nbytes for p in self.model.parameters())
        simulated = 0.0
        total_bytes = 0.0
        total_messages = 0
        losses = []
        for round_no in range(num_rounds):
            comm = SimulatedComm(self.k, self.comm_config)
            compute = np.zeros(self.k)
            round_logits = []
            round_targets = []
            for w in range(self.k):
                pool = pools[w]
                seeds = pool[round_no * self.batch_size : (round_no + 1) * self.batch_size]
                if seeds.size == 0:
                    continue
                t0 = time.perf_counter()
                blocks, input_vertices = self._worker_blocks(hdg, seeds)
                if source is None:
                    h = feats
                    for layer, (block, out_vertices) in zip(self.model.layers, blocks):
                        nbr = layer.aggregation(h, block, self.strategy)
                        h_rows = layer.update(h[out_vertices], nbr)
                        h = scatter_rows(h_rows, out_vertices, n)
                    round_logits.append(h[seeds])
                    feat_bytes = int(feats.shape[1]) * feats.data.dtype.itemsize
                else:
                    from ..loader.pipeline import compact_blocks, run_local_blocks

                    compact = compact_blocks(blocks, seeds)
                    rows = source.gather_features(compact.input_vertices)
                    h = run_local_blocks(self.model, compact, Tensor(rows),
                                         self.strategy)
                    round_logits.append(h[compact.seed_rows])
                    # Remote fetches move the storage tier's wire format
                    # (quantized codes + scales for a quantized source),
                    # not the dequantized compute rows.
                    wire_per_row = getattr(source, "wire_bytes_per_row", None)
                    feat_bytes = (int(wire_per_row) if wire_per_row is not None
                                  else int(source.feat_dim) * rows.dtype.itemsize)
                compute[w] = time.perf_counter() - t0
                round_targets.append(
                    labels[seeds] if labels is not None
                    else source.gather_labels(seeds)
                )
                # Remote feature fetches: input-block vertices owned by
                # other workers, one batched message per source worker.
                remote = input_vertices[self.labels_part[input_vertices] != w]
                if remote.size:
                    owners = self.labels_part[remote]
                    for src_w in np.unique(owners):
                        count = int((owners == src_w).sum())
                        comm.send(int(src_w), w, count * feat_bytes, messages=1)
            if not round_logits:
                continue
            from ..tensor.ops import concat

            logits = concat(round_logits, axis=0)
            targets = np.concatenate(round_targets)
            loss = cross_entropy(logits, targets)
            t0 = time.perf_counter()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            backward = time.perf_counter() - t0
            losses.append(loss.item())
            # Round wall time: slowest worker (compute + fetches), then a
            # gradient allreduce; backward parallelizes over workers.
            comm_times = comm.step_times()
            simulated += float((compute + comm_times).max())
            simulated += backward / self.k
            simulated += comm.allreduce_time(param_bytes)
            total_bytes += comm.total_bytes
            total_messages += comm.total_messages
        return DistributedMiniBatchStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else 0.0,
            simulated_seconds=simulated,
            num_rounds=num_rounds,
            total_bytes=total_bytes,
            total_messages=total_messages,
        )
