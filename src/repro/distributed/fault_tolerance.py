"""Fault tolerance for distributed training (Figure 12's FT module).

FlexGraph's architecture carries a fault-tolerance module alongside the
execution engine.  The paper does not detail it, so this implements the
standard design for synchronous data-parallel GNN training:

* :class:`CheckpointManager` — periodic model checkpoints through the
  storage tier, with bounded retention;
* :class:`FaultTolerantTrainer` — wraps a
  :class:`~repro.distributed.trainer.DistributedTrainer`; on a worker
  failure it rolls the model back to the last checkpoint, re-attaches
  the failed worker's HDG slice (its state is reconstructable from the
  globally partitioned inputs) and replays the lost epochs.

Failures are injected deterministically for testing via a
``{epoch: worker_id}`` schedule.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass

import numpy as np

from ..storage.store import load_checkpoint, save_checkpoint
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor
from .trainer import DistributedEpochStats, DistributedTrainer

__all__ = ["CheckpointManager", "FaultTolerantTrainer", "WorkerFailure", "RecoveryEvent"]


class WorkerFailure(RuntimeError):
    """Raised (or injected) when a worker dies mid-epoch.

    ``bundle`` carries the incident-bundle path the multiprocess runtime
    wrote at detection time (``None`` when black-box capture is off or
    the failure is simulated).
    """

    def __init__(self, worker_id: int, epoch: int,
                 bundle: str | None = None):
        message = f"worker {worker_id} failed during epoch {epoch}"
        if bundle:
            message += f" [bundle: {bundle}]"
        super().__init__(message)
        self.worker_id = worker_id
        self.epoch = epoch
        self.bundle = bundle


@dataclass
class RecoveryEvent:
    """One recovery: which worker died, and what it cost."""

    epoch: int
    worker_id: int
    restored_from_epoch: int
    replayed_epochs: int
    #: incident bundle written when the failure was detected, if any
    bundle: str | None = None


class CheckpointManager:
    """Periodic checkpoints with bounded retention.

    Checkpoints are written every ``interval`` epochs to
    ``<directory>/ckpt_<epoch>.npz``; at most ``keep`` newest ones are
    retained.
    """

    def __init__(self, directory: str, interval: int = 1, keep: int = 3):
        if interval < 1 or keep < 1:
            raise ValueError("interval and keep must be >= 1")
        self.directory = directory
        self.interval = interval
        self.keep = keep
        os.makedirs(directory, exist_ok=True)
        # Resume retention state from disk so a restarted manager (e.g.
        # after a coordinator crash) finds the snapshots already written.
        self._epochs: list[int] = sorted(
            int(name[len("ckpt_"):-len(".npz")])
            for name in os.listdir(directory)
            if name.startswith("ckpt_") and name.endswith(".npz")
            and name[len("ckpt_"):-len(".npz")].isdigit()
        )

    def _path(self, epoch: int) -> str:
        return os.path.join(self.directory, f"ckpt_{epoch:06d}.npz")

    def maybe_save(self, epoch: int, state: dict[str, np.ndarray],
                   metadata: dict | None = None) -> bool:
        """Save if ``epoch`` hits the interval; prune old checkpoints."""
        if (epoch + 1) % self.interval != 0:
            return False
        save_checkpoint(state, self._path(epoch), {"epoch": epoch, **(metadata or {})})
        # Replayed epochs (post-recovery) re-save the same epoch number:
        # keep the retention list deduplicated and sorted, otherwise the
        # pruning loop pops the duplicate instead of an older checkpoint
        # and silently retains more files than ``keep``.
        if epoch not in self._epochs:
            bisect.insort(self._epochs, epoch)
        while len(self._epochs) > self.keep:
            stale = self._epochs.pop(0)
            path = self._path(stale)
            if os.path.exists(path):
                os.remove(path)
        return True

    @property
    def latest_epoch(self) -> int | None:
        return self._epochs[-1] if self._epochs else None

    def load_latest(self) -> tuple[dict[str, np.ndarray], dict] | None:
        """Load the newest checkpoint, or None if none exists."""
        if not self._epochs:
            return None
        return load_checkpoint(self._path(self._epochs[-1]))


class FaultTolerantTrainer:
    """Checkpoint-and-replay recovery around a distributed trainer."""

    def __init__(self, trainer: DistributedTrainer, checkpoint_dir: str,
                 interval: int = 1, keep: int = 3):
        self.trainer = trainer
        self.checkpoints = CheckpointManager(checkpoint_dir, interval, keep)
        self.recoveries: list[RecoveryEvent] = []
        # Pre-training model + optimizer snapshot, captured at train()
        # entry: the no-checkpoint recovery path restores it so a
        # "restart from scratch" really is bit-identical to a fresh run.
        self._initial_state: tuple[dict, dict] | None = None

    def train(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        num_epochs: int,
        mask: np.ndarray | None = None,
        failure_schedule: dict[int, int] | None = None,
    ) -> list[DistributedEpochStats]:
        """Train ``num_epochs`` epochs, surviving injected worker failures.

        ``failure_schedule`` maps epoch -> worker id; the worker "dies"
        once at the start of that epoch.  Recovery rolls model AND
        optimizer state back to the last checkpoint, re-attaches the
        worker's HDG slice and replays from there, so training after a
        recovery is bit-identical to a failure-free run resumed at that
        checkpoint (modulo stochastic NeighborSelection, which is
        re-drawn like any restarted epoch would).
        """
        failure_schedule = dict(failure_schedule or {})
        history: list[DistributedEpochStats] = []
        self._initial_state = (
            {k: np.copy(v) for k, v in self.trainer.model.state_dict().items()},
            {k: np.copy(v) for k, v in optimizer.state_dict().items()},
        )
        epoch = 0
        while epoch < num_epochs:
            if epoch in failure_schedule:
                worker_id = failure_schedule.pop(epoch)
                if hasattr(self.trainer, "inject_failure"):
                    # Multiprocess runtime: kill the real worker process;
                    # the epoch attempt below raises WorkerFailure.
                    self.trainer.inject_failure(worker_id)
                else:
                    self._recover(
                        WorkerFailure(worker_id, epoch), optimizer, history
                    )
                    epoch = len(history)
                    continue
            try:
                stats = self.trainer.train_epoch(
                    feats, labels, optimizer, mask, epoch
                )
            except WorkerFailure as failure:
                self._recover(failure, optimizer, history)
                epoch = len(history)
                continue
            history.append(stats)
            combined = {
                f"model/{k}": v for k, v in self.trainer.model.state_dict().items()
            }
            combined.update(
                {f"opt/{k}": np.asarray(v) for k, v in optimizer.state_dict().items()}
            )
            self.checkpoints.maybe_save(epoch, combined, {"loss": stats.loss})
            epoch += 1
        return history

    def _recover(self, failure: WorkerFailure, optimizer: Optimizer,
                 history: list[DistributedEpochStats]) -> None:
        """Restore model + optimizer state and the failed worker's slice."""
        loaded = self.checkpoints.load_latest()
        if loaded is None:
            restored_epoch = -1
            # Nothing saved yet: restart from scratch by restoring the
            # state snapshotted at train() entry — merely clearing grads
            # would keep the partially-trained weights and make the
            # "fresh" rerun diverge from an actual fresh run.
            if self._initial_state is not None:
                model_state, opt_state = self._initial_state
                self.trainer.model.load_state_dict(
                    {k: np.copy(v) for k, v in model_state.items()}
                )
                optimizer.load_state_dict(
                    {k: np.copy(v) for k, v in opt_state.items()}
                )
            for p in self.trainer.model.parameters():
                p.grad = None
        else:
            state, metadata = loaded
            model_state = {
                k[len("model/"):]: v for k, v in state.items() if k.startswith("model/")
            }
            opt_state = {
                k[len("opt/"):]: v for k, v in state.items() if k.startswith("opt/")
            }
            self.trainer.model.load_state_dict(model_state)
            optimizer.load_state_dict(opt_state)
            restored_epoch = int(metadata["epoch"])
        # The failed worker's sub-HDG is reconstructed from the global
        # HDGs (shared-nothing state is derived, not primary).
        if self.trainer._model_hdg is not None:
            self.trainer.workers[failure.worker_id].attach_hdg(
                self.trainer._model_hdg
            )
        # Multiprocess runtime: respawn the worker pool (the dead
        # process took its peers' barrier down with it).
        if hasattr(self.trainer, "heal"):
            self.trainer.heal()
        replayed = len(history) - (restored_epoch + 1)
        del history[restored_epoch + 1 :]
        self.recoveries.append(
            RecoveryEvent(
                epoch=failure.epoch,
                worker_id=failure.worker_id,
                restored_from_epoch=restored_epoch,
                replayed_epochs=max(replayed, 0),
                bundle=getattr(failure, "bundle", None),
            )
        )
