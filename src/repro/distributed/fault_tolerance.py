"""Fault tolerance for distributed training (Figure 12's FT module).

FlexGraph's architecture carries a fault-tolerance module alongside the
execution engine.  The paper does not detail it, so this implements the
standard design for synchronous data-parallel GNN training:

* :class:`CheckpointManager` — periodic model checkpoints through the
  storage tier, with bounded retention;
* :class:`FaultTolerantTrainer` — wraps a
  :class:`~repro.distributed.trainer.DistributedTrainer`; on a worker
  failure it rolls the model back to the last checkpoint, re-attaches
  the failed worker's HDG slice (its state is reconstructable from the
  globally partitioned inputs) and replays the lost epochs.

Failures are injected deterministically for testing via a
``{epoch: worker_id}`` schedule.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..storage.store import load_checkpoint, save_checkpoint
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor
from .trainer import DistributedEpochStats, DistributedTrainer

__all__ = ["CheckpointManager", "FaultTolerantTrainer", "WorkerFailure", "RecoveryEvent"]


class WorkerFailure(RuntimeError):
    """Raised (or injected) when a worker dies mid-epoch."""

    def __init__(self, worker_id: int, epoch: int):
        super().__init__(f"worker {worker_id} failed during epoch {epoch}")
        self.worker_id = worker_id
        self.epoch = epoch


@dataclass
class RecoveryEvent:
    """One recovery: which worker died, and what it cost."""

    epoch: int
    worker_id: int
    restored_from_epoch: int
    replayed_epochs: int


class CheckpointManager:
    """Periodic checkpoints with bounded retention.

    Checkpoints are written every ``interval`` epochs to
    ``<directory>/ckpt_<epoch>.npz``; at most ``keep`` newest ones are
    retained.
    """

    def __init__(self, directory: str, interval: int = 1, keep: int = 3):
        if interval < 1 or keep < 1:
            raise ValueError("interval and keep must be >= 1")
        self.directory = directory
        self.interval = interval
        self.keep = keep
        os.makedirs(directory, exist_ok=True)
        # Resume retention state from disk so a restarted manager (e.g.
        # after a coordinator crash) finds the snapshots already written.
        self._epochs: list[int] = sorted(
            int(name[len("ckpt_"):-len(".npz")])
            for name in os.listdir(directory)
            if name.startswith("ckpt_") and name.endswith(".npz")
            and name[len("ckpt_"):-len(".npz")].isdigit()
        )

    def _path(self, epoch: int) -> str:
        return os.path.join(self.directory, f"ckpt_{epoch:06d}.npz")

    def maybe_save(self, epoch: int, state: dict[str, np.ndarray],
                   metadata: dict | None = None) -> bool:
        """Save if ``epoch`` hits the interval; prune old checkpoints."""
        if (epoch + 1) % self.interval != 0:
            return False
        save_checkpoint(state, self._path(epoch), {"epoch": epoch, **(metadata or {})})
        self._epochs.append(epoch)
        while len(self._epochs) > self.keep:
            stale = self._epochs.pop(0)
            path = self._path(stale)
            if os.path.exists(path):
                os.remove(path)
        return True

    @property
    def latest_epoch(self) -> int | None:
        return self._epochs[-1] if self._epochs else None

    def load_latest(self) -> tuple[dict[str, np.ndarray], dict] | None:
        """Load the newest checkpoint, or None if none exists."""
        if not self._epochs:
            return None
        return load_checkpoint(self._path(self._epochs[-1]))


class FaultTolerantTrainer:
    """Checkpoint-and-replay recovery around a distributed trainer."""

    def __init__(self, trainer: DistributedTrainer, checkpoint_dir: str,
                 interval: int = 1, keep: int = 3):
        self.trainer = trainer
        self.checkpoints = CheckpointManager(checkpoint_dir, interval, keep)
        self.recoveries: list[RecoveryEvent] = []

    def train(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        num_epochs: int,
        mask: np.ndarray | None = None,
        failure_schedule: dict[int, int] | None = None,
    ) -> list[DistributedEpochStats]:
        """Train ``num_epochs`` epochs, surviving injected worker failures.

        ``failure_schedule`` maps epoch -> worker id; the worker "dies"
        once at the start of that epoch.  Recovery rolls model AND
        optimizer state back to the last checkpoint, re-attaches the
        worker's HDG slice and replays from there, so training after a
        recovery is bit-identical to a failure-free run resumed at that
        checkpoint (modulo stochastic NeighborSelection, which is
        re-drawn like any restarted epoch would).
        """
        failure_schedule = dict(failure_schedule or {})
        history: list[DistributedEpochStats] = []
        epoch = 0
        while epoch < num_epochs:
            if epoch in failure_schedule:
                worker_id = failure_schedule.pop(epoch)
                self._recover(WorkerFailure(worker_id, epoch), optimizer, history)
                epoch = len(history)
                continue
            stats = self.trainer.train_epoch(feats, labels, optimizer, mask, epoch)
            history.append(stats)
            combined = {
                f"model/{k}": v for k, v in self.trainer.model.state_dict().items()
            }
            combined.update(
                {f"opt/{k}": np.asarray(v) for k, v in optimizer.state_dict().items()}
            )
            self.checkpoints.maybe_save(epoch, combined, {"loss": stats.loss})
            epoch += 1
        return history

    def _recover(self, failure: WorkerFailure, optimizer: Optimizer,
                 history: list[DistributedEpochStats]) -> None:
        """Restore model + optimizer state and the failed worker's slice."""
        loaded = self.checkpoints.load_latest()
        if loaded is None:
            restored_epoch = -1
            # Nothing saved yet: restart from scratch.
            for p in self.trainer.model.parameters():
                p.grad = None
        else:
            state, metadata = loaded
            model_state = {
                k[len("model/"):]: v for k, v in state.items() if k.startswith("model/")
            }
            opt_state = {
                k[len("opt/"):]: v for k, v in state.items() if k.startswith("opt/")
            }
            self.trainer.model.load_state_dict(model_state)
            optimizer.load_state_dict(opt_state)
            restored_epoch = int(metadata["epoch"])
        # The failed worker's sub-HDG is reconstructed from the global
        # HDGs (shared-nothing state is derived, not primary).
        if self.trainer._model_hdg is not None:
            self.trainer.workers[failure.worker_id].attach_hdg(
                self.trainer._model_hdg
            )
        replayed = len(history) - (restored_epoch + 1)
        del history[restored_epoch + 1 :]
        self.recoveries.append(
            RecoveryEvent(
                epoch=failure.epoch,
                worker_id=failure.worker_id,
                restored_from_epoch=restored_epoch,
                replayed_epochs=max(replayed, 0),
            )
        )
