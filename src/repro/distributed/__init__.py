"""``repro.distributed`` — simulated shared-nothing distributed training.

Real per-worker computation (sliced HDG aggregation, measured with wall
clocks) combined with an alpha-beta network model: workload balancing,
batching, partial aggregation and pipeline overlap all act on genuine
quantities (§5).
"""

from .cluster import ScalingPoint, flexgraph_scaling, model_baseline_scaling
from .fault_tolerance import (
    CheckpointManager,
    FaultTolerantTrainer,
    RecoveryEvent,
    WorkerFailure,
)
from .comm import Comm, CommConfig, ProcessComm, SimulatedComm
from .kvstore import KVStore, SharedArray
from .minibatch import DistributedMiniBatchStats, DistributedMiniBatchTrainer
from .pipeline import CommPlan, DependencyStats, dependency_stats, plan_layer_comm
from .runtime import MultiprocessEpochStats, MultiprocessTrainer
from .trainer import DistributedEpochStats, DistributedTrainer
from .worker import Worker

__all__ = [
    "Comm", "CommConfig", "SimulatedComm", "ProcessComm",
    "KVStore", "SharedArray",
    "MultiprocessTrainer", "MultiprocessEpochStats",
    "DependencyStats", "dependency_stats", "CommPlan", "plan_layer_comm",
    "Worker",
    "DistributedTrainer", "DistributedEpochStats",
    "DistributedMiniBatchTrainer", "DistributedMiniBatchStats",
    "ScalingPoint", "flexgraph_scaling", "model_baseline_scaling",
    "CheckpointManager", "FaultTolerantTrainer", "WorkerFailure",
    "RecoveryEvent",
]
