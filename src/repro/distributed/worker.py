"""Per-partition worker state for the simulated shared-nothing cluster."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hdg import HDG

__all__ = ["Worker"]


@dataclass
class Worker:
    """One shared-nothing worker: its vertices and its slice of the HDGs.

    ``root_orders`` indexes into the global HDG root ordering; ``sub_hdg``
    is the restriction of the current model HDG to this worker's roots
    (leaf ids stay global — remote leaves are what synchronization pays
    for).
    """

    worker_id: int
    root_orders: np.ndarray
    sub_hdg: HDG | None = None
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0

    @property
    def num_roots(self) -> int:
        return int(self.root_orders.size)

    def reset_epoch(self) -> None:
        self.compute_seconds = 0.0
        self.comm_seconds = 0.0

    def attach_hdg(self, model_hdg: HDG) -> None:
        """Slice the freshly built model HDG down to this worker's roots."""
        self.sub_hdg = model_hdg.restrict_to_roots(self.root_orders)
