"""Distributed FlexGraph training over a simulated shared-nothing cluster.

The trainer executes the *real* computation of every worker (sliced
per-partition HDG aggregation + update, measured with wall clocks) in one
process, and combines it with modeled network time from
:mod:`repro.distributed.pipeline`.  One epoch's simulated wall time is::

    sum over layers of max over workers of layer_time(worker)
    + backward time / k          (data-parallel backward)
    + parameter allreduce time

where ``layer_time`` is ``max(compute, comm) + combine`` with pipeline
processing (overlap of partial aggregation and communication) or
``compute + comm`` without it.  This reproduces the quantities Figures 13
and 15b/c measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.hdg import HDG
from ..core.hybrid import ExecutionStrategy
from ..core.nau import NAUModel, SelectionScope
from ..tensor.loss import cross_entropy
from ..tensor.optim import Optimizer
from ..tensor.plans import get_plan_cache
from ..tensor.ops import concat
from ..tensor.tensor import Tensor
from .comm import CommConfig, SimulatedComm
from .pipeline import dependency_stats, plan_layer_comm
from .worker import Worker

__all__ = ["DistributedEpochStats", "DistributedTrainer"]

#: combining received partial aggregates costs a small multiple of the
#: transfer itself (one streaming add over the received values).
_COMBINE_FRACTION = 0.1


@dataclass
class DistributedEpochStats:
    """Simulated timing of one distributed epoch."""

    epoch: int
    loss: float
    simulated_seconds: float
    compute_seconds: np.ndarray      # per worker, summed over layers
    comm_seconds: np.ndarray         # per worker, summed over layers
    selection_seconds: float
    total_bytes: float
    total_messages: int
    #: the mode the layer plans actually used ("pipelined" / "batched" /
    #: "naive", or "mixed" when layers differed) — a non-commutative
    #: aggregator downgrades a requested pipelined plan to batched.
    comm_mode: str


class DistributedTrainer:
    """Train a NAU model across ``k`` simulated shared-nothing workers.

    Parameters
    ----------
    model:
        The NAU program (same object the single-machine engine runs).
    graph, labels, feats:
        The training task, held globally; per-worker slices are views.
    partition_labels:
        Vertex -> worker assignment (from Hash/PuLP/ADB).
    strategy:
        Aggregation execution strategy per worker.
    pipeline:
        Enable partial aggregation + comm/compute overlap (Figure 15b/c's
        "w/ PP"); ``False`` degrades to batched-but-sequential sync.
    comm_config:
        Network cost model.
    """

    def __init__(
        self,
        model: NAUModel,
        graph,
        partition_labels: np.ndarray,
        strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
        pipeline: bool = True,
        comm_config: CommConfig | None = None,
        seed: int = 0,
        worker_speeds: np.ndarray | None = None,
    ):
        self.model = model
        self.graph = graph
        self.labels_part = np.asarray(partition_labels, dtype=np.int64)
        if self.labels_part.shape != (graph.num_vertices,):
            raise ValueError("partition labels must cover every vertex")
        self.k = int(self.labels_part.max()) + 1
        self.strategy = ExecutionStrategy.parse(strategy)
        self.pipeline = pipeline
        self.comm_config = comm_config or CommConfig()
        # Relative compute speed per worker (1.0 = this machine); the
        # simulated layer time divides each worker's measured compute by
        # its speed, modeling heterogeneous clusters.
        if worker_speeds is None:
            self.worker_speeds = np.ones(self.k)
        else:
            self.worker_speeds = np.asarray(worker_speeds, dtype=np.float64)
            if self.worker_speeds.shape != (self.k,):
                raise ValueError(f"worker_speeds must have shape ({self.k},)")
            if (self.worker_speeds <= 0).any():
                raise ValueError("worker speeds must be positive")
        self._rng = np.random.default_rng(seed)
        self._model_hdg: HDG | None = None
        self._hdg_epoch = -1
        self._dep_stats = None
        # Worker root sets follow the global HDG root order (vertex id).
        self.workers = [
            Worker(w, np.flatnonzero(self.labels_part == w)) for w in range(self.k)
        ]
        # The reassembly permutation (worker-concatenation order -> vertex
        # order) depends only on the fixed partition, so compute it once
        # instead of per layer per epoch.
        n = graph.num_vertices
        self._order = np.concatenate([w.root_orders for w in self.workers])
        self._inverse = np.empty(n, dtype=np.int64)
        self._inverse[self._order] = np.arange(n)

    # ------------------------------------------------------------------
    def _ensure_hdg(self, epoch: int) -> HDG:
        scope = self.model.selection_scope
        stale = self._model_hdg is None or (
            scope is SelectionScope.PER_EPOCH and self._hdg_epoch != epoch
        )
        if stale:
            with obs.span("dist.neighbor_selection", epoch=epoch) as s_sel:
                self._model_hdg = self.model.neighbor_selection(self.graph, self._rng)
                obs.record_op("neighbor_selection.hdg",
                              bytes_read=self._model_hdg.nbytes)
            self._selection_wall = s_sel.duration
            self._hdg_epoch = epoch
            for worker in self.workers:
                worker.attach_hdg(self._model_hdg)
            self._dep_stats = dependency_stats(
                self._model_hdg, self.labels_part, self.k
            )
        else:
            self._selection_wall = 0.0
        return self._model_hdg

    def _layer_commutative(self, layer) -> bool:
        """Partial aggregation needs a commutative bottom-level UDF (§5)."""
        if not layer.aggregators:
            return True
        return layer.aggregators[0].name in ("sum", "mean", "max", "min", "weighted_sum")

    # ------------------------------------------------------------------
    def train_epoch(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        mask: np.ndarray | None = None,
        epoch: int = 0,
    ) -> DistributedEpochStats:
        """One data-parallel full-batch epoch with simulated-time accounting."""
        self.model.train()
        self._ensure_hdg(epoch)
        work_mark = obs.work_snapshot()
        plan_cache = get_plan_cache()
        plan_mark = (plan_cache.hits, plan_cache.misses)
        for worker in self.workers:
            worker.reset_epoch()
        # Selection is embarrassingly parallel across partitions (§5:
        # "FlexGraph constructs a subgraph of HDGs in parallel").
        selection_sim = self._selection_wall / self.k

        h = feats
        simulated = selection_sim
        total_bytes = 0.0
        total_messages = 0
        mode = "pipelined" if self.pipeline else "batched"
        effective_modes: set[str] = set()

        for layer_index, layer in enumerate(self.model.layers):
            feat_bytes = int(h.shape[1]) * h.data.dtype.itemsize
            commutative = self._layer_commutative(layer)
            plan = plan_layer_comm(
                self._dep_stats, feat_bytes, self.comm_config, mode, commutative
            )
            effective_modes.add(plan.mode)
            total_bytes += plan.total_bytes
            total_messages += plan.total_messages

            outputs = []
            compute = np.zeros(self.k)
            for worker in self.workers:
                # scale= divides measured time by the worker's modeled
                # speed, so the recorded span carries the effective
                # duration straggler analysis and histograms must see.
                with obs.span("dist.compute",
                              scale=1.0 / self.worker_speeds[worker.worker_id],
                              worker=worker.worker_id,
                              layer=layer_index, epoch=epoch) as s_cmp:
                    nbr = layer.aggregation(h, worker.sub_hdg, self.strategy)
                    h_w = layer.update(h[worker.root_orders], nbr)
                compute[worker.worker_id] = s_cmp.duration
                outputs.append(h_w)

            combine = (
                _COMBINE_FRACTION * plan.per_worker_seconds
                if plan.overlaps_compute
                else np.zeros(self.k)
            )
            for worker in self.workers:
                w = worker.worker_id
                obs.record_span("dist.comm", float(plan.per_worker_seconds[w]),
                                worker=w, layer=layer_index, epoch=epoch,
                                mode=plan.mode)
                if plan.overlaps_compute:
                    obs.record_span("dist.combine", float(combine[w]),
                                    worker=w, layer=layer_index, epoch=epoch)
            if plan.overlaps_compute:
                layer_times = np.maximum(compute, plan.per_worker_seconds) + combine
            else:
                layer_times = compute + plan.per_worker_seconds
            simulated += float(layer_times.max())
            for worker in self.workers:
                worker.compute_seconds += compute[worker.worker_id]
                worker.comm_seconds += plan.per_worker_seconds[worker.worker_id]

            # Reassemble the global feature matrix in vertex order
            # (differentiable permutation; self._inverse is fixed by the
            # partition, computed once in __init__).
            stacked = concat(outputs, axis=0)
            h = stacked[self._inverse]

        loss = cross_entropy(h, labels, mask)
        with obs.span("dist.backward", epoch=epoch) as s_back:
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        simulated += s_back.duration / self.k
        param_bytes = sum(p.data.nbytes for p in self.model.parameters())
        allreduce = SimulatedComm(self.k, self.comm_config).allreduce_time(param_bytes)
        obs.record_span("dist.allreduce", allreduce, epoch=epoch,
                        bytes=param_bytes)
        simulated += allreduce

        # Report the mode the plans actually used: a non-commutative
        # aggregator silently downgrades pipelined -> batched (§5), and
        # models can mix commutative and non-commutative layers.
        if len(effective_modes) == 1:
            effective_mode = next(iter(effective_modes))
        elif effective_modes:
            effective_mode = "mixed"
        else:
            effective_mode = mode

        per_worker_compute = np.array([w.compute_seconds for w in self.workers])
        mean_compute = per_worker_compute.mean()
        balance = (
            float(per_worker_compute.max() / mean_compute)
            if mean_compute > 0 else 1.0
        )
        work = obs.work_since(work_mark)
        obs.epoch_log().log(
            epoch,
            loss=loss.item(),
            simulated_seconds=simulated,
            bytes=total_bytes,
            messages=total_messages,
            balance_factor=balance,
            vertices_per_sec=(
                self.graph.num_vertices / simulated if simulated > 0 else 0.0
            ),
            comm_mode=effective_mode,
            flops=work["flops"],
            work_bytes=work["bytes_read"] + work["bytes_written"],
            plan_hits=plan_cache.hits - plan_mark[0],
            plan_misses=plan_cache.misses - plan_mark[1],
        )

        return DistributedEpochStats(
            epoch=epoch,
            loss=loss.item(),
            simulated_seconds=simulated,
            compute_seconds=per_worker_compute,
            comm_seconds=np.array([w.comm_seconds for w in self.workers]),
            selection_seconds=selection_sim,
            total_bytes=total_bytes,
            total_messages=total_messages,
            comm_mode=effective_mode,
        )

    def aggregation_epoch_time(self, feats: Tensor, epoch: int = 0) -> float:
        """Simulated seconds of the Aggregation stage only (Figures 15a-c
        measure Aggregation rather than end-to-end epochs)."""
        self._ensure_hdg(epoch)
        h = feats
        simulated = 0.0
        mode = "pipelined" if self.pipeline else "batched"

        for layer_index, layer in enumerate(self.model.layers):
            feat_bytes = int(h.shape[1]) * h.data.dtype.itemsize
            plan = plan_layer_comm(
                self._dep_stats, feat_bytes, self.comm_config, mode,
                self._layer_commutative(layer),
            )
            compute = np.zeros(self.k)
            outputs = []
            for worker in self.workers:
                with obs.span("dist.compute",
                              scale=1.0 / self.worker_speeds[worker.worker_id],
                              worker=worker.worker_id,
                              layer=layer_index, epoch=epoch) as s_cmp:
                    nbr = layer.aggregation(h, worker.sub_hdg, self.strategy)
                compute[worker.worker_id] = s_cmp.duration
                # Update runs untimed: this method isolates Aggregation.
                outputs.append(layer.update(h[worker.root_orders], nbr))
            if plan.overlaps_compute:
                layer_times = (
                    np.maximum(compute, plan.per_worker_seconds)
                    + _COMBINE_FRACTION * plan.per_worker_seconds
                )
            else:
                layer_times = compute + plan.per_worker_seconds
            simulated += float(layer_times.max())
            stacked = concat(outputs, axis=0)
            h = stacked[self._inverse]
        return simulated
