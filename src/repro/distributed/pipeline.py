"""Communication planning: dependency stats, batching and overlap (§5).

Given the HDGs and a partition assignment, this module computes, per
worker and layer, what must cross the network:

* **naive** plan — every remote leaf feature is fetched individually,
  then aggregation starts (the dataflow-style baseline Euler uses: "starts
  the Aggregate operation after all required features are synchronized");
* **batched** plan — features bound for the same worker travel in one
  assembled message (always available, even for non-commutative
  aggregators);
* **pipelined** plan — additionally applies *partial aggregation*: the
  sender pre-reduces, per (root, remote partition), everything it owns
  into a single ``dim``-sized message, and the receiver overlaps its local
  partial aggregation with the transfer.  Valid only when the bottom-level
  aggregation function is commutative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hdg import HDG
from ..obs import event as _obs_event
from ..obs import histogram as _obs_histogram
from .comm import CommConfig, SimulatedComm

#: per-message payload size distribution across all planned transfers —
#: the skew between naive (many tiny messages) and batched/pipelined
#: (few assembled ones) is the whole point of §5's batching.
MESSAGE_BYTES_HISTOGRAM = "comm.message_bytes"

__all__ = ["DependencyStats", "dependency_stats", "CommPlan",
           "plan_layer_comm", "MESSAGE_BYTES_HISTOGRAM"]


@dataclass
class DependencyStats:
    """Cross-partition dependency counts for one HDG + partition."""

    k: int
    #: remote bottom-level edges per pair — the per-root feature
    #: collection of the straightforward path ("first collect features of
    #: its 1-hop neighbors at other partitions"); drives naive/batched
    remote_edges_per_pair: np.ndarray    # (k, k) counts, [dst_worker, src_worker]
    #: unique (worker, remote leaf vertex) pairs (analysis/diagnostics)
    remote_leaves_per_pair: np.ndarray   # (k, k)
    #: unique (root, remote partition) pairs; drives partial aggregation
    partial_messages_per_pair: np.ndarray  # (k, k)
    #: bottom-level edge counts whose leaf is local vs remote, per worker
    local_edges: np.ndarray              # (k,)
    remote_edges: np.ndarray             # (k,)


def dependency_stats(hdg: HDG, labels: np.ndarray, k: int) -> DependencyStats:
    """Vectorized cross-partition dependency accounting."""
    labels = np.asarray(labels, dtype=np.int64)
    root_per_edge = hdg.root_of_leaf_edges()          # root order per edge
    root_vertex = hdg.roots[root_per_edge]            # global root id
    leaf_vertex = hdg.leaf_vertices
    w_root = labels[root_vertex]
    w_leaf = labels[leaf_vertex]
    remote = w_root != w_leaf

    remote_edge_pairs = np.zeros((k, k), dtype=np.int64)
    remote_leaves = np.zeros((k, k), dtype=np.int64)
    partial_msgs = np.zeros((k, k), dtype=np.int64)
    local_edges = np.zeros(k, dtype=np.int64)
    remote_edges = np.zeros(k, dtype=np.int64)

    np.add.at(local_edges, w_root[~remote], 1)
    np.add.at(remote_edges, w_root[remote], 1)

    if remote.any():
        dst_w = w_root[remote]
        src_w = w_leaf[remote]
        np.add.at(remote_edge_pairs.reshape(-1), dst_w * k + src_w, 1)
        # Unique (dst worker, src worker, leaf) triples -> dedup fetch counts.
        leaf = leaf_vertex[remote]
        triple = (dst_w * k + src_w) * hdg.num_input_vertices + leaf
        uniq = np.unique(triple)
        pair = uniq // hdg.num_input_vertices
        np.add.at(remote_leaves.reshape(-1), pair, 1)
        # Unique (root, src worker) pairs -> partial-aggregation messages.
        root = root_vertex[remote]
        pair2 = root.astype(np.int64) * k + src_w
        uniq2 = np.unique(pair2)
        dst_of = labels[uniq2 // k]
        src_of = uniq2 % k
        np.add.at(partial_msgs.reshape(-1), dst_of * k + src_of, 1)
    return DependencyStats(
        k, remote_edge_pairs, remote_leaves, partial_msgs, local_edges, remote_edges
    )


@dataclass
class CommPlan:
    """Per-worker modeled communication seconds for one layer."""

    mode: str
    per_worker_seconds: np.ndarray
    total_bytes: float
    total_messages: int
    #: True when comm may overlap the worker's local partial aggregation
    overlaps_compute: bool


def plan_layer_comm(
    stats: DependencyStats,
    feat_bytes: int,
    config: CommConfig,
    mode: str = "pipelined",
    commutative: bool = True,
) -> CommPlan:
    """Model one layer's communication under a synchronization plan.

    Parameters
    ----------
    stats:
        Output of :func:`dependency_stats`.
    feat_bytes:
        Bytes of one vertex feature row at this layer (dim * 8).
    mode:
        ``naive`` | ``batched`` | ``pipelined``.
    commutative:
        Whether the bottom-level aggregator admits partial aggregation;
        a pipelined plan falls back to batching when it does not (§5).
    """
    k = stats.k
    comm = SimulatedComm(k, config)
    size_hist = _obs_histogram(MESSAGE_BYTES_HISTOGRAM)
    if mode == "pipelined" and not commutative:
        mode_effective = "batched"
    else:
        mode_effective = mode
    if mode_effective == "naive":
        # One message per remote leaf feature *per root* — the
        # straightforward per-vertex collection of §5.
        for dst in range(k):
            for src in range(k):
                count = int(stats.remote_edges_per_pair[dst, src])
                if count:
                    comm.send(src, dst, count * feat_bytes, messages=count)
                    size_hist.observe(feat_bytes, count=count)
        overlaps = False
    elif mode_effective == "batched":
        # Same per-root features, but everything bound for the same
        # (src, dst) pair travels in one assembled message.
        for dst in range(k):
            for src in range(k):
                count = int(stats.remote_edges_per_pair[dst, src])
                if count:
                    comm.send(src, dst, count * feat_bytes, messages=1)
                    size_hist.observe(count * feat_bytes)
        overlaps = False
    elif mode_effective == "pipelined":
        # Partial aggregation: one dim-sized value per (root, remote
        # partition), all values for a (src, dst) pair in one message.
        for dst in range(k):
            for src in range(k):
                count = int(stats.partial_messages_per_pair[dst, src])
                if count:
                    comm.send(src, dst, count * feat_bytes, messages=1)
                    size_hist.observe(count * feat_bytes)
        overlaps = True
    else:
        raise ValueError(f"unknown comm mode {mode!r}")
    _obs_event(
        "comm.plan",
        mode=mode_effective,
        requested_mode=mode,
        bytes=comm.total_bytes,
        messages=comm.total_messages,
        overlaps_compute=overlaps,
    )
    return CommPlan(
        mode=mode_effective,
        per_worker_seconds=comm.step_times(),
        total_bytes=comm.total_bytes,
        total_messages=comm.total_messages,
        overlaps_compute=overlaps,
    )
