"""Cluster-level helpers: scaling sweeps and distributed baseline models.

:func:`flexgraph_scaling` runs the real simulated-cluster trainer across
worker counts (Figure 13's x-axis).  The distributed baselines (DistDGL,
Euler) are modeled coarsely from their measured single-machine epoch plus
their communication patterns — they lack partial aggregation and
comm/compute overlap, so remote-neighbor features cross the network in
full and synchronization serializes with computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hybrid import ExecutionStrategy
from ..core.nau import NAUModel
from ..tensor.optim import Adam
from ..tensor.tensor import Tensor
from .comm import CommConfig
from .trainer import DistributedTrainer

__all__ = ["ScalingPoint", "flexgraph_scaling", "model_baseline_scaling"]


@dataclass
class ScalingPoint:
    """One (worker count, epoch seconds) measurement."""

    k: int
    seconds: float
    loss: float | None = None


def flexgraph_scaling(
    model_factory,
    dataset,
    worker_counts: list[int],
    partitioner,
    pipeline: bool = True,
    comm_config: CommConfig | None = None,
    seed: int = 0,
) -> list[ScalingPoint]:
    """Simulated FlexGraph epoch time for each worker count.

    ``model_factory()`` must return a fresh NAU model; ``partitioner(k)``
    must return a vertex -> worker assignment.
    """
    points = []
    feats = Tensor(dataset.features.astype(np.float64))
    for k in worker_counts:
        model: NAUModel = model_factory()
        trainer = DistributedTrainer(
            model, dataset.graph, partitioner(k),
            strategy=ExecutionStrategy.HA, pipeline=pipeline,
            comm_config=comm_config, seed=seed,
        )
        optimizer = Adam(model.parameters(), lr=0.01)
        # Warm one epoch (HDG build), measure the second (steady state).
        trainer.train_epoch(feats, dataset.labels, optimizer, dataset.train_mask, 0)
        stats = trainer.train_epoch(
            feats, dataset.labels, optimizer, dataset.train_mask, 1
        )
        points.append(ScalingPoint(k, stats.simulated_seconds, stats.loss))
    return points


def model_baseline_scaling(
    single_machine_seconds: float,
    worker_counts: list[int],
    bytes_per_epoch: float,
    messages_per_epoch: int,
    comm_config: CommConfig | None = None,
    parallel_fraction: float = 0.95,
) -> list[ScalingPoint]:
    """Amdahl + alpha-beta model of a distributed baseline (DistDGL/Euler).

    ``bytes_per_epoch`` is the feature traffic the engine's strategy needs
    at k workers = 2 (scaled by the remote-edge fraction ``(k-1)/k`` for
    other k); communication is *not* overlapped with computation (neither
    system pipelines partial aggregation, §5).
    """
    config = comm_config or CommConfig()
    points = []
    for k in worker_counts:
        compute = single_machine_seconds * (
            (1 - parallel_fraction) + parallel_fraction / k
        )
        if k == 1:
            comm = 0.0
        else:
            remote_fraction = (k - 1) / k / 0.5  # normalize to the k=2 base
            per_worker_bytes = bytes_per_epoch * remote_fraction / k
            per_worker_msgs = max(1, int(messages_per_epoch * remote_fraction / k))
            comm = config.message_time(per_worker_bytes, per_worker_msgs)
        points.append(ScalingPoint(k, compute + comm))
    return points
