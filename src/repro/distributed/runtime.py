"""The real multi-process distributed runtime (ROADMAP item 2).

:class:`MultiprocessTrainer` runs the k workers of the shared-nothing
cluster as real OS processes.  Each worker executes exactly the
per-partition computation :class:`~repro.distributed.trainer.DistributedTrainer`
runs serially today — sliced HDG aggregation + update over its
``Worker.sub_hdg``, with the process-global plan cache warm across
epochs — so the two runtimes are numerically interchangeable; the
difference is that here layer synchronization, gradient reduction and
epoch times are *wall clock*, not modeled.

Data movement
-------------
Everything bulk lives in ``multiprocessing.shared_memory`` (zero-copy
numpy views, see :mod:`repro.distributed.kvstore`):

* ``feat/{w}`` KV keys — the partitioned input features, one shard per
  owning worker; every worker assembles its full input copy once at
  startup (remote shards are the bytes a real cluster would ship).
* ``param/{i}`` KV keys — the replicated model state.  The parent
  writes fresh parameters and bumps the KV version before dispatching
  each epoch; workers pull the batch and assert the version.
* ``h{l}`` / ``g{l}`` buffers — one (n, d_l) float64 activation and
  gradient buffer per layer boundary.  Forward: each worker writes its
  root rows, barriers, reads the full buffer as the next layer's input.
  Backward: each worker writes its full dh contribution to its slab,
  barriers, and the deterministic chunk reduction
  (:meth:`ProcessComm.reduce_slabs`) sums slabs in rank order.
* ``pslab``/``pbuf`` — flattened parameter-gradient slabs reduced the
  same way; the parent unflattens ``pbuf`` and steps the single
  optimizer, so the model update is exactly the data-parallel sum.

The parent is **not** a barrier party: it observes progress through a
result queue and polls worker liveness, so a dead process surfaces as
:class:`~repro.distributed.fault_tolerance.WorkerFailure` within a
fraction of a second instead of a barrier timeout.  ``heal()`` resets
the barrier and respawns the pool, which is what
:class:`FaultTolerantTrainer` calls before replaying lost epochs.

Live telemetry and the failure model
------------------------------------
Liveness polling distinguishes **dead** from **stalled**.  Every worker
writes a fixed-layout record into a shared
:class:`~repro.obs.live.TelemetrySlab` on each phase transition
(lock-free: its own row, heartbeat seqno bumped last), and the parent
samples all rows during the result-queue poll.  A process that is gone
raises :class:`WorkerFailure` (today's path); a process that is alive
but whose heartbeat has been frozen past ``stall_deadline`` seconds in
an *active* phase emits a ``dist.worker_stalled`` event naming the
rank, epoch, layer and phase where progress stopped — workers parked
at a barrier are the victims of someone else's stall and are never
flagged.  ``inject_stall()`` (a real in-worker sleep) drives the path
end-to-end the way ``inject_failure()`` drives the crash path.

Per-process observability registries are merged at epoch end: workers
ship their closed span records *and* a full metric snapshot (counters,
gauges, histograms, events) through the result queue; the parent
rebases span/event times onto its own clock using the worker's
published registry origin (``Registry.merge_spans`` /
``merge_metrics``), so one coherent trace with a lane per rank covers
the whole pool.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..obs.flight import (
    FlightRecorder,
    install_flight,
    uninstall_flight,
    write_incident_bundle,
)
from ..obs.live import (
    PHASE_AWAIT_GRAD,
    PHASE_BACKWARD,
    PHASE_DONE,
    PHASE_FEAT_FETCH,
    PHASE_FORWARD,
    PHASE_GRAD_REDUCE,
    PHASE_PARAM_REDUCE,
    STALL_EVENT,
    StallDetector,
    StallEvent,
    TelemetrySlab,
    phase_name,
)
from ..obs.log import clear_log_context, get_logger, set_log_context
from ..core.hdg import HDG
from ..core.hybrid import ExecutionStrategy
from ..core.nau import NAUModel, SelectionScope
from ..tensor.loss import cross_entropy
from ..tensor.optim import Optimizer
from ..tensor.tensor import Tensor
from .comm import BYTES_COUNTER, MESSAGES_COUNTER, CommConfig, ProcessComm
from .fault_tolerance import WorkerFailure
from .kvstore import KVStore, SharedArray
from .worker import Worker

__all__ = ["MultiprocessEpochStats", "MultiprocessTrainer"]


@dataclass
class MultiprocessEpochStats:
    """Wall-clock timing of one multiprocess epoch."""

    epoch: int
    loss: float
    wall_seconds: float
    compute_seconds: np.ndarray      # per worker, measured in-process
    comm_seconds: np.ndarray         # per worker, barrier + reduction waits
    total_bytes: float               # cross-partition traffic (accounted)
    total_messages: int
    backend: str = "process"


@dataclass
class _WorkerSpec:
    """Everything a worker process needs; travels via ``Process`` args.

    Under the default ``fork`` context the child inherits the parent's
    already-attached shared segments, so nothing here re-attaches; under
    ``spawn`` the queues/barrier go through multiprocessing's reducer and
    the :class:`SharedArray` descriptors re-attach lazily.
    """

    rank: int
    k: int
    model: NAUModel
    labels_part: np.ndarray
    strategy: ExecutionStrategy
    comm: ProcessComm
    kv: KVStore
    hbufs: dict            # boundary l (1..L) -> SharedArray (n, d_l)
    gbufs: dict            # boundary l (1..L) -> SharedArray (n, d_l)
    hslabs: list           # per rank, flat scratch for dh reduction
    pslabs: list           # per rank, flat parameter-grad slab
    pbuf: SharedArray      # reduced parameter gradient
    inbox: object          # task queue (this rank only)
    result_q: object       # shared result queue
    telemetry: TelemetrySlab | None = None   # live metrics plane (one row per rank)
    flight_dir: str | None = None            # per-rank journal + bundle dir
    param_keys: list = field(default_factory=list)


def _partition_vertex_lists(labels_part: np.ndarray, k: int) -> list[np.ndarray]:
    return [np.flatnonzero(labels_part == w) for w in range(k)]


class _WorkerRuntime:
    """The per-process worker loop (runs inside the child)."""

    def __init__(self, spec: _WorkerSpec):
        self.spec = spec
        self.rank = spec.rank
        self.k = spec.k
        self.model = spec.model
        self.comm = spec.comm
        self.kv = spec.kv
        self.root_orders = np.flatnonzero(spec.labels_part == spec.rank)
        self.sub_hdg: HDG | None = None
        #: unique remote leaves per owning rank (filled on HDG arrival)
        self._leaf_counts = np.zeros(spec.k, dtype=np.int64)
        self.X: np.ndarray | None = None
        self._startup_bytes = 0.0
        self._startup_messages = 0
        self.tele = spec.telemetry.writer(spec.rank) if spec.telemetry else None
        # The black box: a per-rank flight recorder journaling to
        # ``journal-rank{r}.jsonl`` under the flight dir, so this rank's
        # final spans/logs/phases survive its own death.
        self.flight: FlightRecorder | None = None
        if spec.flight_dir is not None:
            self.flight = install_flight(FlightRecorder(
                journal_path=os.path.join(
                    spec.flight_dir, f"journal-rank{spec.rank}.jsonl"),
                rank=spec.rank,
            ))
        set_log_context(rank=spec.rank)
        self.log = get_logger("dist.worker")

    def _phase(self, phase: int, *, epoch: int | None = None,
               layer: int | None = None) -> None:
        if self.tele is not None:
            self.tele.update(phase=phase, epoch=epoch, layer=layer)
        name = phase_name(phase)
        set_log_context(phase=name, epoch=epoch, layer=layer)
        if self.flight is not None:
            self.flight.record("phase", phase=name, epoch=epoch, layer=layer)

    def _on_barrier(self, event: str) -> None:
        """Barrier hook: journal the transition into the waiting phase
        (so a post-mortem sees barrier-parked ranks as victims, not as
        frozen mid-forward), then forward to the telemetry writer."""
        if event == "enter":
            set_log_context(phase="barrier")
            if self.flight is not None:
                self.flight.record("phase", phase="barrier")
        if self.tele is not None:
            self.tele.on_barrier(event)

    def _die(self, reason: str) -> None:
        """Die the way a segfault would — but the black box records the
        final stack first (the journal's ``os.write`` puts it in the
        page cache, which survives ``os._exit``)."""
        self.log.error("worker dying", reason=reason)
        if self.flight is not None:
            self.flight.crash("".join(traceback.format_stack()),
                              reason=reason)
        os._exit(1)

    # ------------------------------------------------------------------
    def run(self) -> None:
        while True:
            msg = self.spec.inbox.get()
            tag = msg[0]
            if tag == "stop":
                return
            if tag == "die":
                # Failure injection: no cleanup, no exception, just a
                # vanished process (after the black box's final record).
                self._die("injected_failure")
            if tag == "epoch":
                self._run_epoch(msg[1])

    # ------------------------------------------------------------------
    def _fetch_features(self) -> None:
        """Assemble the full input matrix from the per-partition shards.

        Remote shards are the startup traffic a shared-nothing cluster
        pays once (layer-0 inputs are static, so they are fetched once
        and cached, unlike hidden activations which move every epoch).
        """
        parts = _partition_vertex_lists(self.spec.labels_part, self.k)
        with obs.span("dist.feat_fetch", worker=self.rank):
            first = self.kv.get("feat/0")
            n = int(self.spec.labels_part.size)
            X = np.empty((n, first.shape[1]), dtype=first.dtype)
            for src in range(self.k):
                shard = self.kv.get(f"feat/{src}")
                X[parts[src]] = shard
                if src != self.rank:
                    self._startup_bytes += shard.nbytes
                    self._startup_messages += 1
        self.X = X

    def _attach_hdg(self, sub_hdg: HDG) -> None:
        self.sub_hdg = sub_hdg
        leaves = np.unique(sub_hdg.leaf_vertices)
        owners = self.spec.labels_part[leaves]
        self._leaf_counts = np.bincount(owners, minlength=self.k).astype(np.int64)

    def _remote_read_traffic(self, width: int, itemsize: int) -> tuple[float, int]:
        """Bytes/messages this worker reads across partition boundaries
        for one layer input (unique remote leaf rows, as the simulated
        backend counts them)."""
        nbytes = 0.0
        messages = 0
        for src in range(self.k):
            if src == self.rank or self._leaf_counts[src] == 0:
                continue
            nbytes += float(self._leaf_counts[src]) * width * itemsize
            messages += 1
        return nbytes, messages

    # ------------------------------------------------------------------
    def _run_epoch(self, payload: dict) -> None:
        epoch = int(payload["epoch"])
        # Fresh registry per epoch: the metric snapshot shipped at epoch
        # end is then a clean delta (counters merged exactly once), and
        # every span record is this epoch's.
        obs.reset()
        reg = obs.get_registry()
        if payload.get("trace_id"):
            reg.trace_id = payload["trace_id"]
        if self.tele is not None:
            self.tele.set_clock_origin(reg.origin)
        self.log.info("epoch start", epoch=epoch,
                      version=int(payload["version"]))
        stall_s = float(payload.get("stall_seconds") or 0.0)
        if payload.get("sub_hdg") is not None:
            self._attach_hdg(payload["sub_hdg"])
        if self.X is None:
            self._phase(PHASE_FEAT_FETCH, epoch=epoch)
            self._fetch_features()
        assert self.sub_hdg is not None, "epoch dispatched before any HDG"
        if self.kv.version < payload["version"]:
            raise RuntimeError(
                f"worker {self.rank} sees kv version {self.kv.version}, "
                f"epoch {epoch} needs {payload['version']}"
            )

        model = self.model
        params = model.parameters()
        state = self.kv.pull_batch(self.spec.param_keys)
        for key, p in zip(self.spec.param_keys, params):
            p.data[...] = state[key]
        model.train()
        model.zero_grad()

        compute_s = 0.0
        comm_s = 0.0
        bytes_total = self._startup_bytes
        messages_total = self._startup_messages
        self._startup_bytes = 0.0
        self._startup_messages = 0

        layers = model.layers
        num_layers = len(layers)
        tapes: list[tuple[Tensor, Tensor]] = []

        # -------------------------- forward ---------------------------
        h_in = Tensor(self.X)
        for l, layer in enumerate(layers):
            self._phase(PHASE_FORWARD, epoch=epoch, layer=l)
            if stall_s > 0.0 and l == 0:
                # Injected stall: a real sleep in an active phase, so
                # the heartbeat seqno freezes exactly as a hung kernel
                # or a livelocked fetch would freeze it.
                time.sleep(stall_s)
            read_bytes, read_msgs = self._remote_read_traffic(
                int(h_in.data.shape[1]), h_in.data.dtype.itemsize
            )
            bytes_total += read_bytes
            messages_total += read_msgs
            with obs.span("dist.compute", worker=self.rank, layer=l,
                          epoch=epoch, pid=os.getpid()) as s_cmp:
                nbr = layer.aggregation(h_in, self.sub_hdg, self.spec.strategy)
                out = layer.update(h_in[self.root_orders], nbr)
            compute_s += s_cmp.duration
            self.spec.hbufs[l + 1].array[self.root_orders] = out.data
            wait = self.comm.barrier()
            comm_s += wait
            obs.record_span("dist.comm", wait, simulated=False,
                            worker=self.rank, layer=l, epoch=epoch,
                            phase="layer_sync", bytes=read_bytes)
            tapes.append((h_in, out))
            if l + 1 < num_layers:
                # Stable until next epoch's forward overwrites it, so a
                # zero-copy leaf view is safe for the whole backward.
                h_in = Tensor(self.spec.hbufs[l + 1].array, requires_grad=True)

        if self.rank == 0:
            self.spec.result_q.put(("fwd", epoch))
        self._phase(PHASE_AWAIT_GRAD, epoch=epoch)
        msg = self.spec.inbox.get()
        if msg[0] != "bwd":
            if msg[0] == "die":
                self._die("injected_failure")
            return  # "stop" mid-epoch: parent is tearing the pool down

        # -------------------------- backward --------------------------
        for l in range(num_layers - 1, -1, -1):
            h_leaf, out = tapes[l]
            gout = np.array(self.spec.gbufs[l + 1].array[self.root_orders])
            self._phase(PHASE_BACKWARD, epoch=epoch, layer=l)
            with obs.span("dist.backward", worker=self.rank, layer=l,
                          epoch=epoch) as s_bwd:
                out.backward(gout)
            compute_s += s_bwd.duration
            if l == 0:
                continue  # layer-0 input is the non-differentiable features
            n, d = self.spec.gbufs[l].shape
            slab = self.spec.hslabs[self.rank].array[: n * d].reshape(n, d)
            if h_leaf.grad is None:
                slab[...] = 0.0
            else:
                slab[...] = h_leaf.grad
            wait = self.comm.barrier()
            self._phase(PHASE_GRAD_REDUCE, epoch=epoch, layer=l)
            slabs = [
                self.spec.hslabs[r].array[: n * d].reshape(n, d)
                for r in range(self.k)
            ]
            self.comm.reduce_slabs(slabs, self.spec.gbufs[l].array, self.rank)
            wait += self.comm.barrier()
            comm_s += wait
            red_bytes, red_msgs = self.comm.allreduce_traffic(n * d * 8)
            bytes_total += red_bytes
            messages_total += red_msgs
            obs.record_span("dist.comm", wait, simulated=False,
                            worker=self.rank, layer=l, epoch=epoch,
                            phase="grad_reduce", bytes=red_bytes)

        # --------------------- parameter gradients --------------------
        self._phase(PHASE_PARAM_REDUCE, epoch=epoch)
        pslab = self.spec.pslabs[self.rank].array
        off = 0
        for p in params:
            size = p.data.size
            g = p.grad
            if g is None:
                pslab[off:off + size] = 0.0
            else:
                pslab[off:off + size] = np.asarray(g, dtype=np.float64).ravel()
            off += size
        wait = self.comm.barrier()
        self.comm.reduce_slabs(
            [self.spec.pslabs[r].array for r in range(self.k)],
            self.spec.pbuf.array, self.rank,
        )
        wait += self.comm.barrier()
        comm_s += wait
        red_bytes, red_msgs = self.comm.allreduce_traffic(pslab.size * 8)
        bytes_total += red_bytes
        messages_total += red_msgs
        obs.record_span("dist.comm", wait, simulated=False,
                        worker=self.rank, epoch=epoch,
                        phase="param_allreduce", bytes=red_bytes)

        self._phase(PHASE_DONE, epoch=epoch)
        if self.flight is not None:
            # One metric sample per epoch: the ring carries the final
            # counter/gauge state alongside the spans.  Then drain the
            # journal queue — the rank is past its last barrier and
            # about to idle, so the batched write is off the critical
            # path, and a completed epoch is always fully journaled
            # even if this rank is killed before its next drain tick.
            self.flight.record_metrics(reg)
            self.flight.flush()
        spans = [s.to_dict() for s in reg.spans if s.closed]
        self.spec.result_q.put(("done", self.rank, {
            "compute_seconds": compute_s,
            "comm_seconds": comm_s,
            "bytes": bytes_total,
            "messages": messages_total,
            "spans": spans,
            "metrics": reg.metrics_snapshot(),
            # Raw perf_counter at this epoch's reset: the parent rebases
            # span/event times by (worker origin - parent origin), which
            # is exact on platforms where perf_counter is system-wide
            # (CLOCK_MONOTONIC on Linux).
            "clock_origin": reg.origin,
        }))


def _worker_main(spec: _WorkerSpec) -> None:
    # Fresh per-process registry: under fork the child inherits the
    # parent's spans, which must not be shipped back a second time.
    obs.reset()
    # Under fork the child also inherits the parent's flight tap (a dup
    # of its journal fd plus whatever records sat in its drain queue —
    # the parent's drain thread does not survive the fork).  Drop it
    # without draining: those records belong to the parent, which will
    # write them itself.  This rank installs its own recorder with its
    # own journal in _WorkerRuntime.__init__.
    inherited = uninstall_flight()
    if inherited is not None:
        inherited.close(drain=False)
    clear_log_context()
    try:
        runtime = _WorkerRuntime(spec)
        spec.comm.bind(spec.rank, heartbeat=runtime._on_barrier)
        runtime.run()
    except BaseException:  # noqa: BLE001 - ship any failure to the parent
        tb = traceback.format_exc()
        recorder = obs.get_flight()
        if recorder is not None:
            # The crash hook: the journal's last record is the traceback.
            recorder.crash(tb, reason="exception")
        try:
            spec.result_q.put(("error", spec.rank, tb))
        except Exception:  # pragma: no cover - queue already torn down
            pass


class MultiprocessTrainer:
    """Train a NAU model across ``k`` real worker processes.

    Drop-in alongside :class:`DistributedTrainer` — same constructor
    shape, same ``train_epoch`` signature, numerically matching loss and
    gradients (see ``tests/test_multiprocess.py``) — but epoch times are
    wall clock and worker death is a real observable failure.

    Use as a context manager or call :meth:`close`; the shared-memory
    segments are owned by the parent and must be unlinked.
    """

    def __init__(
        self,
        model: NAUModel,
        graph,
        partition_labels: np.ndarray,
        strategy: ExecutionStrategy | str = ExecutionStrategy.HA,
        comm_config: CommConfig | None = None,
        seed: int = 0,
        ctx=None,
        timeout: float = 120.0,
        stall_deadline: float = 5.0,
        flight_dir: str | None = None,
    ):
        self.model = model
        self.graph = graph
        self.labels_part = np.asarray(partition_labels, dtype=np.int64)
        if self.labels_part.shape != (graph.num_vertices,):
            raise ValueError("partition labels must cover every vertex")
        self.k = int(self.labels_part.max()) + 1
        self.strategy = ExecutionStrategy.parse(strategy)
        self.comm_config = comm_config or CommConfig()
        self.timeout = float(timeout)
        self._rng = np.random.default_rng(seed)
        self._model_hdg: HDG | None = None
        self._hdg_epoch = -1
        self.workers = [
            Worker(w, np.flatnonzero(self.labels_part == w)) for w in range(self.k)
        ]
        self.comm = ProcessComm(self.k, self.comm_config, ctx=ctx,
                                timeout=self.timeout)
        self.ctx = self.comm.ctx
        self.kv = KVStore(ctx=self.ctx)
        self._param_keys = [
            f"param/{i}" for i in range(len(self.model.parameters()))
        ]
        self._hbufs: dict[int, SharedArray] = {}
        self._gbufs: dict[int, SharedArray] = {}
        self._hslabs: list[SharedArray] = []
        self._pslabs: list[SharedArray] = []
        self._pbuf: SharedArray | None = None
        self._procs: list | None = None
        self._inboxes: list = []
        self._result_q = None
        self._hdg_dirty: set[int] = set()
        self._die_next: set[int] = set()
        self._stall_next: dict[int, float] = {}
        self._started = False
        self._closed = False
        #: shared live-metrics plane: one fixed-layout row per rank,
        #: written lock-free by the worker, sampled by the parent's poll
        self.telemetry = TelemetrySlab(self.k)
        self.stall_deadline = float(stall_deadline)
        self._stall_detector = StallDetector(self.stall_deadline)
        #: every stall detected so far (also emitted as obs events)
        self.stall_events: list[StallEvent] = []
        #: flight-recorder plane: per-rank journals + incident bundles
        #: land here; ``None`` disables black-box capture entirely
        self.flight_dir = flight_dir
        self._own_flight: FlightRecorder | None = None
        if flight_dir is not None:
            os.makedirs(flight_dir, exist_ok=True)
            if obs.get_flight() is None:
                # No recorder installed (e.g. trainer constructed outside
                # the CLI): give the parent its own, journaled alongside
                # the workers'.
                self._own_flight = install_flight(FlightRecorder(
                    journal_path=os.path.join(flight_dir,
                                              "journal-parent.jsonl"),
                ))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self, feats: Tensor | np.ndarray) -> None:
        if self._started:
            return
        X = np.asarray(feats.data if isinstance(feats, Tensor) else feats)
        if X.shape[0] != self.graph.num_vertices:
            raise ValueError("features must cover every vertex")
        n = X.shape[0]
        # Feature shards: created before any worker exists (KV keys must
        # pre-date the spawn — see repro.distributed.kvstore).
        for w in range(self.k):
            self.kv.set(f"feat/{w}", X[self.workers[w].root_orders])
        for key, p in zip(self._param_keys, self.model.parameters()):
            self.kv.set(key, p.data)
        # Layer-boundary activation/gradient buffers (float64: hidden
        # activations inherit the float64 parameter dtype).
        dims = [layer.output_dim for layer in self.model.layers]
        for l, d in enumerate(dims, start=1):
            self._hbufs[l] = SharedArray((n, d), np.float64)
            self._gbufs[l] = SharedArray((n, d), np.float64)
        hidden = [n * d for d in dims[:-1]] or [1]
        slab_size = max(hidden)
        psize = sum(p.data.size for p in self.model.parameters())
        for _ in range(self.k):
            self._hslabs.append(SharedArray((slab_size,), np.float64))
            self._pslabs.append(SharedArray((max(psize, 1),), np.float64))
        self._pbuf = SharedArray((max(psize, 1),), np.float64)
        self._started = True
        self._spawn()

    def _spawn(self) -> None:
        self._inboxes = [self.ctx.Queue() for _ in range(self.k)]
        self._result_q = self.ctx.Queue()
        self._hdg_dirty = set(range(self.k))
        self.telemetry.reset()
        self._stall_detector.reset()
        self._procs = []
        for rank in range(self.k):
            spec = _WorkerSpec(
                rank=rank, k=self.k, model=self.model,
                labels_part=self.labels_part, strategy=self.strategy,
                comm=self.comm, kv=self.kv,
                hbufs=self._hbufs, gbufs=self._gbufs,
                hslabs=self._hslabs, pslabs=self._pslabs, pbuf=self._pbuf,
                inbox=self._inboxes[rank], result_q=self._result_q,
                telemetry=self.telemetry,
                flight_dir=self.flight_dir,
                param_keys=self._param_keys,
            )
            proc = self.ctx.Process(target=_worker_main, args=(spec,),
                                    daemon=True, name=f"repro-worker-{rank}")
            proc.start()
            self._procs.append(proc)
        obs.event("dist.pool_spawned", k=self.k,
                  pids=[p.pid for p in self._procs])

    def _teardown_pool(self) -> None:
        """Stop every worker process (barrier aborted so stragglers fail
        fast); shared buffers and KV segments survive for a respawn."""
        if self._procs is None:
            return
        self.comm.close()  # abort the barrier: unblock stuck workers
        if self._result_q is not None:
            try:
                while True:
                    self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._procs = None

    def heal(self) -> None:
        """Respawn the worker pool after a failure (FT recovery path)."""
        self._teardown_pool()
        self.comm.reset()
        if self._started:
            self._spawn()

    def inject_failure(self, worker_id: int) -> None:
        """Arrange for ``worker_id`` to die (``os._exit``) at the start
        of the next dispatched epoch — a real process death, not a
        simulated exception."""
        if not (0 <= worker_id < self.k):
            raise ValueError("worker id out of range")
        self._die_next.add(worker_id)

    def inject_stall(self, worker_id: int, seconds: float = 1.0) -> None:
        """Arrange for ``worker_id`` to sleep ``seconds`` inside its next
        epoch's layer-0 forward — a real in-process hang (heartbeat
        frozen in an active phase), not a simulated event.  With
        ``seconds > stall_deadline`` the parent's liveness poll emits a
        ``dist.worker_stalled`` event naming this rank; the worker then
        resumes and the epoch completes."""
        if not (0 <= worker_id < self.k):
            raise ValueError("worker id out of range")
        if seconds <= 0:
            raise ValueError("stall must be positive")
        self._stall_next[worker_id] = float(seconds)

    def telemetry_snapshot(self) -> dict:
        """JSON-ready snapshot of every worker's live row (for
        ``tools/monitor.py --snapshot`` and CI smoke checks)."""
        return self.telemetry.snapshot()

    def close(self) -> None:
        """Stop workers and unlink every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self._procs is not None:
            for inbox in self._inboxes:
                try:
                    inbox.put(("stop",))
                except Exception:  # pragma: no cover
                    pass
            for proc in self._procs:
                proc.join(timeout=3.0)
            self._teardown_pool()
        for buf in (*self._hbufs.values(), *self._gbufs.values(),
                    *self._hslabs, *self._pslabs):
            buf.close()
        if self._pbuf is not None:
            self._pbuf.close()
        self.telemetry.close()
        self.kv.close()
        if self._own_flight is not None:
            if obs.get_flight() is self._own_flight:
                uninstall_flight()
            self._own_flight.close()
            self._own_flight = None

    def __enter__(self) -> "MultiprocessTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _ensure_hdg(self, epoch: int) -> HDG:
        scope = self.model.selection_scope
        stale = self._model_hdg is None or (
            scope is SelectionScope.PER_EPOCH and self._hdg_epoch != epoch
        )
        if stale:
            with obs.span("dist.neighbor_selection", epoch=epoch):
                self._model_hdg = self.model.neighbor_selection(
                    self.graph, self._rng
                )
            self._hdg_epoch = epoch
            for worker in self.workers:
                worker.attach_hdg(self._model_hdg)
            self._hdg_dirty = set(range(self.k))
        return self._model_hdg

    def _dump_incident(self, kind: str, *, rank: int | None = None,
                       reason: str | None = None,
                       extra_sections: dict | None = None) -> str | None:
        """Snapshot one incident bundle under ``flight_dir`` (no-op when
        black-box capture is off).  Must run *before* ``_teardown_pool``
        so the telemetry slab still holds the workers' last rows."""
        if self.flight_dir is None:
            return None
        sections = {
            "telemetry": self.telemetry.snapshot(),
            "stalls": {
                "deadline": self.stall_deadline,
                "events": [s.to_dict() for s in self.stall_events],
            },
        }
        if extra_sections:
            sections.update(extra_sections)
        try:
            return write_incident_bundle(
                self.flight_dir, kind, rank=rank, reason=reason,
                config={
                    "k": self.k,
                    "strategy": self.strategy.value,
                    "timeout": self.timeout,
                    "stall_deadline": self.stall_deadline,
                    "num_vertices": int(self.graph.num_vertices),
                },
                sections=sections,
            )
        except OSError:  # pragma: no cover - flight dir vanished
            return None

    def _check_liveness(self, epoch: int) -> None:
        assert self._procs is not None
        for rank, proc in enumerate(self._procs):
            if not proc.is_alive():
                bundle = self._dump_incident(
                    "worker_failure", rank=rank,
                    reason=f"worker {rank} died during epoch {epoch} "
                           f"(exitcode {proc.exitcode})")
                self._teardown_pool()
                raise WorkerFailure(rank, epoch, bundle=bundle)

    def _poll_telemetry(self) -> None:
        """Sample the live slab, publish gauges, flag frozen heartbeats.

        A stall is *alive but not progressing*: the heartbeat seqno of a
        rank in an active phase has not moved for ``stall_deadline``
        seconds.  Ranks parked at a barrier (or awaiting gradients) are
        exempt — they are the victims when a peer stalls.  Stalls emit
        events and are recorded; they do not abort the epoch (the
        ``timeout`` deadline still backstops a stall that never ends).
        """
        samples = self.telemetry.sample(publish=True)
        for stall in self._stall_detector.observe(samples):
            self.stall_events.append(stall)
            obs.event(
                STALL_EVENT,
                rank=stall.rank,
                epoch=stall.epoch,
                layer=stall.layer,
                phase=stall.phase_name,
                stalled_seconds=stall.stalled_seconds,
                deadline=self.stall_deadline,
            )
            # Stalls do not abort the epoch, but they are incidents: the
            # bundle captures the cluster exactly while it is wedged.
            self._dump_incident(
                "worker_stalled", rank=stall.rank,
                reason=f"rank {stall.rank} heartbeat frozen "
                       f"{stall.stalled_seconds:.1f}s in "
                       f"{stall.phase_name} (epoch {stall.epoch}, "
                       f"layer {stall.layer})")

    def _await(self, tag: str, epoch: int, count: int) -> dict[int, dict]:
        """Collect ``count`` messages of kind ``tag``, surfacing worker
        death (liveness poll) or in-worker exceptions as they happen."""
        results: dict[int, dict] = {}
        deadline = time.monotonic() + self.timeout
        while len(results) < count:
            try:
                msg = self._result_q.get(timeout=0.2)
            except queue_mod.Empty:
                self._check_liveness(epoch)
                self._poll_telemetry()
                if time.monotonic() > deadline:
                    stalled = sorted({s.rank for s in self.stall_events})
                    bundle = self._dump_incident(
                        "epoch_timeout",
                        reason=f"workers did not reach {tag!r} within "
                               f"{self.timeout}s")
                    self._teardown_pool()
                    hint = f" (stalled ranks: {stalled})" if stalled else ""
                    if bundle:
                        hint += f" [bundle: {bundle}]"
                    raise TimeoutError(
                        f"workers did not reach {tag!r} within "
                        f"{self.timeout}s{hint}"
                    )
                continue
            if msg[0] == "error":
                rank, tb = msg[1], msg[2]
                self._teardown_pool()
                raise RuntimeError(f"worker {rank} failed:\n{tb}")
            if msg[0] == tag:
                if tag == "fwd":
                    results[len(results)] = {}
                else:
                    results[msg[1]] = msg[2]
        return results

    def train_epoch(
        self,
        feats: Tensor,
        labels: np.ndarray,
        optimizer: Optimizer,
        mask: np.ndarray | None = None,
        epoch: int = 0,
    ) -> MultiprocessEpochStats:
        """One data-parallel full-batch epoch across real processes."""
        t0 = time.perf_counter()
        self.model.train()
        self._ensure_started(feats)
        if self._procs is None:
            self._spawn()
        self._ensure_hdg(epoch)

        # Parameter sync: fresh replicated state, then bump the version
        # the dispatched tasks will assert.
        for key, p in zip(self._param_keys, self.model.parameters()):
            self.kv.set(key, p.data)
        version = self.kv.bump_version()

        per_epoch = self.model.selection_scope is SelectionScope.PER_EPOCH
        trace_id = obs.get_registry().trace_id
        for rank in range(self.k):
            if rank in self._die_next:
                self._die_next.discard(rank)
                self._inboxes[rank].put(("die",))
                continue
            sub = None
            if rank in self._hdg_dirty:
                sub = self.workers[rank].sub_hdg
                self._hdg_dirty.discard(rank)
            self._inboxes[rank].put(("epoch", {
                "epoch": epoch, "version": version, "sub_hdg": sub,
                "trace_id": trace_id,
                "stall_seconds": self._stall_next.pop(rank, 0.0),
            }))
        if per_epoch:
            self._hdg_dirty = set(range(self.k))

        # Forward runs worker-side; rank 0 signals the final barrier.
        self._await("fwd", epoch, 1)
        num_layers = len(self.model.layers)
        logits = Tensor(np.array(self._hbufs[num_layers].array),
                        requires_grad=True)
        loss = cross_entropy(logits, labels, mask)
        with obs.span("dist.backward", epoch=epoch, stage="loss"):
            loss.backward()
        self._gbufs[num_layers].array[...] = logits.grad
        for rank in range(self.k):
            self._inboxes[rank].put(("bwd", epoch))
        results = self._await("done", epoch, self.k)

        # Apply the reduced data-parallel gradient with the one optimizer.
        optimizer.zero_grad()
        flat = self._pbuf.array
        off = 0
        for p in self.model.parameters():
            size = p.data.size
            p.grad = flat[off:off + size].reshape(p.data.shape).copy()
            off += size
        optimizer.step()

        compute = np.zeros(self.k)
        comm = np.zeros(self.k)
        total_bytes = 0.0
        total_messages = 0
        reg = obs.get_registry()
        for rank in sorted(results):
            stats = results[rank]
            compute[rank] = stats["compute_seconds"]
            comm[rank] = stats["comm_seconds"]
            total_bytes += stats["bytes"]
            total_messages += stats["messages"]
            # Rebase worker-relative times onto the parent clock: both
            # origins are raw perf_counter values, so the offset is
            # exactly (worker origin - parent origin).  Span histograms
            # are NOT re-observed here — the worker's own histograms
            # arrive via merge_metrics, which avoids double counting.
            offset = float(stats.get("clock_origin", reg.origin)) - reg.origin
            reg.merge_spans(stats["spans"], clock_offset=offset, rank=rank,
                            observe_histograms=False)
            reg.merge_metrics(stats.get("metrics"), clock_offset=offset,
                              rank=rank)
        obs.counter(BYTES_COUNTER).add(total_bytes)
        obs.counter(MESSAGES_COUNTER).add(total_messages)
        self._poll_telemetry()  # final sample: phase/epoch gauges current

        wall = time.perf_counter() - t0
        obs.epoch_log().log(
            epoch,
            loss=loss.item(),
            wall_seconds=wall,
            bytes=total_bytes,
            messages=total_messages,
            backend="process",
            workers=self.k,
        )
        return MultiprocessEpochStats(
            epoch=epoch,
            loss=loss.item(),
            wall_seconds=wall,
            compute_seconds=compute,
            comm_seconds=comm,
            total_bytes=total_bytes,
            total_messages=total_messages,
        )
