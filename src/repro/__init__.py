"""FlexGraph reproduction — *FlexGraph: A Flexible and Efficient
Distributed Framework for GNN Training* (EuroSys '21).

Packages
--------
``repro.tensor``
    Numpy autograd NN framework (the PyTorch substitute).
``repro.graph``
    Graph engine: CSR/CSC storage, traversal, random walks, metapath
    matching, partitioners, synthetic generators (libgrape-lite
    substitute).
``repro.core``
    The paper's contribution: NAU, HDGs with compact storage, hybrid
    aggregation execution, the training engine, the ADB balancer.
``repro.models``
    GCN / GIN (DNFA), PinSage (INFA), MAGNN / P-GNN / JK-Net (INHA) as
    NAU programs.
``repro.baselines``
    PyTorch / DGL / DistDGL / Euler / Pre+DGL competitor strategies.
``repro.distributed``
    Simulated shared-nothing cluster with workload balancing and
    pipeline processing.
``repro.datasets``
    Synthetic stand-ins for Reddit, FB91, Twitter and IMDB.
``repro.obs``
    Unified observability layer: spans, counters/gauges (total + peak),
    events, JSON trace export and summary tables.
``repro.serve``
    Online inference serving: sessions over pinned checkpoints/graphs,
    micro-batching, versioned embedding caches, load-shedding server.

Quickstart
----------
>>> from repro.datasets import load_dataset
>>> from repro.models import gcn
>>> from repro.core import FlexGraphEngine
>>> from repro.tensor import Tensor, Adam
>>> ds = load_dataset("reddit", scale="tiny")
>>> model = gcn(ds.feat_dim, 32, ds.num_classes)
>>> engine = FlexGraphEngine(model, ds.graph)
>>> opt = Adam(model.parameters(), lr=0.01)
>>> history = engine.fit(Tensor(ds.features), ds.labels, opt,
...                      num_epochs=5, mask=ds.train_mask)
"""

__version__ = "1.0.0"

from . import (
    baselines,
    core,
    datasets,
    distributed,
    graph,
    models,
    obs,
    serve,
    storage,
    tasks,
    tensor,
)

__all__ = [
    "tensor", "graph", "core", "models", "baselines", "distributed",
    "datasets", "storage", "tasks", "obs", "serve", "__version__",
]
