"""P-GNN (You et al.) in NAU — an INHA model built on anchor sets.

Section 3.2's discussion: each vertex's i-th "neighbor" is the i-th of
``k`` shared anchor sets; the HDG has three levels (anchor-set instances
in the middle, their member vertices at the bottom).  Aggregation first
means within each anchor set, then means across a vertex's anchor sets;
Update is ``ReLU(W [h ; a])`` to retain position information relative to
the vertex's own feature.
"""

from __future__ import annotations

import numpy as np

from ..core.hdg import HDG, build_hdg
from ..core.nau import GNNLayer, NAUModel, SelectionScope
from ..core.schema import SchemaTree
from ..core.selection import select_anchor_set_neighbors
from ..graph.graph import Graph
from ..tensor.nn import Linear
from ..tensor.ops import concat
from ..tensor.tensor import Tensor

__all__ = ["PGNNLayer", "PGNN", "pgnn"]


class PGNNLayer(GNNLayer):
    """One P-GNN layer: mean/mean hierarchy + ReLU(W [h ; a])."""

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__(aggregators=["mean", "mean", "mean"])
        self.linear = Linear(2 * in_dim, out_dim, rng=rng)
        self.activation = activation

    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        out = self.linear(concat([feats, nbr_feats], axis=-1))
        return out.relu() if self.activation else out

    @property
    def output_dim(self) -> int:
        return self.linear.out_features


class PGNN(NAUModel):
    """P-GNN with ``num_anchor_sets`` shared random anchor sets."""

    category = "INHA"

    def __init__(self, dims: list[int], num_anchor_sets: int = 4,
                 anchor_set_size: int = 8, seed: int = 0):
        if len(dims) < 2:
            raise ValueError("dims must list input, hidden..., output sizes")
        rng = np.random.default_rng(seed)
        layers = [
            PGNNLayer(dims[i], dims[i + 1], activation=i < len(dims) - 2, rng=rng)
            for i in range(len(dims) - 1)
        ]
        super().__init__(layers, SelectionScope.STATIC, name="P-GNN")
        self.num_anchor_sets = num_anchor_sets
        self.anchor_set_size = anchor_set_size

    def neighbor_selection(self, graph: Graph, rng: np.random.Generator) -> HDG:
        records = select_anchor_set_neighbors(
            graph, self.num_anchor_sets, self.anchor_set_size, rng=rng
        )
        roots = np.arange(graph.num_vertices, dtype=np.int64)
        return build_hdg(
            records, SchemaTree(("anchor_set",)), roots, graph.num_vertices, flat=False
        )


def pgnn(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int = 2,
         num_anchor_sets: int = 4, anchor_set_size: int = 8, seed: int = 0) -> PGNN:
    """Build a P-GNN model."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    return PGNN(dims, num_anchor_sets, anchor_set_size, seed=seed)
