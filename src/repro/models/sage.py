"""GraphSAGE (Hamilton et al.) in NAU — pooling aggregation variant.

A DNFA model that demonstrates overriding the *Aggregation* stage
itself: SAGE-pool first pushes every neighbor feature through a learned
transform and only then max-reduces, so the layer replaces the default
level-wise executor rather than just picking built-in UDFs.
"""

from __future__ import annotations

import numpy as np

from ..core.hdg import HDG
from ..core.hybrid import ExecutionStrategy
from ..core.nau import GNNLayer, NAUModel, SelectionScope
from ..tensor.nn import Linear
from ..tensor.ops import concat
from ..tensor.scatter import segment_reduce_csr
from ..tensor.tensor import Tensor

__all__ = ["SAGELayer", "GraphSAGE", "graphsage"]


class SAGELayer(GNNLayer):
    """One SAGE-pool layer: max(ReLU(W_pool h_u)) + ReLU(W [h ; a])."""

    def __init__(self, in_dim: int, out_dim: int, pool_dim: int | None = None,
                 activation: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        pool_dim = pool_dim or in_dim
        self.pool = Linear(in_dim, pool_dim, rng=rng)
        self.linear = Linear(in_dim + pool_dim, out_dim, rng=rng)
        self.activation = activation

    def aggregation(self, feats: Tensor, hdg: HDG,
                    strategy: ExecutionStrategy = ExecutionStrategy.HA) -> Tensor:
        """Transform-then-reduce: the NN op happens *inside* Aggregation.

        The pooled features are computed once for all vertices (dense,
        cheap) and the reduction runs over the flat HDG like any other
        UDF, so the hybrid strategies still apply.
        """
        if hdg.depth != 1:
            raise ValueError("SAGE-pool is a DNFA model (flat HDGs only)")
        pooled = self.pool(feats).relu()
        strategy = ExecutionStrategy.parse(strategy)
        base = (hdg.fingerprint(), "sage.pool")
        if strategy is ExecutionStrategy.SA:
            from ..tensor.scatter import scatter_max

            dst, src = hdg.sub_graph(1)
            return scatter_max(pooled[src], dst, hdg.num_roots, plan_key=base)
        return segment_reduce_csr(pooled, hdg.leaf_offsets, hdg.leaf_vertices,
                                  "max", plan_key=base)

    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        out = self.linear(concat([feats, nbr_feats], axis=-1))
        return out.relu() if self.activation else out

    @property
    def output_dim(self) -> int:
        return self.linear.out_features


class GraphSAGE(NAUModel):
    """A stack of SAGE-pool layers over the DNFA fast path."""

    category = "DNFA"

    def __init__(self, dims: list[int], seed: int = 0):
        if len(dims) < 2:
            raise ValueError("dims must list input, hidden..., output sizes")
        rng = np.random.default_rng(seed)
        layers = [
            SAGELayer(dims[i], dims[i + 1], activation=i < len(dims) - 2, rng=rng)
            for i in range(len(dims) - 1)
        ]
        super().__init__(layers, SelectionScope.STATIC, name="GraphSAGE")


def graphsage(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int = 2,
              seed: int = 0) -> GraphSAGE:
    """Build a GraphSAGE-pool model."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    return GraphSAGE(dims, seed=seed)
