"""GCN (Kipf & Welling) expressed in NAU — the DNFA representative.

Figure 7's NAU program: Aggregation is a plain ``scatter_add`` over the
flat HDG (which is just the input graph); Update is
``ReLU(W * feas.add(nbr_feas))``.
"""

from __future__ import annotations

import numpy as np

from ..core.nau import GNNLayer, NAUModel, SelectionScope
from ..tensor.nn import Linear
from ..tensor.tensor import Tensor

__all__ = ["GCNLayer", "GCN", "gcn"]


class GCNLayer(GNNLayer):
    """One GCN layer: sum aggregation + ReLU(W(h + a)).

    ``aggregator`` defaults to the paper's plain ``sum`` (Figure 7);
    ``mean`` gives the degree-normalized variant that behaves better on
    heavy-tailed graphs.
    """

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None,
                 aggregator: str = "sum"):
        super().__init__(aggregators=[aggregator])
        self.linear = Linear(in_dim, out_dim, rng=rng)
        self.activation = activation

    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        out = self.linear(feats.add(nbr_feats))
        return out.relu() if self.activation else out

    @property
    def output_dim(self) -> int:
        return self.linear.out_features


class GCN(NAUModel):
    """A stack of GCN layers.

    DNFA fast path: NeighborSelection reuses the input graph as the flat
    HDG, built once and cached for the whole run (§7.4: "we do not need to
    build HDGs explicitly" for GCN).
    """

    category = "DNFA"

    def __init__(self, dims: list[int], seed: int = 0, aggregator: str = "sum"):
        if len(dims) < 2:
            raise ValueError("dims must list input, hidden..., output sizes")
        rng = np.random.default_rng(seed)
        layers = [
            GCNLayer(dims[i], dims[i + 1], activation=i < len(dims) - 2,
                     rng=rng, aggregator=aggregator)
            for i in range(len(dims) - 1)
        ]
        super().__init__(layers, SelectionScope.STATIC, name="GCN")


def gcn(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int = 2,
        seed: int = 0, aggregator: str = "sum") -> GCN:
    """Build a GCN with the paper's default two layers."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    return GCN(dims, seed=seed, aggregator=aggregator)
