"""GIN (Xu et al., "How Powerful are GNNs?") in NAU — a second DNFA model.

Aggregation is an injective sum over direct neighbors; Update is
``MLP((1 + eps) * h + a)`` with a learnable ``eps``.
"""

from __future__ import annotations

import numpy as np

from ..core.nau import GNNLayer, NAUModel, SelectionScope
from ..tensor.nn import Linear, Parameter
from ..tensor.tensor import Tensor

__all__ = ["GINLayer", "GIN", "gin"]


class GINLayer(GNNLayer):
    """One GIN layer: sum aggregation + 2-layer MLP update."""

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__(aggregators=["sum"])
        self.fc1 = Linear(in_dim, out_dim, rng=rng)
        self.fc2 = Linear(out_dim, out_dim, rng=rng)
        self.eps = Parameter(np.zeros(1))
        self.activation = activation

    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        combined = feats * (self.eps + 1.0) + nbr_feats
        out = self.fc2(self.fc1(combined).relu())
        return out.relu() if self.activation else out

    @property
    def output_dim(self) -> int:
        return self.fc2.out_features


class GIN(NAUModel):
    """A stack of GIN layers over the DNFA fast path."""

    category = "DNFA"

    def __init__(self, dims: list[int], seed: int = 0):
        if len(dims) < 2:
            raise ValueError("dims must list input, hidden..., output sizes")
        rng = np.random.default_rng(seed)
        layers = [
            GINLayer(dims[i], dims[i + 1], activation=i < len(dims) - 2, rng=rng)
            for i in range(len(dims) - 1)
        ]
        super().__init__(layers, SelectionScope.STATIC, name="GIN")


def gin(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int = 2,
        seed: int = 0) -> GIN:
    """Build a GIN model."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    return GIN(dims, seed=seed)
