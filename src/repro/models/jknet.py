"""JK-Net (Xu et al., Jumping Knowledge) in NAU — an INHA model.

Section 3.2's discussion: vertex ``v``'s i-th "neighbor" is the ring of
vertices at shortest-path distance exactly ``i`` (1 <= i <= k).  The HDG
has one schema leaf per distance and (at most) one ring instance per
(root, distance).  Aggregation means within each ring and then max-pools
across distances (the JK max-pool combinator); Update is
``ReLU(W (h + a))``.
"""

from __future__ import annotations

import numpy as np

from ..core.hdg import HDG, build_hdg
from ..core.nau import GNNLayer, NAUModel, SelectionScope
from ..core.selection import schema_for_rings, select_distance_ring_neighbors
from ..graph.graph import Graph
from ..tensor.nn import Linear
from ..tensor.tensor import Tensor

__all__ = ["JKNetLayer", "JKNet", "jknet"]


class JKNetLayer(GNNLayer):
    """One JK-Net layer: per-ring mean, identity per slot, max over rings."""

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__(aggregators=["mean", "mean", "max"])
        self.linear = Linear(in_dim, out_dim, rng=rng)
        self.activation = activation

    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        out = self.linear(feats.add(nbr_feats))
        return out.relu() if self.activation else out

    @property
    def output_dim(self) -> int:
        return self.linear.out_features


class JKNet(NAUModel):
    """JK-Net aggregating rings up to ``max_distance`` hops."""

    category = "INHA"

    def __init__(self, dims: list[int], max_distance: int = 2, seed: int = 0):
        if len(dims) < 2:
            raise ValueError("dims must list input, hidden..., output sizes")
        if max_distance < 1:
            raise ValueError("max_distance must be >= 1")
        rng = np.random.default_rng(seed)
        layers = [
            JKNetLayer(dims[i], dims[i + 1], activation=i < len(dims) - 2, rng=rng)
            for i in range(len(dims) - 1)
        ]
        super().__init__(layers, SelectionScope.STATIC, name="JK-Net")
        self.max_distance = max_distance

    def neighbor_selection(self, graph: Graph, rng: np.random.Generator) -> HDG:
        records = select_distance_ring_neighbors(graph, self.max_distance)
        roots = np.arange(graph.num_vertices, dtype=np.int64)
        schema = schema_for_rings(self.max_distance)
        return build_hdg(records, schema, roots, graph.num_vertices, flat=False)


def jknet(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int = 2,
          max_distance: int = 2, seed: int = 0) -> JKNet:
    """Build a JK-Net model."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    return JKNet(dims, max_distance, seed=seed)
