"""PinSage (Ying et al.) expressed in NAU — the INFA representative.

NeighborSelection runs ``num_traces`` random walks of ``n_hops`` hops per
vertex and keeps the ``top_k`` most-visited vertices as "neighbors"
(Figure 5's ``pinsage_nbr``), with their normalized visit frequencies as
importance weights.  Aggregation is an importance-weighted sum over the
flat HDG; Update is ``ReLU(W * CONCAT(feas, nbr_feas))`` (Figure 7).

The HDGs are rebuilt once per epoch: walks are stochastic, but NAU lets
the layers of one epoch share them (Section 3.2, Discussion).
"""

from __future__ import annotations

import numpy as np

from ..core.hdg import HDG, hdg_from_flat_arrays
from ..core.nau import GNNLayer, NAUModel, SelectionScope
from ..core.schema import SchemaTree
from ..graph.random_walk import top_k_visited
from ..graph.graph import Graph
from ..tensor.nn import Linear
from ..tensor.ops import concat
from ..tensor.tensor import Tensor

__all__ = ["PinSageLayer", "PinSage", "pinsage"]


class PinSageLayer(GNNLayer):
    """One PinSage layer: weighted-sum aggregation + ReLU(W [h ; a])."""

    def __init__(self, in_dim: int, out_dim: int, activation: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__(aggregators=["weighted_sum"])
        self.linear = Linear(2 * in_dim, out_dim, rng=rng)
        self.activation = activation

    def update(self, feats: Tensor, nbr_feats: Tensor) -> Tensor:
        out = self.linear(concat([feats, nbr_feats], axis=-1))
        return out.relu() if self.activation else out

    @property
    def output_dim(self) -> int:
        return self.linear.out_features


class PinSage(NAUModel):
    """PinSage with the paper's evaluation parameters by default:
    10 walks of length 3 per vertex, top-10 visited as neighbors."""

    category = "INFA"

    def __init__(self, dims: list[int], num_traces: int = 10, n_hops: int = 3,
                 top_k: int = 10, seed: int = 0, selection: str = "walks"):
        if len(dims) < 2:
            raise ValueError("dims must list input, hidden..., output sizes")
        if selection not in ("walks", "ppr"):
            raise ValueError(f"selection must be 'walks' or 'ppr', got {selection!r}")
        rng = np.random.default_rng(seed)
        layers = [
            PinSageLayer(dims[i], dims[i + 1], activation=i < len(dims) - 2, rng=rng)
            for i in range(len(dims) - 1)
        ]
        # PPR neighborhoods are deterministic, so they need only be built
        # once; walk-based ones are re-drawn each epoch.
        scope = SelectionScope.STATIC if selection == "ppr" else SelectionScope.PER_EPOCH
        super().__init__(layers, scope, name="PinSage")
        self.num_traces = num_traces
        self.n_hops = n_hops
        self.top_k = top_k
        self.selection = selection

    def neighbor_selection(self, graph: Graph, rng: np.random.Generator) -> HDG:
        roots = np.arange(graph.num_vertices, dtype=np.int64)
        if self.selection == "ppr":
            # Deterministic variant: personalized PageRank is the
            # many-walk limit of the visit-count definition.
            from ..graph.pagerank import top_k_ppr_neighbors

            owners, nbrs, weights = top_k_ppr_neighbors(graph, roots, self.top_k)
        else:
            owners, nbrs, weights = top_k_visited(
                graph, roots, self.num_traces, self.n_hops, self.top_k, rng
            )
        return hdg_from_flat_arrays(
            SchemaTree(), roots, owners, nbrs, weights, graph.num_vertices
        )


def pinsage(in_dim: int, hidden_dim: int, out_dim: int, num_layers: int = 2,
            num_traces: int = 10, n_hops: int = 3, top_k: int = 10,
            seed: int = 0, selection: str = "walks") -> PinSage:
    """Build a PinSage model with the paper's defaults.

    ``selection="ppr"`` swaps the random-walk neighborhood for its
    deterministic personalized-PageRank limit.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    dims = [in_dim] + [hidden_dim] * (num_layers - 1) + [out_dim]
    return PinSage(dims, num_traces, n_hops, top_k, seed=seed, selection=selection)
