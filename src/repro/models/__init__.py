"""``repro.models`` — GNN models expressed as NAU programs.

One model per category of the paper's 2-D taxonomy (Section 2.2), plus
the extra INHA models its discussion covers:

========  ========================  =====================================
category  model                     neighborhood / aggregation
========  ========================  =====================================
DNFA      :func:`gcn`, :func:`gin`  direct 1-hop neighbors, flat sum
DNFA      :func:`gat`               direct 1-hop neighbors, flat attention
DNFA      :func:`graphsage`         direct 1-hop neighbors, transform-then-max
INFA      :func:`pinsage`           random-walk top-k, flat weighted sum
INHA      :func:`magnn`             metapath instances, mean/attn/mean
INHA      :func:`pgnn`              anchor sets, mean/mean
INHA      :func:`jknet`             distance rings, mean/max
========  ========================  =====================================
"""

from .gat import GAT, GATLayer, gat
from .gcn import GCN, GCNLayer, gcn
from .gin import GIN, GINLayer, gin
from .jknet import JKNet, JKNetLayer, jknet
from .magnn import MAGNN, MAGNNLayer, default_metapaths, magnn
from .pgnn import PGNN, PGNNLayer, pgnn
from .pinsage import PinSage, PinSageLayer, pinsage
from .sage import GraphSAGE, SAGELayer, graphsage

__all__ = [
    "GCN", "GCNLayer", "gcn",
    "GAT", "GATLayer", "gat",
    "GIN", "GINLayer", "gin",
    "PinSage", "PinSageLayer", "pinsage",
    "MAGNN", "MAGNNLayer", "magnn", "default_metapaths",
    "PGNN", "PGNNLayer", "pgnn",
    "JKNet", "JKNetLayer", "jknet",
    "GraphSAGE", "SAGELayer", "graphsage",
]
